"""Batched + cached model evaluation: the allocation-search fast path.

The paper's premise is that the analytic model is "cheap enough to
search over" (Section III-A), but the reference implementation in
:mod:`repro.core.model` pays for generality on every call: Python loops
rebuild the ``(apps, nodes, nodes)`` routing tensor, per-thread demand
lists are expanded, and a full :class:`~repro.core.model.Prediction`
object tree is assembled even when the caller only consumes one scalar
score.  Search inner loops evaluate thousands of candidate allocations
against a *fixed* machine and application set, which makes the work
almost entirely redundant.  This module removes the redundancy in three
layers:

1. **Precomputed tables** — :class:`ModelTables` factors everything that
   depends only on (machine, apps) out of the per-candidate work: the
   per-thread routing tensor, demand and peak matrices, link and
   capacity vectors.  Built once per workload, cached by fingerprint.
2. **Batched evaluation** — :func:`batched_app_gflops` runs phase 1
   (remote/link capping) and phase 2 (baseline + water-fill, using the
   closed-form :func:`~repro.core.bwshare.share_node_bandwidth_batch`)
   over a whole ``(B, apps, nodes)`` tensor of candidate allocations
   with NumPy, producing per-app GFLOPS for every candidate without
   creating a single dataclass.
3. **Memoisation** — :class:`ScoreCache` is a bounded LRU keyed by
   ``(workload fingerprint, counts bytes)``.  Hill climbing and
   annealing revisit the same allocations constantly; a revisit costs
   one dict lookup instead of a model evaluation.

The scalar :meth:`~repro.core.model.NumaPerformanceModel.predict`
remains the ground truth; parity (``|batched - reference| <= 1e-9``) is
enforced by the property tests in ``tests/test_core_fasteval.py`` and
the speedup is tracked by ``python -m repro bench``
(see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.allocation import ThreadAllocation
from repro.core.bwshare import RemainderRule, share_node_bandwidth_batch
from repro.core.spec import AppSpec, Placement
from repro.errors import ModelError, OversubscriptionError
from repro.machine.topology import MachineTopology

__all__ = [
    "ModelTables",
    "ScoreCache",
    "FastEvaluator",
    "batched_app_gflops",
    "as_counts_batch",
    "check_oversubscription",
    "workload_fingerprint",
]

#: An objective's batched form: ``(per-app GFLOPS (B, A), apps) -> (B,)``.
BatchedObjective = Callable[[np.ndarray, Sequence[AppSpec]], np.ndarray]


def workload_fingerprint(
    machine: MachineTopology,
    apps: Sequence[AppSpec],
    rule: RemainderRule,
) -> tuple:
    """Hashable key identifying one (machine, apps, remainder-rule) triple.

    Includes the machine name *and* its structural fingerprint, so two
    differently-parameterised machines that happen to share a name can
    never alias each other's cached scores.
    """
    return (
        machine.fingerprint,
        tuple(app.fingerprint for app in apps),
        rule.value,
    )


@dataclass(frozen=True)
class ModelTables:
    """Everything about (machine, apps) the batched evaluator reads.

    All arrays are constant across candidates, so building them once per
    workload removes the Python-loop tensor assembly from the
    per-candidate cost.  Shapes use ``A`` = apps, ``N`` = nodes.

    Attributes
    ----------
    route_per_thread:
        ``(A, N, N)`` — GB/s one thread of app ``a`` running on node
        ``s`` attempts to draw from node ``m``'s memory.  Multiplying by
        a counts matrix recovers the model's routing tensor.
    local_demand:
        ``(A, N)`` — the diagonal ``route_per_thread[a, s, s]``: one
        thread's demand on its own node's memory.
    peak_per_thread:
        ``(A, N)`` — per-thread GFLOPS cap of app ``a`` on node ``s``.
    intensity:
        ``(A,)`` — arithmetic intensity (GFLOPS per GB/s granted).
    link:
        ``(N, N)`` — inter-node link bandwidth matrix.
    node_capacity:
        ``(N,)`` — local memory bandwidth per node.
    cores_per_node:
        ``(N,)`` — baseline divisor per node.
    key:
        The workload fingerprint these tables were built for.
    """

    route_per_thread: np.ndarray
    local_demand: np.ndarray
    peak_per_thread: np.ndarray
    intensity: np.ndarray
    link: np.ndarray
    node_capacity: np.ndarray
    cores_per_node: np.ndarray
    key: tuple

    @classmethod
    def build(
        cls,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        rule: RemainderRule,
    ) -> "ModelTables":
        """Precompute the constant tensors for one workload."""
        n_apps, n_nodes = len(apps), machine.num_nodes
        route = np.zeros((n_apps, n_nodes, n_nodes))
        peak = np.zeros((n_apps, n_nodes))
        for a, app in enumerate(apps):
            for s in range(n_nodes):
                core_peak = machine.node(s).cores[0].peak_gflops
                demand = app.demand_per_thread(core_peak)
                peak[a, s] = app.peak_gflops(core_peak)
                if app.placement is Placement.NUMA_PERFECT:
                    route[a, s, s] = demand
                elif app.placement is Placement.SINGLE_NODE:
                    route[a, s, app.home_node] = demand
                else:  # INTERLEAVED
                    route[a, s, :] = demand / n_nodes
        return cls(
            route_per_thread=route,
            local_demand=np.ascontiguousarray(
                np.einsum("ass->as", route)
            ),
            peak_per_thread=peak,
            intensity=np.array([app.arithmetic_intensity for app in apps]),
            link=np.asarray(machine.link_bandwidth, dtype=float),
            node_capacity=np.array(
                [node.local_bandwidth for node in machine.nodes]
            ),
            cores_per_node=np.array(machine.cores_per_node, dtype=np.int64),
            key=workload_fingerprint(machine, apps, rule),
        )


def as_counts_batch(
    allocations, n_apps: int, n_nodes: int
) -> np.ndarray:
    """Normalise ``allocations`` to an ``(B, A, N)`` int64 counts tensor.

    Accepts a single :class:`ThreadAllocation`, a sequence of them, a
    single ``(A, N)`` matrix, or a ready ``(B, A, N)`` tensor.
    """
    if isinstance(allocations, ThreadAllocation):
        counts = allocations.counts[None]
    elif isinstance(allocations, np.ndarray):
        counts = allocations if allocations.ndim == 3 else allocations[None]
    else:
        seq = list(allocations)
        if not seq:
            raise ModelError("empty allocation batch")
        if isinstance(seq[0], ThreadAllocation):
            counts = np.stack([a.counts for a in seq])
        else:
            counts = np.asarray(seq)
            if counts.ndim == 2:
                counts = counts[None]
    counts = np.asarray(counts)
    if counts.ndim != 3 or counts.shape[1:] != (n_apps, n_nodes):
        raise ModelError(
            f"allocation batch must have shape (B, {n_apps}, {n_nodes}), "
            f"got {counts.shape}"
        )
    if not np.issubdtype(counts.dtype, np.integer):
        rounded = np.rint(counts)
        if not np.allclose(counts, rounded):
            raise ModelError("thread counts must be integers")
        counts = rounded
    counts = counts.astype(np.int64, copy=False)
    if np.any(counts < 0):
        raise ModelError("thread counts must be non-negative")
    return counts


def check_oversubscription(
    tables: ModelTables, counts: np.ndarray
) -> None:
    """Reject any candidate placing more threads on a node than cores.

    Shared by the serial kernel and the parallel pool's parent-side
    pre-validation (:mod:`repro.core.parallel`), so an oversubscribed
    batch raises the *same* error with the same message regardless of
    the worker count — and never counts as a parallel fallback.
    """
    per_node = counts.sum(axis=1)  # (B, N)
    over = per_node > tables.cores_per_node[None, :]
    if np.any(over):
        b, n = np.argwhere(over)[0]
        raise OversubscriptionError(
            f"candidate {b}: node {n} gets {per_node[b, n]} threads but "
            f"has only {tables.cores_per_node[n]} cores"
        )


def batched_app_gflops(
    tables: ModelTables,
    counts: np.ndarray,
    rule: RemainderRule,
) -> np.ndarray:
    """Per-app GFLOPS for a batch of allocations, no dataclasses.

    Vectorises the reference model's two phases over the leading batch
    axis.  ``counts`` is a validated ``(B, A, N)`` tensor; the return
    value has shape ``(B, A)`` and matches
    :meth:`repro.core.model.NumaPerformanceModel.predict` (summed over
    each app's groups) to within 1e-9.

    Raises
    ------
    OversubscriptionError
        If any candidate puts more threads on a node than it has cores.
    """
    check_oversubscription(tables, counts)
    cf = counts.astype(float)
    n_nodes = tables.link.shape[0]
    # Routing tensor: route[b, a, s, m] = demand app a's threads on s
    # place on memory m.
    route = cf[:, :, :, None] * tables.route_per_thread[None]
    remote_demand = route.sum(axis=1)  # (B, S, M)

    # Phase 1 — remote service: cap each foreign flow by its link, then
    # scale flows into a node down proportionally if they exceed the
    # node's bandwidth.
    off_diagonal = ~np.eye(n_nodes, dtype=bool)
    served = np.minimum(remote_demand, tables.link[None]) * off_diagonal
    total_remote = served.sum(axis=1)  # (B, M)
    over_cap = total_remote > tables.node_capacity[None, :]
    scale = np.where(
        over_cap,
        tables.node_capacity[None, :] / np.where(over_cap, total_remote, 1.0),
        1.0,
    )
    served *= scale[:, None, :]

    # Split each served flow among its contributing groups in proportion
    # to their demand.
    ratio = np.divide(
        served,
        remote_demand,
        out=np.zeros_like(served),
        where=remote_demand > 0,
    )
    remote_grant = np.einsum("basm,bsm->bas", route, ratio)

    # Phase 2 — local arbitration on what remains of each node.
    remote_served = served.sum(axis=1)  # (B, M)
    capacity = np.maximum(
        tables.node_capacity[None, :] - remote_served, 0.0
    )
    local_grant = np.empty_like(remote_grant)  # (B, A, N)
    for m in range(n_nodes):
        local_grant[:, :, m] = share_node_bandwidth_batch(
            capacity[:, m],
            int(tables.cores_per_node[m]),
            tables.local_demand[:, m],
            cf[:, :, m],
            rule=rule,
        )

    bandwidth = local_grant + remote_grant  # (B, A, S)
    gflops = np.minimum(
        bandwidth * tables.intensity[None, :, None],
        tables.peak_per_thread[None] * cf,
    )
    return gflops.sum(axis=2)


class ScoreCache:
    """Bounded LRU of per-app GFLOPS rows, keyed by exact allocation.

    Keys are ``(workload fingerprint, counts.tobytes())`` — see
    :func:`workload_fingerprint`.  Values are read-only ``(A,)`` arrays,
    so a cached row can be handed to every caller without copying.
    Local-search optimizers revisit allocations constantly (a hill-climb
    neighbourhood overlaps its predecessor's almost entirely), which is
    what makes a memo cache worth its memory.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        if maxsize <= 0:
            raise ModelError(f"cache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict[tuple, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: tuple) -> np.ndarray | None:
        """The cached row for ``key``, refreshing its recency."""
        row = self._data.get(key)
        if row is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return row

    def put(self, key: tuple, row: np.ndarray) -> None:
        """Insert a row, evicting the least recently used beyond capacity."""
        row = np.asarray(row)
        row.setflags(write=False)
        self._data[key] = row
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss tallies."""
        self._data.clear()
        self.hits = 0
        self.misses = 0


class FastEvaluator:
    """Score batches of candidate allocations for one search.

    Binds a model, a workload and an objective's batched form into one
    callable the optimizers drive.  Construction fails soft: use
    :meth:`create`, which returns ``None`` when the objective has no
    batched form, letting searches fall back to the scalar path.
    """

    def __init__(
        self,
        model,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        batched_objective: BatchedObjective,
    ) -> None:
        self.model = model
        self.machine = machine
        self.apps = tuple(apps)
        self.batched_objective = batched_objective

    @classmethod
    def create(
        cls,
        model,
        machine: MachineTopology,
        apps: Sequence[AppSpec],
        objective,
    ) -> "FastEvaluator | None":
        """An evaluator for ``objective``, or ``None`` if not batchable.

        An objective opts into the fast path by carrying a ``batched``
        attribute (see :mod:`repro.core.optimizer`); arbitrary callables
        over full :class:`~repro.core.model.Prediction` objects cannot
        be vectorised and keep the reference path.
        """
        batched = getattr(objective, "batched", None)
        if batched is None:
            return None
        return cls(model, machine, apps, batched)

    def scores(self, counts: np.ndarray) -> np.ndarray:
        """Objective score of each candidate in a ``(B, A, N)`` tensor."""
        gflops = self.model.predict_scores(self.machine, self.apps, counts)
        return np.asarray(
            self.batched_objective(gflops, self.apps), dtype=float
        )
