"""Tests for task templates, finish scopes, and the DVFS model."""

import pytest

from repro.errors import ConfigurationError, RuntimeSystemError
from repro.machine import model_machine, uma_machine
from repro.runtime import FinishScope, OCRVxRuntime, TaskTemplate
from repro.sim import DvfsModel, ExecutionSimulator


@pytest.fixture
def ex():
    return ExecutionSimulator(model_machine())


@pytest.fixture
def rt(ex):
    runtime = OCRVxRuntime("app", ex)
    runtime.start([2, 2, 2, 2])
    return runtime


class TestTaskTemplate:
    def test_instantiate(self, ex, rt):
        tpl = TaskTemplate("kernel", flops=0.01, arithmetic_intensity=8.0)
        t = tpl.instantiate(rt, 3)
        assert "kernel[3]" in t.name
        ex.run_until_idle()
        assert rt.stats.tasks_executed == 1

    def test_instantiate_many_with_spread(self, ex, rt):
        tpl = TaskTemplate("kernel", flops=0.01, arithmetic_intensity=8.0)
        tasks = tpl.instantiate_many(rt, 8, spread_nodes=4)
        assert [t.affinity_node for t in tasks] == [0, 1, 2, 3] * 2
        ex.run_until_idle()
        assert rt.stats.tasks_executed == 8

    def test_dependencies_through_template(self, ex, rt):
        tpl = TaskTemplate("k", flops=0.01, arithmetic_intensity=8.0)
        a = tpl.instantiate(rt, "a")
        b = tpl.instantiate(rt, "b", depends_on=[a])
        ex.run_until_idle()
        assert b.state.value == "finished"

    def test_validation(self):
        with pytest.raises(RuntimeSystemError):
            TaskTemplate("k", flops=0.0, arithmetic_intensity=1.0)
        with pytest.raises(RuntimeSystemError):
            TaskTemplate("k", flops=1.0, arithmetic_intensity=0.0)
        tpl = TaskTemplate("k", flops=1.0, arithmetic_intensity=1.0)
        with pytest.raises(RuntimeSystemError):
            tpl.instantiate_many(None, 0)


class TestFinishScope:
    def test_simple_scope(self, ex, rt):
        with FinishScope(rt, "s") as scope:
            for i in range(5):
                rt.create_task(f"t{i}", 0.01, 8.0)
        assert not scope.finished
        ex.run_until_idle()
        assert scope.finished

    def test_empty_scope_fires_immediately(self, ex, rt):
        with FinishScope(rt) as scope:
            pass
        assert scope.finished

    def test_transitive_children_counted(self, ex, rt):
        """Tasks spawned from a member's on_finish also hold the scope."""
        spawned = []

        def spawn(task):
            if len(spawned) < 3:
                spawned.append(
                    rt.create_task(
                        f"child{len(spawned)}", 0.01, 8.0, on_finish=spawn
                    )
                )

        with FinishScope(rt, "deep") as scope:
            rt.create_task("root", 0.01, 8.0, on_finish=spawn)
        ex.run_until_idle()
        assert scope.finished
        assert len(spawned) == 3
        # all children completed before the scope fired
        assert scope.members == 0

    def test_tasks_outside_scope_not_counted(self, ex, rt):
        with FinishScope(rt) as scope:
            rt.create_task("in", 0.01, 8.0)
        rt.create_task("out", 5.0, 8.0)  # long task outside the scope
        ex.run(0.05)
        assert scope.finished  # did not wait for the outside task

    def test_reenter_rejected(self, ex, rt):
        scope = FinishScope(rt)
        with scope:
            pass
        with pytest.raises(RuntimeSystemError):
            with scope:
                pass

    def test_create_task_restored_after_scope(self, ex, rt):
        original = rt.create_task
        with FinishScope(rt):
            assert rt.create_task is not original
        assert rt.create_task == original


class TestDvfs:
    def test_frequency_factor_bounds(self):
        d = DvfsModel(max_boost=0.3)
        assert d.frequency_factor(1, 8) == pytest.approx(1.3)
        assert d.frequency_factor(8, 8) == pytest.approx(1.0)
        assert d.frequency_factor(4, 8) > 1.0
        assert d.frequency_factor(1, 1) == pytest.approx(1.3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DvfsModel(max_boost=-0.1)
        d = DvfsModel()
        with pytest.raises(ConfigurationError):
            d.frequency_factor(9, 8)
        with pytest.raises(ConfigurationError):
            d.frequency_factor(0, 0)

    def test_single_thread_boosted_in_executor(self):
        from repro.sim import Binding, WorkSegment

        class Work:
            def next_segment(self, thread):
                return WorkSegment(flops=1.0, arithmetic_intensity=1e6)

            def segment_finished(self, thread, segment):
                pass

        base = ExecutionSimulator(uma_machine())
        base.add_thread("t", Binding.to_node(0), Work(), app_name="t")
        base.run(0.2)
        boosted = ExecutionSimulator(
            uma_machine(), dvfs=DvfsModel(max_boost=0.3)
        )
        boosted.add_thread("t", Binding.to_node(0), Work(), app_name="t")
        boosted.run(0.2)
        assert boosted.achieved_gflops("t", 0.2) == pytest.approx(
            base.achieved_gflops("t", 0.2) * 1.3, rel=0.02
        )

    def test_full_node_unaffected(self):
        from repro.sim import Binding, WorkSegment

        class Work:
            def next_segment(self, thread):
                return WorkSegment(flops=1.0, arithmetic_intensity=1e6)

            def segment_finished(self, thread, segment):
                pass

        ex = ExecutionSimulator(
            uma_machine(), dvfs=DvfsModel(max_boost=0.3)
        )
        for i in range(8):
            ex.add_thread(
                f"t{i}", Binding.to_node(0), Work(), app_name="app"
            )
        ex.run(0.2)
        # 8 busy cores -> base frequency -> 80 GFLOPS
        assert ex.achieved_gflops("app", 0.2) == pytest.approx(
            80.0, rel=0.02
        )
