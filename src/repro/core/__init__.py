"""The paper's primary contribution: the NUMA-aware allocation model.

Public surface:

* :class:`~repro.core.spec.AppSpec` / :class:`~repro.core.spec.Placement` —
  analytic application descriptions;
* :class:`~repro.core.allocation.ThreadAllocation` — per-app per-node
  thread counts (the paper's thread-control option 3);
* :class:`~repro.core.model.NumaPerformanceModel` — the bandwidth-sharing
  performance model of Section III-A;
* :mod:`~repro.core.policies` and :mod:`~repro.core.optimizer` —
  allocation generators and searches;
* :mod:`~repro.core.candidates` and :mod:`~repro.core.delta` — the
  shared candidate-space layer and the incremental (O(delta))
  churn-time re-optimizer built on it;
* :mod:`~repro.core.parallel` — the process-parallel scoring pool that
  shards big candidate batches over shared-memory tensors;
* :mod:`~repro.core.arbitration` — static multi-runtime core negotiation;
* :func:`~repro.core.worked.worked_example` — Table I/II style row-by-row
  breakdowns.
"""

from repro.core.allocation import ThreadAllocation
from repro.core.arbitration import (
    AgentArbiter,
    ArbitrationOutcome,
    CooperativeConsensus,
    FairShareArbiter,
    ResourceRequest,
)
from repro.core.candidates import CandidateSpace
from repro.core.delta import (
    DeltaResult,
    DeltaSearch,
    WorkloadDelta,
    diff_workloads,
)
from repro.core.bwshare import (
    NodeShare,
    RemainderRule,
    share_node_bandwidth,
    share_node_bandwidth_batch,
)
from repro.core.fasteval import (
    FastEvaluator,
    ModelTables,
    ScoreCache,
    as_counts_batch,
    batched_app_gflops,
    check_oversubscription,
    workload_fingerprint,
)
from repro.core.model import (
    AppResult,
    GroupResult,
    NodeResult,
    NumaPerformanceModel,
    Prediction,
)
from repro.core.optimizer import (
    AnnealingSearch,
    ExhaustiveSearch,
    GreedySearch,
    HillClimbSearch,
    OptimizerConfig,
    SearchResult,
    min_app_gflops,
    total_gflops,
    weighted_gflops,
)
from repro.core.parallel import (
    WorkerPool,
    chunk_bounds,
    default_workers,
    get_pool,
    parallel_app_gflops,
    release_pool,
    shutdown_pools,
)
from repro.core.policies import (
    AllocationPolicy,
    EvenSharePolicy,
    NodeExclusivePolicy,
    ProportionalDemandPolicy,
    SingleAppFillPolicy,
    UnevenSharePolicy,
    enumerate_node_compositions,
    enumerate_symmetric_allocations,
    symmetric_counts_tensor,
)
from repro.core.roofline import Roofline, attainable_gflops
from repro.core.spec import AppSpec, Placement
from repro.core.worked import AppColumn, WorkedExample, worked_example

__all__ = [
    "AppSpec",
    "Placement",
    "ThreadAllocation",
    "Roofline",
    "attainable_gflops",
    "RemainderRule",
    "NodeShare",
    "share_node_bandwidth",
    "share_node_bandwidth_batch",
    "FastEvaluator",
    "ModelTables",
    "ScoreCache",
    "as_counts_batch",
    "batched_app_gflops",
    "check_oversubscription",
    "workload_fingerprint",
    "WorkerPool",
    "chunk_bounds",
    "default_workers",
    "get_pool",
    "parallel_app_gflops",
    "release_pool",
    "shutdown_pools",
    "OptimizerConfig",
    "NumaPerformanceModel",
    "Prediction",
    "AppResult",
    "GroupResult",
    "NodeResult",
    "AllocationPolicy",
    "EvenSharePolicy",
    "UnevenSharePolicy",
    "NodeExclusivePolicy",
    "ProportionalDemandPolicy",
    "SingleAppFillPolicy",
    "enumerate_symmetric_allocations",
    "enumerate_node_compositions",
    "symmetric_counts_tensor",
    "CandidateSpace",
    "ExhaustiveSearch",
    "GreedySearch",
    "HillClimbSearch",
    "AnnealingSearch",
    "DeltaSearch",
    "DeltaResult",
    "WorkloadDelta",
    "diff_workloads",
    "SearchResult",
    "total_gflops",
    "weighted_gflops",
    "min_app_gflops",
    "ResourceRequest",
    "ArbitrationOutcome",
    "FairShareArbiter",
    "AgentArbiter",
    "CooperativeConsensus",
    "WorkedExample",
    "AppColumn",
    "worked_example",
]
