"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_fifo_within_same_time(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("low"), priority=10)
        sim.schedule(1.0, lambda: order.append("high"), priority=0)
        sim.run()
        assert order == ["high", "low"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        hit = []
        sim.schedule_at(5.0, lambda: hit.append(sim.now))
        sim.run()
        assert hit == [5.0]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 2.0


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        hit = []
        h = sim.schedule(1.0, lambda: hit.append(1))
        sim.cancel(h)
        sim.run()
        assert hit == []
        assert h.cancelled

    def test_double_cancel_ok(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.cancel(h)
        sim.cancel(h)


class TestRunUntil:
    def test_stops_at_time(self):
        sim = Simulator()
        hits = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: hits.append(t))
        n = sim.run_until(2.0)
        assert hits == [1.0, 2.0]
        assert n == 2
        assert sim.now == 2.0
        sim.run()
        assert hits == [1.0, 2.0, 3.0]

    def test_advances_clock_without_events(self):
        sim = Simulator()
        sim.run_until(10.0)
        assert sim.now == 10.0

    def test_backwards_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_max_events(self):
        sim = Simulator()
        for t in range(10):
            sim.schedule(float(t + 1), lambda: None)
        n = sim.run(max_events=3)
        assert n == 3
        assert sim.pending == 7


class TestCounters:
    def test_processed_and_pending(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.processed == 2
        assert sim.pending == 0
