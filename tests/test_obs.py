"""Unit tests for the observability layer (repro.obs).

Covers the tracer (nesting, LIFO enforcement, thread safety), the
registry additions (gauges, histograms, concurrent get-or-create), both
exporters (JSON-lines round-trip, Chrome trace-event schema), the
global enable/disable/capture lifecycle, hot-path instrumentation
integration, and the zero-cost-when-disabled guarantee.
"""

import json
import threading
import time

import pytest

from repro import obs
from repro.errors import ObservabilityError, SimulationError
from repro.obs import (
    NULL_TRACER,
    OBS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    capture,
    disable,
    enable,
    get_metrics,
    get_tracer,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with instrumentation disabled."""
    disable()
    yield
    disable()


def _fake_clock(start=0.0, step=1.0):
    """Deterministic clock: 0, 1, 2, ... (or custom start/step)."""
    state = {"t": start - step}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


class TestSpan:
    def test_duration_and_finished(self):
        s = Span(name="a", span_id=1, parent_id=None, thread_id=0, start=2.0)
        assert not s.finished
        assert s.duration is None
        s.end = 5.0
        assert s.finished
        assert s.duration == 3.0

    def test_dict_round_trip(self):
        s = Span(
            name="x/y",
            span_id=7,
            parent_id=3,
            thread_id=42,
            start=1.0,
            end=2.0,
            attrs={"k": "v", "n": 3},
        )
        assert Span.from_dict(s.to_dict()) == s


class TestTracerNesting:
    def test_parent_child_ids(self):
        t = Tracer(clock=_fake_clock())
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        names = [s.name for s in t.spans]
        assert names == ["inner", "outer"]  # completion order

    def test_sibling_spans_share_parent(self):
        t = Tracer()
        with t.span("root") as root:
            with t.span("a") as a:
                pass
            with t.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_attrs_and_timestamps(self):
        t = Tracer(clock=_fake_clock())
        with t.span("op", key="val") as sp:
            sp.attrs["extra"] = 1
        assert sp.attrs == {"key": "val", "extra": 1}
        assert sp.start == 0.0 and sp.end == 1.0

    def test_exception_annotates_and_propagates(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        (sp,) = t.spans
        assert sp.finished
        assert sp.attrs["error"] == "ValueError"

    def test_manual_start_finish_lifo(self):
        t = Tracer()
        a = t.start("a")
        b = t.start("b")
        with pytest.raises(ObservabilityError):
            t.finish(a)  # b is still open
        t.finish(b)
        t.finish(a)
        assert len(t) == 2

    def test_observability_error_is_simulation_error(self):
        assert issubclass(ObservabilityError, SimulationError)

    def test_current(self):
        t = Tracer()
        assert t.current() is None
        with t.span("s") as sp:
            assert t.current() is sp
        assert t.current() is None

    def test_instant_is_zero_duration_child(self):
        t = Tracer(clock=_fake_clock())
        with t.span("parent") as parent:
            mark = t.instant("tick", n=1)
        assert mark.duration == 0.0
        assert mark.parent_id == parent.span_id
        assert mark.attrs == {"n": 1}

    def test_record_explicit_times(self):
        t = Tracer()
        sp = t.record("sim/window", 10.0, 12.5, label="w")
        assert sp.start == 10.0 and sp.end == 12.5
        with pytest.raises(ObservabilityError):
            t.record("bad", 2.0, 1.0)

    def test_filter_and_clear(self):
        t = Tracer()
        with t.span("a", keep=True):
            pass
        with t.span("b"):
            pass
        assert [s.name for s in t.filter(name="a")] == ["a"]
        assert [
            s.name for s in t.filter(predicate=lambda s: "keep" in s.attrs)
        ] == ["a"]
        t.clear()
        assert len(t) == 0

    def test_iteration(self):
        t = Tracer()
        with t.span("only"):
            pass
        assert [s.name for s in t] == ["only"]


class TestTracerThreads:
    def test_threads_nest_independently(self):
        t = Tracer()
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)
        errors = []

        def work(idx):
            try:
                barrier.wait()
                for i in range(per_thread):
                    with t.span(f"w{idx}", i=i) as outer:
                        with t.span(f"w{idx}/inner") as inner:
                            assert inner.parent_id == outer.span_id
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert len(t) == n_threads * per_thread * 2
        # span ids are unique across threads
        ids = [s.span_id for s in t.spans]
        assert len(ids) == len(set(ids))
        # each inner span's parent lives on the same thread
        by_id = {s.span_id: s for s in t.spans}
        for s in t.spans:
            if s.parent_id is not None:
                assert by_id[s.parent_id].thread_id == s.thread_id

    def test_registry_concurrent_get_or_create(self):
        reg = MetricsRegistry()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        seen = []

        def work():
            barrier.wait()
            for _ in range(200):
                reg.counter("shared").add()
            seen.append(reg.counter("shared"))

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        # all threads resolved the same Counter object
        assert all(c is seen[0] for c in seen)
        assert reg.counter("shared").value == n_threads * 200


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("level")
        g.set(10.0)
        g.inc(2.5)
        g.dec(0.5)
        assert g.value == 12.0
        assert g.updates == 3

    def test_inc_accepts_negative(self):
        g = Gauge("g")
        g.inc(-3.0)
        assert g.value == -3.0


class TestHistogram:
    def test_record_and_stats(self):
        h = Histogram("lat")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.record(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.min() == 1.0
        assert h.max() == 4.0
        assert h.mean() == 2.5
        assert h.percentile(50) == 2.5
        assert len(h) == 4
        assert list(h.values) == [1.0, 2.0, 3.0, 4.0]

    def test_summary_keys(self):
        h = Histogram("lat")
        h.record(1.0)
        assert set(h.summary()) == {
            "count", "sum", "min", "max", "mean", "p50", "p99",
        }
        assert Histogram("empty").summary() == {"count": 0.0, "sum": 0.0}

    def test_empty_stats_raise(self):
        h = Histogram("empty")
        for fn in (h.min, h.max, h.mean):
            with pytest.raises(ObservabilityError):
                fn()
        with pytest.raises(ObservabilityError):
            h.percentile(50)

    def test_percentile_range_checked(self):
        h = Histogram("h")
        h.record(1.0)
        with pytest.raises(ObservabilityError):
            h.percentile(101)


class TestMetricsRegistry:
    def test_auto_create_and_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 3

    def test_snapshot_keys(self):
        reg = MetricsRegistry()
        reg.counter("c").add(2)
        reg.gauge("g").set(7.0)
        reg.histogram("h").record(1.0)
        reg.integrator("i").accumulate(0.0, 2.0, 3.0)
        snap = reg.snapshot()
        assert snap["counter/c"] == 2
        assert snap["gauge/g"] == 7.0
        assert snap["hist/h/count"] == 1.0
        assert snap["total/i"] == 6.0

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("c").add()
        reg.gauge("g").set(1.0)
        reg.clear()
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_iterators(self):
        reg = MetricsRegistry()
        reg.gauge("a")
        reg.gauge("b")
        reg.histogram("h")
        assert [g.name for g in reg.gauges()] == ["a", "b"]
        assert [h.name for h in reg.histograms()] == ["h"]


class TestJsonlExport:
    def _traced(self):
        t = Tracer(clock=_fake_clock())
        with t.span("outer", policy="even"):
            with t.span("inner", n=3):
                pass
        t.instant("mark")
        return t

    def test_round_trip(self, tmp_path):
        t = self._traced()
        path = str(tmp_path / "spans.jsonl")
        assert write_jsonl(path, t) == 3
        assert read_jsonl(path) == list(t.spans)

    def test_to_jsonl_one_object_per_line(self):
        t = self._traced()
        lines = to_jsonl(t).splitlines()
        assert len(lines) == 3
        for line in lines:
            rec = json.loads(line)
            assert {"name", "span_id", "start", "end"} <= set(rec)

    def test_empty_tracer(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        assert write_jsonl(path, Tracer()) == 0
        assert read_jsonl(path) == []

    def test_bad_record_raises_with_location(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as fh:
            fh.write("not json\n")
        with pytest.raises(ObservabilityError, match="bad.jsonl:1"):
            read_jsonl(path)


class TestChromeExport:
    def test_schema(self):
        t = Tracer(clock=_fake_clock(start=100.0))
        with t.span("optimizer/greedy", apps=2):
            pass
        t.instant("agent/mark")
        reg = MetricsRegistry()
        reg.counter("c").add(5)
        doc = to_chrome_trace(t, reg)
        events = doc["traceEvents"]
        assert events, "traceEvents must be non-empty"
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "i", "C", "M"}
        for e in events:
            assert e["ph"] in {"X", "i", "C", "M"}
            assert e["pid"] == 1
            if "ts" in e:
                assert e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 0
        # timestamps are normalised: earliest span at 0 µs
        assert min(e["ts"] for e in events if e["ph"] == "X") == 0
        # instants are thread-scoped
        assert all(e["s"] == "t" for e in events if e["ph"] == "i")
        # metric snapshot rides along as a counter track
        counters = [e for e in events if e["ph"] == "C"]
        assert {c["name"] for c in counters} == {"counter/c"}
        assert counters[0]["args"]["value"] == 5
        json.dumps(doc)  # must be serialisable as-is

    def test_thread_ids_renumbered(self):
        t = Tracer()
        with t.span("main"):
            pass

        def other():
            with t.span("worker"):
                pass

        th = threading.Thread(target=other)
        th.start()
        th.join()
        doc = to_chrome_trace(t)
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert tids == {0, 1}

    def test_non_serialisable_attrs_stringified(self):
        t = Tracer()
        with t.span("op", obj=object(), ok=1):
            pass
        doc = to_chrome_trace(t)
        (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert isinstance(ev["args"]["obj"], str)
        assert ev["args"]["ok"] == 1
        json.dumps(doc)

    def test_write_returns_event_count(self, tmp_path):
        t = Tracer()
        with t.span("a"):
            pass
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(path, t)
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["traceEvents"]) == count
        assert doc["displayTimeUnit"] == "ms"


class TestGlobalState:
    def test_default_is_disabled_null_tracer(self):
        assert OBS.enabled is False
        assert isinstance(get_tracer(), NullTracer)
        assert get_tracer() is NULL_TRACER

    def test_enable_disable(self):
        tracer = enable()
        assert OBS.enabled
        assert get_tracer() is tracer
        assert not isinstance(tracer, NullTracer)
        disable()
        assert not OBS.enabled
        assert get_tracer() is NULL_TRACER

    def test_enable_keeps_metrics_unless_replaced(self):
        before = get_metrics()
        enable()
        assert get_metrics() is before
        fresh = MetricsRegistry()
        enable(metrics=fresh)
        assert get_metrics() is fresh

    def test_capture_installs_fresh_and_restores(self):
        prev_tracer, prev_metrics = OBS.tracer, OBS.metrics
        with capture() as cap:
            assert OBS.enabled
            assert OBS.tracer is cap.tracer
            assert OBS.metrics is cap.metrics
            assert cap.tracer is not prev_tracer
            assert cap.metrics is not prev_metrics
        assert not OBS.enabled
        assert OBS.tracer is prev_tracer
        assert OBS.metrics is prev_metrics

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with capture():
                raise RuntimeError("boom")
        assert not OBS.enabled

    def test_nested_capture(self):
        with capture() as outer:
            with capture() as inner:
                assert OBS.tracer is inner.tracer
            assert OBS.tracer is outer.tracer

    def test_all_exports_resolve(self):
        for name in obs.__all__:
            assert getattr(obs, name) is not None


class TestInstrumentationIntegration:
    """The hot paths actually record through OBS when enabled."""

    def _machine_and_apps(self):
        from repro.core.model import NumaPerformanceModel
        from repro.core.spec import AppSpec
        from repro.machine import model_machine

        machine = model_machine()
        apps = [
            AppSpec.compute_bound("a", 10.0),
            AppSpec.memory_bound("b", 0.5),
        ]
        return NumaPerformanceModel(), machine, apps

    @staticmethod
    def _alloc(machine, apps):
        from repro.core.allocation import ThreadAllocation

        return ThreadAllocation.uniform(
            [a.name for a in apps], machine.num_nodes, 2
        )

    def test_model_predict_counts(self):
        model, machine, apps = self._machine_and_apps()
        alloc = self._alloc(machine, apps)
        with capture() as cap:
            model.predict(machine, apps, alloc)
            model.predict(machine, apps, alloc)
        assert cap.metrics.counter("model/predictions").value == 2
        assert cap.metrics.histogram("model/predict_seconds").count == 2

    def test_optimizer_search_span_and_metrics(self):
        from repro.core.optimizer import GreedySearch

        model, machine, apps = self._machine_and_apps()
        with capture() as cap:
            result = GreedySearch(model=model).search(machine, apps)
        spans = cap.tracer.filter(name="optimizer/greedy")
        assert len(spans) == 1
        assert spans[0].attrs["score"] == result.score
        assert spans[0].attrs["evaluations"] == result.evaluations
        assert (
            cap.metrics.counter("optimizer/evaluations").value
            == result.evaluations
        )
        assert cap.metrics.gauge("optimizer/best_score").value == result.score

    def test_agent_round_spans(self):
        from repro.obs.demo import run_trace_target

        with capture() as cap:
            run_trace_target("agent")
        rounds = cap.tracer.filter(name="agent/round")
        assert rounds
        assert cap.metrics.counter("agent/rounds").value == len(rounds)
        commands = cap.tracer.filter(name="agent/command")
        assert commands  # the alignment strategy does issue commands
        for sp in commands:
            assert "runtime" in sp.attrs
            assert "command" in sp.attrs
            assert "threads_before" in sp.attrs
            assert "threads_after" in sp.attrs
        assert cap.metrics.counter("agent/commands").value == len(commands)
        # sim + runtime instrumentation rode along
        snap = cap.metrics.snapshot()
        assert snap["counter/sim/events"] > 0
        assert snap["counter/sim/ticks"] > 0
        assert any(k.startswith("counter/runtime/") for k in snap)

    def test_disabled_records_nothing(self):
        model, machine, apps = self._machine_and_apps()
        alloc = self._alloc(machine, apps)
        baseline_metrics = len(get_metrics())
        model.predict(machine, apps, alloc)
        assert len(get_tracer()) == 0
        assert len(get_metrics()) == baseline_metrics


class TestNoOpOverhead:
    def test_disabled_not_measurably_slower(self):
        """Smoke bound: the disabled path stays within 1.5x of enabled.

        (Being *faster* disabled is the design goal; this only guards
        against a pathological regression, so the bound is loose.)
        """
        from repro.core.allocation import ThreadAllocation
        from repro.core.model import NumaPerformanceModel
        from repro.core.spec import AppSpec
        from repro.machine import model_machine

        machine = model_machine()
        apps = [AppSpec.compute_bound("a", 10.0)]
        alloc = ThreadAllocation.uniform(["a"], machine.num_nodes, 2)
        model = NumaPerformanceModel()
        n = 300

        def run_n():
            t0 = time.perf_counter()
            for _ in range(n):
                model.predict(machine, apps, alloc)
            return time.perf_counter() - t0

        run_n()  # warm caches
        disabled = run_n()
        with capture():
            enabled = run_n()
        assert disabled <= enabled * 1.5
