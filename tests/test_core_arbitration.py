"""Unit tests for multi-runtime core arbitration."""

import numpy as np
import pytest

from repro.core.arbitration import (
    AgentArbiter,
    CooperativeConsensus,
    FairShareArbiter,
    ResourceRequest,
)
from repro.core.spec import AppSpec
from repro.errors import AllocationError


@pytest.fixture
def requests(paper_apps):
    return [ResourceRequest(spec=a) for a in paper_apps]


class TestResourceRequest:
    def test_validation(self, paper_apps):
        with pytest.raises(AllocationError):
            ResourceRequest(spec=paper_apps[0], min_threads=-1)
        with pytest.raises(AllocationError):
            ResourceRequest(
                spec=paper_apps[0], min_threads=4, max_threads=2
            )
        with pytest.raises(AllocationError):
            ResourceRequest(spec=paper_apps[0], priority=0.0)


class TestFairShare:
    def test_even_split(self, paper_machine, requests):
        out = FairShareArbiter().decide(paper_machine, requests)
        assert np.all(out.allocation.counts == 2)
        assert out.predicted_gflops == pytest.approx(140.0)

    def test_no_oversubscription(self, paper_machine, requests):
        out = FairShareArbiter().decide(paper_machine, requests)
        out.allocation.validate(paper_machine)

    def test_max_threads_clamped(self, paper_machine, paper_apps):
        reqs = [
            ResourceRequest(spec=a, max_threads=4) for a in paper_apps
        ]
        out = FairShareArbiter().decide(paper_machine, reqs)
        for a in paper_apps:
            assert out.allocation.threads_of(a.name).sum() <= 4

    def test_leftover_goes_to_priority(self, paper_apps):
        from repro.machine import MachineTopology

        m = MachineTopology.homogeneous(
            num_nodes=1,
            cores_per_node=5,
            peak_gflops_per_core=10.0,
            local_bandwidth=32.0,
        )
        reqs = [
            ResourceRequest(spec=a, priority=p)
            for a, p in zip(paper_apps, [1, 1, 1, 9])
        ]
        out = FairShareArbiter().decide(m, reqs)
        assert out.allocation.threads_of("comp").sum() == 2

    def test_empty_requests_rejected(self, paper_machine):
        with pytest.raises(AllocationError):
            FairShareArbiter().decide(paper_machine, [])

    def test_impossible_minimums_rejected(self, paper_machine, paper_apps):
        reqs = [
            ResourceRequest(spec=a, min_threads=20) for a in paper_apps
        ]
        with pytest.raises(AllocationError):
            FairShareArbiter().decide(paper_machine, reqs)


class TestAgentArbiter:
    def test_beats_fair_share(self, paper_machine, requests):
        fair = FairShareArbiter().decide(paper_machine, requests)
        agent = AgentArbiter().decide(paper_machine, requests)
        assert agent.predicted_gflops >= fair.predicted_gflops

    def test_minimums_respected(self, paper_machine, paper_apps):
        reqs = [
            ResourceRequest(spec=a, min_threads=2) for a in paper_apps
        ]
        out = AgentArbiter().decide(paper_machine, reqs)
        for a in paper_apps:
            assert out.allocation.threads_of(a.name).sum() >= 2

    def test_maximums_respected(self, paper_machine, paper_apps):
        reqs = [
            ResourceRequest(
                spec=a,
                max_threads=8 if a.name == "comp" else None,
            )
            for a in paper_apps
        ]
        out = AgentArbiter().decide(paper_machine, reqs)
        assert out.allocation.threads_of("comp").sum() <= 8

    def test_log_mentions_search(self, paper_machine, requests):
        out = AgentArbiter().decide(paper_machine, requests)
        assert any("search" in line for line in out.log)


class TestCooperativeConsensus:
    def test_reaches_valid_fixpoint(self, paper_machine, requests):
        out = CooperativeConsensus().decide(paper_machine, requests)
        out.allocation.validate(paper_machine)
        assert out.rounds >= 1

    def test_equal_priorities_equal_shares(self, paper_machine, requests):
        out = CooperativeConsensus().decide(paper_machine, requests)
        totals = out.allocation.threads_per_app
        assert totals.max() - totals.min() <= 1

    def test_priority_shifts_shares(self, paper_machine, paper_apps):
        reqs = [
            ResourceRequest(spec=a, priority=p)
            for a, p in zip(paper_apps, [1.0, 1.0, 1.0, 5.0])
        ]
        out = CooperativeConsensus().decide(paper_machine, reqs)
        assert (
            out.allocation.threads_of("comp").sum()
            > out.allocation.threads_of("mem0").sum()
        )

    def test_numa_bad_claims_home_first(
        self, numa_bad_machine, numa_bad_apps
    ):
        reqs = [ResourceRequest(spec=a) for a in numa_bad_apps]
        out = CooperativeConsensus().decide(numa_bad_machine, reqs)
        bad = out.allocation.threads_of("bad")
        # the NUMA-bad app's claim concentrates on its home node 3
        assert bad[3] == bad.max()

    def test_deterministic(self, paper_machine, requests):
        a = CooperativeConsensus().decide(paper_machine, requests)
        b = CooperativeConsensus().decide(paper_machine, requests)
        assert a.allocation.as_mapping() == b.allocation.as_mapping()

    def test_not_all_runtimes_pick_node_zero(self, paper_machine):
        # The paper's coordination pitfall: two apps each wanting exactly
        # one node's worth of cores must not both sit on node 0.
        apps = [
            AppSpec.memory_bound("a", 0.5),
            AppSpec.memory_bound("b", 0.5),
        ]
        reqs = [
            ResourceRequest(spec=s, min_threads=8, max_threads=8)
            for s in apps
        ]
        out = CooperativeConsensus().decide(paper_machine, reqs)
        counts = out.allocation.counts
        per_node = counts.sum(axis=0)
        assert per_node.max() <= 8  # no node over-claimed
