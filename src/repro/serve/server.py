"""Asyncio unix-socket transport for the allocation service.

:class:`ServiceServer` binds one :class:`~repro.serve.service
.AllocationService` to a ``AF_UNIX`` stream socket speaking the
newline-delimited-JSON protocol of :mod:`repro.serve.protocol`: one
request per line in, one reply line out, plus unsolicited pushed lines
(allocation updates, the final shutdown notice) interleaved on the same
stream.

Transport properties:

* **Clock** — the service runs on ``loop.time()`` (the event loop's
  monotonic clock) and debounce timers are ``loop.call_later``; no
  wall-clock arithmetic (TIME001).
* **Backpressure** — pushed messages are written through a bounded
  per-connection outbox :class:`asyncio.Queue` drained by one writer
  task that awaits ``writer.drain()``, so one slow consumer stalls only
  its own stream, never the service core or other sessions.  When a
  session's outbox overflows (it stopped reading entirely) the
  connection is dropped; the at-least-once re-push loop recovers it on
  reconnect.
* **Graceful drain** — :meth:`stop` closes admission via
  :meth:`~repro.serve.service.AllocationService.drain`, flushes every
  outbox (each connection's queue receives the
  :class:`~repro.serve.protocol.ShutdownNotice` and then a sentinel),
  waits for the writer tasks, and only then closes the socket.

:class:`AsyncServiceClient` is the matching test/tooling client: it
separates direct replies (tagged ``in_reply_to``) from pushed messages
arriving on the same stream.
"""

from __future__ import annotations

import asyncio
import contextlib

from repro.core.spec import AppSpec
from repro.errors import ServiceError
from repro.serve.protocol import (
    Ack,
    AllocationUpdate,
    Deregister,
    ErrorReply,
    ProgressReport,
    QueryAllocation,
    Register,
    decode_message,
    encode_message,
)
from repro.serve.service import AllocationService, ServiceConfig

__all__ = [
    "ServiceServer",
    "AsyncServiceClient",
]

#: Sentinel closing a connection's outbox queue.
_CLOSE = object()


class _Connection:
    """Server-side state of one connected runtime."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        outbox_limit: int,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=outbox_limit)
        self.session_name: str | None = None
        self.writer_task: asyncio.Task | None = None

    def push(self, message) -> None:
        """Enqueue a pushed message; overflow drops the connection.

        Called synchronously from the service core.  A full outbox
        means the peer stopped reading its stream; rather than block
        the core (or buffer without bound) the connection is abandoned
        — the runtime re-learns the allocation on reconnect through
        the at-least-once re-push path.
        """
        try:
            self.outbox.put_nowait(message)
        except asyncio.QueueFull:
            with contextlib.suppress(asyncio.QueueFull):
                # Drop the connection from the writer side: clear one
                # slot so the sentinel fits, then close.
                self.outbox.get_nowait()
                self.outbox.put_nowait(_CLOSE)

    async def drain_outbox(self) -> None:
        """Writer task body: serialize the outbox onto the socket."""
        while True:
            message = await self.outbox.get()
            if message is _CLOSE:
                break
            self.writer.write(
                (encode_message(message) + "\n").encode("utf-8")
            )
            try:
                await self.writer.drain()
            except (ConnectionError, BrokenPipeError):
                break

    def close_outbox(self) -> None:
        """Ask the writer task to finish after the queued messages."""
        with contextlib.suppress(asyncio.QueueFull):
            self.outbox.put_nowait(_CLOSE)


class ServiceServer:
    """NDJSON unix-socket front end of one allocation service.

    Parameters
    ----------
    config:
        Service configuration (machine, debounce, resilience).
    path:
        Filesystem path of the unix socket to bind.
    outbox_limit:
        Pushed messages buffered per connection before it is judged
        dead and dropped (backpressure bound).
    max_line_bytes:
        Upper bound on one NDJSON request line.  A peer that exceeds
        it gets an :class:`~repro.serve.protocol.ErrorReply` code
        ``frame-too-large`` and is disconnected — after a torn frame
        there is no reliable record boundary to resynchronise on —
        instead of growing the read buffer without bound.
    journal_path:
        Optional write-ahead-journal directory
        (:mod:`repro.serve.persist`).  When it already holds journal
        segments, :meth:`start` *recovers* the service from them
        before serving; either way every state change is journaled so
        the next start survives a crash.
    """

    def __init__(
        self,
        config: ServiceConfig,
        path: str,
        *,
        outbox_limit: int = 64,
        max_line_bytes: int = 64 * 1024,
        journal_path: str | None = None,
    ) -> None:
        if max_line_bytes < 1024:
            raise ServiceError(
                f"max_line_bytes must be >= 1024, got {max_line_bytes}"
            )
        self.config = config
        self.path = path
        self.outbox_limit = outbox_limit
        self.max_line_bytes = max_line_bytes
        self.journal_path = journal_path
        self.service: AllocationService | None = None
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()

    async def start(self) -> AllocationService:
        """Bind the socket and start serving; returns the live core."""
        if self._server is not None:
            raise ServiceError(f"server already started on {self.path}")
        loop = asyncio.get_running_loop()
        if self.journal_path is not None:
            self.service = AllocationService.recover(
                self.journal_path,
                self.config,
                clock=loop.time,
                call_later=loop.call_later,
            )
        else:
            self.service = AllocationService(
                self.config,
                clock=loop.time,
                call_later=loop.call_later,
            )
        self._server = await asyncio.start_unix_server(
            self._serve_connection,
            path=self.path,
            limit=self.max_line_bytes,
        )
        return self.service

    async def stop(self, reason: str = "draining") -> None:
        """Graceful drain: notify sessions, flush streams, unbind."""
        if self._server is None:
            return
        assert self.service is not None
        self.service.drain(reason)
        self._server.close()
        await self._server.wait_closed()
        writers = []
        for conn in list(self._connections):
            conn.close_outbox()
            if conn.writer_task is not None:
                writers.append(conn.writer_task)
        if writers:
            await asyncio.gather(*writers, return_exceptions=True)
        for conn in list(self._connections):
            conn.writer.close()
            with contextlib.suppress(ConnectionError):
                await conn.writer.wait_closed()
        self._connections.clear()
        self._server = None

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        conn = _Connection(reader, writer, self.outbox_limit)
        self._connections.add(conn)
        conn.writer_task = asyncio.ensure_future(conn.drain_outbox())
        service = self.service
        assert service is not None
        loop = asyncio.get_running_loop()
        try:
            # Not a retry loop: one iteration per request line, bounded
            # by the peer closing its stream (EOF breaks out).
            while True:  # repro: noqa[RETRY001]
                try:
                    line = await reader.readline()
                except ValueError:
                    # The peer blew through max_line_bytes; past a torn
                    # frame there is no trustworthy record boundary
                    # left, so reply and drop the connection.
                    conn.push(
                        ErrorReply(
                            error=(
                                f"request line exceeded the "
                                f"{self.max_line_bytes}-byte frame cap"
                            ),
                            code="frame-too-large",
                        )
                    )
                    break
                if not line:
                    break
                received_at = loop.time()
                try:
                    message = decode_message(line.decode("utf-8"))
                except UnicodeDecodeError as exc:
                    conn.push(
                        ErrorReply(
                            error=f"request line is not UTF-8: {exc}",
                            code="malformed",
                        )
                    )
                    continue
                except ServiceError as exc:
                    conn.push(
                        ErrorReply(
                            error=str(exc),
                            code=getattr(exc, "code", None) or "malformed",
                        )
                    )
                    continue
                if isinstance(message, Register):
                    reply = service.handle(
                        message, received_at=received_at
                    )
                    if isinstance(reply, Ack):
                        conn.session_name = message.name
                        service.subscribe(message.name, conn.push)
                else:
                    reply = service.handle(
                        message, received_at=received_at
                    )
                conn.push(reply)
                if (
                    isinstance(message, Deregister)
                    and isinstance(reply, Ack)
                    and conn.session_name == message.name
                ):
                    conn.session_name = None
        except ConnectionError:  # repro: noqa[EXC002]
            # Mid-read disconnect (reset, broken pipe): nothing to
            # reply to — fall through to the teardown below.
            pass
        finally:
            if conn.session_name is not None:
                service.unsubscribe(conn.session_name)
            conn.close_outbox()
            if conn.writer_task is not None:
                with contextlib.suppress(asyncio.CancelledError):
                    await conn.writer_task
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()
            self._connections.discard(conn)


class AsyncServiceClient:
    """Socket client separating replies from pushed stream messages.

    Every request awaits the next ``in_reply_to``-tagged line; pushed
    lines (``in_reply_to`` absent or ``None``) encountered while
    waiting are buffered in :attr:`pushed`.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        #: pushed messages in arrival order.
        self.pushed: list = []

    async def connect(self, path: str) -> None:
        """Open the unix-socket stream."""
        self.reader, self.writer = await asyncio.open_unix_connection(
            path
        )

    async def close(self) -> None:
        """Close the stream (idempotent)."""
        if self.writer is not None:
            self.writer.close()
            with contextlib.suppress(ConnectionError):
                await self.writer.wait_closed()
            self.writer = None
            self.reader = None

    async def _request(self, message):
        if self.reader is None or self.writer is None:
            raise ServiceError("client is not connected")
        self.writer.write(
            (encode_message(message) + "\n").encode("utf-8")
        )
        await self.writer.drain()
        while True:
            line = await self.reader.readline()
            if not line:
                raise ServiceError(
                    "connection closed while awaiting a reply"
                )
            reply = decode_message(line.decode("utf-8"))
            if getattr(reply, "in_reply_to", None) is not None:
                if isinstance(reply, ErrorReply):
                    raise ServiceError(reply.error)
                return reply
            self.pushed.append(reply)

    async def register(self, app: AppSpec) -> Ack:
        """Join the live workload."""
        return await self._request(Register(name=app.name, app=app))

    async def deregister(self) -> Ack:
        """Leave the live workload."""
        return await self._request(Deregister(name=self.name))

    async def report(
        self,
        time: float,
        progress: dict[str, float] | None = None,
        cpu_load: float = 0.0,
        acked_epoch: int | None = None,
    ) -> Ack:
        """Send one progress heartbeat."""
        return await self._request(
            ProgressReport(
                name=self.name,
                time=time,
                progress=progress or {},
                cpu_load=cpu_load,
                acked_epoch=acked_epoch,
            )
        )

    async def query_allocation(self) -> AllocationUpdate:
        """Pull the current per-node thread counts."""
        return await self._request(QueryAllocation(name=self.name))

    async def next_pushed(self, timeout: float = 1.0):
        """The next pushed message (buffered or newly read)."""
        if self.pushed:
            return self.pushed.pop(0)
        if self.reader is None:
            raise ServiceError("client is not connected")
        line = await asyncio.wait_for(
            self.reader.readline(), timeout=timeout
        )
        if not line:
            raise ServiceError("connection closed")
        return decode_message(line.decode("utf-8"))
