"""The spec-invariant checker: clean on every preset, loud on breakage."""

import numpy as np
import pytest

from repro.core.model import (
    AppResult,
    GroupResult,
    NodeResult,
    Prediction,
)
from repro.core.allocation import ThreadAllocation
from repro.core.spec import AppSpec
from repro.lint.invariants import (
    INVARIANT_IDS,
    _check_conservation,
    _check_demand_caps,
    _check_link_caps,
    check_all_presets,
    check_preset,
    example_workloads,
    iter_presets,
)
from repro.machine import presets as presets_module


PRESET_NAMES = list(presets_module.__all__)


class TestPresetsAreClean:
    @pytest.mark.parametrize("name", PRESET_NAMES)
    def test_preset_satisfies_all_invariants(self, name):
        assert check_preset(name) == []

    def test_check_all_presets_covers_every_preset(self):
        assert check_all_presets() == []
        assert [name for name, _ in iter_presets()] == PRESET_NAMES

    def test_invariant_catalogue_is_stable(self):
        assert set(INVARIANT_IDS) == {
            "INV001",
            "INV002",
            "INV003",
            "INV004",
        }


class TestExampleWorkloads:
    def test_multi_node_machine_gets_three_shapes(self):
        machine = presets_module.model_machine()
        shapes = dict(
            (label, (apps, alloc))
            for label, apps, alloc in example_workloads(machine)
        )
        assert set(shapes) == {"even", "skewed", "saturating"}
        apps, _ = shapes["even"]
        assert {a.name for a in apps} == {"mem", "comp", "bad"}

    def test_single_node_machine_skips_numa_bad(self):
        machine = presets_module.uma_machine()
        for _, apps, alloc in example_workloads(machine):
            assert all(a.name != "bad" for a in apps)
            alloc.validate(machine)

    def test_workloads_fit_every_preset(self):
        for name, ctor in iter_presets():
            machine = ctor()
            for _, _, alloc in example_workloads(machine):
                alloc.validate(machine)


def fabricated_prediction(*, over_grant=False, leak=False):
    """A hand-built Prediction violating chosen conservation laws."""
    group = GroupResult(
        app_name="mem",
        source_node=0,
        threads=2,
        demand_per_thread=10.0,
        local_bw=30.0 if over_grant else 16.0,
        remote_bw=0.0,
        gflops=8.0,
    )
    app = AppResult(
        name="mem",
        gflops=group.gflops,
        bandwidth=group.total_bw,
        threads=group.threads,
        groups=(group,),
    )
    node = NodeResult(
        node_id=0,
        capacity=32.0,
        remote_served=0.0,
        local_capacity=32.0,
        local_consumed=group.local_bw - (8.0 if leak else 0.0),
        baseline=4.0,
    )
    allocation = ThreadAllocation(
        app_names=("mem",), counts=np.array([[2]])
    )
    return Prediction(
        machine_name="fabricated",
        allocation=allocation,
        apps=(app,),
        nodes=(node,),
    )


class TestDetectorsFire:
    def test_conservation_detects_leak(self):
        findings = list(
            _check_conservation("t", fabricated_prediction(leak=True))
        )
        assert any("leak" in m for m in findings)

    def test_conservation_clean_prediction_passes(self):
        assert list(
            _check_conservation("t", fabricated_prediction())
        ) == []

    def test_demand_cap_detects_over_grant(self):
        machine = presets_module.model_machine()
        apps = [AppSpec.memory_bound("mem", 0.5)]
        findings = list(
            _check_demand_caps(
                "t", machine, apps, fabricated_prediction(over_grant=True)
            )
        )
        assert any("above its demand" in m for m in findings)

    def test_link_cap_detects_remote_perfect_traffic(self):
        machine = presets_module.model_machine()
        apps = [AppSpec.memory_bound("mem", 0.5)]
        pred = fabricated_prediction()
        bad_group = GroupResult(
            app_name="mem",
            source_node=1,
            threads=1,
            demand_per_thread=10.0,
            local_bw=0.0,
            remote_bw=5.0,  # NUMA-perfect apps must not draw remotely
            gflops=2.0,
        )
        app = AppResult(
            name="mem",
            gflops=2.0,
            bandwidth=5.0,
            threads=1,
            groups=(bad_group,),
        )
        pred = Prediction(
            machine_name=pred.machine_name,
            allocation=pred.allocation,
            apps=(app,),
            nodes=pred.nodes,
        )
        findings = list(_check_link_caps("t", machine, apps, pred))
        assert any("remotely" in m for m in findings)

    def test_check_preset_anchors_at_presets_file(self, monkeypatch):
        # Force a violation through a preset whose model output is bad:
        # monkeypatch the conservation checker to report one finding.
        import repro.lint.invariants as inv

        def fake_conservation(label, prediction):
            yield f"[{label}] fabricated finding"

        monkeypatch.setattr(
            inv, "_check_conservation", fake_conservation
        )
        findings = inv.check_preset("model_machine")
        assert findings, "patched checker must surface violations"
        assert all(v.rule_id == "INV001" for v in findings)
        assert all("presets.py" in v.file for v in findings)
        assert all(v.message.startswith("preset 'model_machine'") for v in findings)
