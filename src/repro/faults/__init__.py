"""Deterministic fault injection for the agent <-> runtime path.

The robustness counterpart of :mod:`repro.obs`: where observability
makes behaviour visible, :mod:`repro.faults` makes *misbehaviour*
schedulable.  A :class:`FaultPlan` scripts specific failures (crash,
hang, stale/corrupt report, dropped/delayed command, slowdown) at
specific simulated times; a :class:`ChaosConfig` adds seeded ambient
unreliability; an :class:`InjectionProxy` executes both against any
:class:`~repro.agent.protocol.RuntimeEndpoint` without either side
knowing.  :func:`apply_journal_fault` corrupts
:mod:`repro.serve.persist` journal directories on disk (torn tail,
stale snapshot, duplicated segment).  :func:`run_scenario` packages
full recovery experiments (``python -m repro chaos``).

Everything is seeded and replayable: the same plan + seed produces the
same faults, retries, quarantines, and recovery, run after run.
"""

from repro.faults.chaos import ChaosConfig
from repro.faults.journal import apply_journal_fault
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.proxy import InjectedFault, InjectionProxy
from repro.faults.scenarios import SCENARIOS, RecoveryReport, run_scenario

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "ChaosConfig",
    "InjectedFault",
    "InjectionProxy",
    "apply_journal_fault",
    "RecoveryReport",
    "SCENARIOS",
    "run_scenario",
]
