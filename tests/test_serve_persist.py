"""The write-ahead journal and crash recovery: atomic writes, CRC'd
records, snapshot compaction, tolerance of torn tails / stale snapshots
/ duplicated segments, byte-identical service recovery, and the
pure-observer guarantee (a journaled run equals an un-journaled one)."""

import hashlib
import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AppSpec
from repro.errors import ServiceError
from repro.machine import model_machine
from repro.serve import (
    AllocationService,
    Deregister,
    ProgressReport,
    Register,
    ServiceConfig,
    run_replay,
)
from repro.serve.persist import (
    Journal,
    atomic_write,
    decode_record,
    encode_record,
    latest_journal_segment,
    load_journal,
)
from repro.sim.engine import Simulator

MEM = AppSpec.memory_bound("mem", 0.5)
BAD = AppSpec.numa_bad("bad", 1.0, home_node=0)


def make_journaled(tmp_path, **config_kwargs):
    sim = Simulator()
    config_kwargs.setdefault("machine", model_machine())
    journal = Journal.open(str(tmp_path), fsync=False)
    service = AllocationService(
        ServiceConfig(**config_kwargs),
        clock=lambda: sim.now,
        call_later=lambda delay, fn: sim.schedule(delay, fn),
        journal=journal,
    )
    return sim, service


def recover(tmp_path, sim, **config_kwargs):
    config_kwargs.setdefault("machine", model_machine())
    return AllocationService.recover(
        str(tmp_path),
        ServiceConfig(**config_kwargs),
        clock=lambda: sim.now,
        call_later=lambda delay, fn: sim.schedule(delay, fn),
        fsync=False,
    )


class TestAtomicWrite:
    def test_writes_and_overwrites(self, tmp_path):
        target = str(tmp_path / "state.json")
        atomic_write(target, b"first", fsync=False)
        assert open(target, "rb").read() == b"first"
        atomic_write(target, b"second", fsync=False)
        assert open(target, "rb").read() == b"second"

    def test_leaves_no_temp_file_behind(self, tmp_path):
        target = str(tmp_path / "state.json")
        atomic_write(target, b"data", fsync=False)
        assert os.listdir(tmp_path) == ["state.json"]


class TestRecordCodec:
    def test_round_trip(self):
        line = encode_record(7, {"kind": "register", "name": "mem"})
        assert "\n" not in line
        seq, event = decode_record(line)
        assert seq == 7
        assert event == {"kind": "register", "name": "mem"}

    def test_crc_detects_a_flipped_byte(self):
        line = encode_record(1, {"kind": "report", "t": 0.5})
        tampered = line.replace("0.5", "0.6")
        with pytest.raises(ServiceError):
            decode_record(tampered)

    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1]",
            '{"seq": 1, "event": {}}',  # no crc
            '{"seq": 0, "event": {}, "crc": 1}',  # seq < 1
            '{"seq": 1, "event": [], "crc": 1}',  # event not a dict
            '{"seq": 1, "event": {}, "crc": "x"}',  # crc not an int
        ],
    )
    def test_malformed_rejected(self, line):
        with pytest.raises(ServiceError):
            decode_record(line)


class TestJournalWriter:
    def test_append_load_round_trip(self, tmp_path):
        journal = Journal.open(str(tmp_path), fsync=False)
        events = [{"kind": "register", "name": f"a{i}"} for i in range(5)]
        for event in events:
            journal.append(event)
        journal.close()
        loaded = load_journal(str(tmp_path))
        assert list(loaded.events) == events
        assert loaded.last_seq == 5
        assert not loaded.truncated_tail

    def test_closed_journal_refuses_appends(self, tmp_path):
        journal = Journal.open(str(tmp_path), fsync=False)
        journal.close()
        with pytest.raises(ServiceError):
            journal.append({"kind": "register"})

    def test_reopen_continues_the_seq(self, tmp_path):
        first = Journal.open(str(tmp_path), fsync=False)
        first.append({"kind": "register", "name": "a"})
        first.close()
        second = Journal.open(str(tmp_path), fsync=False)
        assert second.generation > first.generation
        second.append({"kind": "register", "name": "b"})
        second.close()
        loaded = load_journal(str(tmp_path))
        assert loaded.last_seq == 2
        assert [e["name"] for e in loaded.events] == ["a", "b"]

    def test_compaction_snapshots_and_rolls_generation(self, tmp_path):
        journal = Journal.open(str(tmp_path), fsync=False)
        journal.append({"kind": "register", "name": "a"})
        journal.compact({"marker": 1})
        journal.append({"kind": "register", "name": "b"})
        journal.close()
        loaded = load_journal(str(tmp_path))
        assert loaded.state == {"marker": 1}
        assert [e["name"] for e in loaded.events] == ["b"]
        assert loaded.last_seq == 2

    def test_auto_compaction_honours_compact_every(self, tmp_path):
        journal = Journal.open(str(tmp_path), compact_every=2, fsync=False)
        for i in range(3):
            journal.append({"kind": "register", "name": f"a{i}"})
            if journal.should_compact():
                journal.compact({"seen": i})
        journal.close()
        loaded = load_journal(str(tmp_path))
        assert loaded.state == {"seen": 1}
        assert [e["name"] for e in loaded.events] == ["a2"]

    def test_prune_keeps_the_second_newest_snapshot_chain(self, tmp_path):
        journal = Journal.open(str(tmp_path), fsync=False)
        for i in range(3):
            journal.append({"kind": "register", "name": f"a{i}"})
            journal.compact({"upto": i})
        journal.close()
        names = sorted(os.listdir(tmp_path))
        snapshots = [n for n in names if n.startswith("snapshot-")]
        # At least two snapshot generations survive pruning, so a
        # corrupt newest snapshot always has a fallback chain.
        assert len(snapshots) >= 2


class TestTornAndCorrupt:
    def _journal(self, tmp_path, records=4):
        journal = Journal.open(str(tmp_path), fsync=False)
        for i in range(records):
            journal.append({"kind": "register", "name": f"a{i}"})
        journal.close()
        return str(tmp_path)

    def test_torn_tail_is_truncated(self, tmp_path):
        path = self._journal(tmp_path)
        segment = latest_journal_segment(path)
        with open(segment, "ab") as handle:  # repro: noqa[IO001]
            handle.write(b'{"crc": 1, "event": {"kind": "regi')
        loaded = load_journal(path)
        assert loaded.truncated_tail
        assert loaded.last_seq == 4  # every complete record survived

    def test_mid_chain_corruption_stops_replay(self, tmp_path):
        path = self._journal(tmp_path)
        segment = latest_journal_segment(path)
        lines = open(segment, "rb").read().splitlines()
        lines[1] = b'{"crc": 1, "event": {}, "seq": 2}'  # wrong CRC
        with open(segment, "wb") as handle:  # repro: noqa[IO001]
            handle.write(b"\n".join(lines) + b"\n")
        loaded = load_journal(path)
        # Not a tail: replay stops at the last consistent prefix
        # instead of applying events on a broken base.
        assert not loaded.truncated_tail
        assert loaded.last_seq == 1

    def test_sequence_gap_stops_replay(self, tmp_path):
        path = self._journal(tmp_path)
        segment = latest_journal_segment(path)
        lines = open(segment, "rb").read().splitlines()
        del lines[1]  # seq 2 vanishes: 1 -> 3 is a gap
        with open(segment, "wb") as handle:  # repro: noqa[IO001]
            handle.write(b"\n".join(lines) + b"\n")
        loaded = load_journal(path)
        assert loaded.last_seq == 1
        assert any("gap" in note for note in loaded.notes)

    def test_corrupt_snapshot_falls_back_a_generation(self, tmp_path):
        journal = Journal.open(str(tmp_path), fsync=False)
        journal.append({"kind": "register", "name": "a"})
        journal.compact({"upto": "a"})
        journal.append({"kind": "register", "name": "b"})
        journal.compact({"upto": "b"})
        journal.append({"kind": "register", "name": "c"})
        journal.close()
        snapshots = sorted(
            n for n in os.listdir(tmp_path) if n.startswith("snapshot-")
        )
        newest = os.path.join(str(tmp_path), snapshots[-1])
        with open(newest, "r+b") as handle:  # repro: noqa[IO001]
            handle.write(b"\x00GARBAGE\x00")
        loaded = load_journal(str(tmp_path))
        assert loaded.snapshot_fallbacks == 1
        assert loaded.state == {"upto": "a"}
        # The older chain replays forward to the same final seq.
        assert loaded.last_seq == 3
        assert [e["name"] for e in loaded.events] == ["b", "c"]

    def test_empty_directory_recovers_to_nothing(self, tmp_path):
        loaded = load_journal(str(tmp_path))
        assert loaded.state is None
        assert loaded.events == ()
        assert loaded.last_seq == 0


class TestServiceRecovery:
    def test_recovered_registry_is_byte_identical(self, tmp_path):
        sim, service = make_journaled(tmp_path)
        service.handle(Register(name="mem", app=MEM))
        sim.run_until(0.05)
        service.handle(Register(name="bad", app=BAD))
        sim.run_until(0.2)
        service.handle(
            ProgressReport(
                name="mem", time=sim.now, progress={"tasks": 3.0},
                cpu_load=0.7,
            )
        )
        service.crash()
        recovered = recover(tmp_path, sim)
        assert recovered.recoveries == 1
        assert (
            recovered.registry.to_snapshot()
            == service.registry.to_snapshot()
        )
        assert (
            recovered.current_allocation() == service.current_allocation()
        )
        assert recovered.current_score() == service.current_score()

    def test_recovery_survives_a_deregister(self, tmp_path):
        sim, service = make_journaled(tmp_path)
        service.handle(Register(name="mem", app=MEM))
        service.handle(Register(name="bad", app=BAD))
        sim.run_until(0.1)
        service.handle(Deregister(name="bad"))
        sim.run_until(0.2)
        service.crash()
        recovered = recover(tmp_path, sim)
        assert (
            recovered.registry.to_snapshot()
            == service.registry.to_snapshot()
        )
        assert sorted(recovered.current_allocation()) == ["mem"]

    def test_recover_refuses_a_different_machine(self, tmp_path):
        from repro.machine import uma_machine

        sim, service = make_journaled(tmp_path)
        service.handle(Register(name="mem", app=MEM))
        sim.run_until(0.1)
        # The topology guard lives in the snapshot, so take one.
        service.journal.compact(service.snapshot_state())
        service.crash()
        with pytest.raises(ServiceError):
            recover(tmp_path, sim, machine=uma_machine())

    def test_recover_refuses_a_different_mode(self, tmp_path):
        sim, service = make_journaled(tmp_path)
        service.handle(Register(name="mem", app=MEM))
        sim.run_until(0.1)
        service.journal.compact(service.snapshot_state())
        service.crash()
        with pytest.raises(ServiceError):
            recover(tmp_path, sim, mode="delta")

    def test_recovery_compacts_so_the_next_crash_replays_from_here(
        self, tmp_path
    ):
        sim, service = make_journaled(tmp_path)
        service.handle(Register(name="mem", app=MEM))
        sim.run_until(0.1)
        service.crash()
        first = recover(tmp_path, sim)
        first.crash()
        second = recover(tmp_path, sim)
        assert second.last_recovery.state is not None
        assert (
            second.registry.to_snapshot() == first.registry.to_snapshot()
        )


def _digest(report) -> str:
    data = report.to_dict()
    for volatile in ("journal_records", "recoveries", "recovery_replay"):
        data.pop(volatile, None)
    canonical = json.dumps(data, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class TestPureObserver:
    @pytest.mark.parametrize("name", ["churn-basic", "churn-burst"])
    def test_journaled_run_is_byte_identical(self, name, tmp_path):
        plain = run_replay(name, seed=0)
        journaled = run_replay(name, seed=0, journal=str(tmp_path))
        assert journaled.journal_records > 0
        assert _digest(journaled) == _digest(plain)


APPS = {
    "alpha": AppSpec.memory_bound("alpha", 0.5),
    "beta": AppSpec.compute_bound("beta", 10.0),
    "gamma": AppSpec.memory_bound("gamma", 0.8),
}

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["join", "leave", "report"]),
        st.sampled_from(sorted(APPS)),
    ),
    min_size=1,
    max_size=12,
)


def _run_churn(ops, crash_after=None):
    """Apply ``ops`` on the simulator, optionally crash-and-recover.

    Invalid operations (joining a live name, leaving a missing one)
    get deterministic ErrorReplies in both runs, so arbitrary
    interleavings are comparable.
    """
    directory = tempfile.mkdtemp(prefix="repro-persist-prop-")
    sim = Simulator()
    config = ServiceConfig(machine=model_machine(), debounce=0.02)
    holder = {
        "service": AllocationService(
            config,
            clock=lambda: sim.now,
            call_later=lambda delay, fn: sim.schedule(delay, fn),
            journal=Journal.open(directory, fsync=False),
        )
    }

    def apply(op):
        kind, name = op
        service = holder["service"]
        if kind == "join":
            service.handle(Register(name=name, app=APPS[name]))
        elif kind == "leave":
            service.handle(Deregister(name=name))
        else:
            service.handle(
                ProgressReport(
                    name=name, time=sim.now, progress={}, cpu_load=0.5
                )
            )

    def crash_and_recover():
        holder["service"].crash()
        holder["service"] = AllocationService.recover(
            directory,
            config,
            clock=lambda: sim.now,
            call_later=lambda delay, fn: sim.schedule(delay, fn),
            fsync=False,
        )

    for index, op in enumerate(ops):
        sim.schedule_at(0.01 * (index + 1), lambda op=op: apply(op))
        if crash_after is not None and index == crash_after:
            sim.schedule_at(0.01 * (index + 1) + 0.005, crash_and_recover)
    sim.run_until(0.01 * len(ops) + 0.5)  # let every debounce settle
    # The *next* re-optimization must agree too: join a probe app in
    # quiescence and let its churn settle before the final comparison.
    holder["service"].handle(
        Register(name="probe", app=AppSpec.compute_bound("probe", 5.0))
    )
    sim.run_until(0.01 * len(ops) + 1.0)
    return holder["service"]


def _workload_state(service) -> dict:
    snapshot = service.registry.to_snapshot()
    for session in snapshot["sessions"]:
        # At-least-once delivery bookkeeping tracks when the debounced
        # re-optimizations fired relative to the churn — which a
        # mid-stream crash legitimately shifts.  The workload state
        # itself must converge exactly.
        session.pop("pushed_epoch")
    return snapshot


class TestCrashRecoveryProperty:
    @given(ops=ops_strategy, data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_crashed_run_converges_to_the_uncrashed_one(self, ops, data):
        crash_after = data.draw(
            st.integers(0, len(ops) - 1), label="crash_after"
        )
        baseline = _run_churn(ops)
        crashed = _run_churn(ops, crash_after=crash_after)
        assert crashed.recoveries == 1
        assert _workload_state(crashed) == _workload_state(baseline)
        assert (
            crashed.current_allocation() == baseline.current_allocation()
        )
        assert crashed.current_score() == baseline.current_score()
