"""ASCII timelines from execution traces.

Renders a Gantt-style view of worker activity — task execution, blocked
intervals, agent commands — from a :class:`~repro.sim.trace.Tracer`.
Used by the examples to *show* the core shifting the agent performs, and
handy when debugging scheduler behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.trace import TraceKind, Tracer

__all__ = ["ActivityInterval", "extract_intervals", "render_timeline"]


@dataclass(frozen=True, slots=True)
class ActivityInterval:
    """One contiguous activity of one subject."""

    subject: str
    start: float
    end: float
    kind: str  # "task" or "blocked"
    label: str = ""


def extract_intervals(
    tracer: Tracer, *, until: float | None = None
) -> list[ActivityInterval]:
    """Pair start/finish trace events into intervals.

    Task intervals come from TASK_STARTED/TASK_FINISHED pairs; blocked
    intervals from THREAD_BLOCKED/THREAD_UNBLOCKED.  Unclosed intervals
    are extended to ``until`` (default: the last event's time).
    """
    events = list(tracer)
    if until is None:
        until = max((e.time for e in events), default=0.0)
    open_tasks: dict[str, tuple[float, str]] = {}
    open_blocks: dict[str, float] = {}
    out: list[ActivityInterval] = []
    for e in events:
        if e.kind is TraceKind.TASK_STARTED:
            open_tasks[e.subject] = (e.time, e.detail.get("label", ""))
        elif e.kind is TraceKind.TASK_FINISHED:
            if e.subject in open_tasks:
                start, label = open_tasks.pop(e.subject)
                out.append(
                    ActivityInterval(
                        subject=e.subject,
                        start=start,
                        end=e.time,
                        kind="task",
                        label=label,
                    )
                )
        elif e.kind is TraceKind.THREAD_BLOCKED:
            open_blocks[e.subject] = e.time
        elif e.kind is TraceKind.THREAD_UNBLOCKED:
            if e.subject in open_blocks:
                out.append(
                    ActivityInterval(
                        subject=e.subject,
                        start=open_blocks.pop(e.subject),
                        end=e.time,
                        kind="blocked",
                    )
                )
    for subject, (start, label) in open_tasks.items():
        out.append(
            ActivityInterval(
                subject=subject,
                start=start,
                end=until,
                kind="task",
                label=label,
            )
        )
    for subject, start in open_blocks.items():
        out.append(
            ActivityInterval(
                subject=subject, start=start, end=until, kind="blocked"
            )
        )
    out.sort(key=lambda i: (i.subject, i.start))
    return out


def render_timeline(
    tracer: Tracer,
    *,
    width: int = 80,
    subjects: list[str] | None = None,
    until: float | None = None,
) -> str:
    """Render one row per subject: '#' running a task, 'x' blocked.

    Each column is ``span / width`` seconds.  Blocked marks win over task
    marks: a worker suspended mid-task holds the task but is not
    executing, and the timeline shows execution.
    """
    if width <= 0:
        raise ConfigurationError("width must be positive")
    intervals = extract_intervals(tracer, until=until)
    if not intervals:
        return "(no activity recorded)"
    t_end = max(i.end for i in intervals)
    t_end = max(t_end, 1e-12)
    if subjects is None:
        subjects = sorted({i.subject for i in intervals})
    name_w = max(len(s) for s in subjects)
    lines = []
    for subject in subjects:
        row = ["."] * width
        # Tasks first, blocked second, so suspension overwrites.
        ordered = sorted(
            (iv for iv in intervals if iv.subject == subject),
            key=lambda iv: iv.kind == "blocked",
        )
        for iv in ordered:
            c0 = int(iv.start / t_end * width)
            c1 = max(c0 + 1, int(iv.end / t_end * width))
            mark = "#" if iv.kind == "task" else "x"
            for c in range(c0, min(c1, width)):
                row[c] = mark
        lines.append(f"{subject.ljust(name_w)} |{''.join(row)}|")
    lines.append(
        f"{' ' * name_w} 0{' ' * (width - len(f'{t_end:.4g}') - 1)}"
        f"{t_end:.4g}s"
    )
    return "\n".join(lines)
