"""Core-allocation arbitration between cooperating runtime systems.

Section II of the paper describes two ways multiple task-based runtimes can
agree on a partition of the node's cores:

* a dedicated **agent** process collects information from every runtime and
  issues thread-count commands (the architecture of Figure 1) — here the
  :class:`AgentArbiter`, which decides with the analytic model plus an
  allocation search, honouring per-application constraints;
* the runtimes **cooperatively come to an agreement** without a central
  agent — here :class:`CooperativeConsensus`, a deterministic round-based
  claim/yield protocol.

Both produce a :class:`~repro.core.allocation.ThreadAllocation`; the
dynamic, in-flight counterpart (reacting to load while applications run on
the simulator) lives in :mod:`repro.agent`.

The paper's coordination pitfall — "we would not want all runtime systems
to decide that ... they will all use node 0" — is exactly what the
consensus protocol's conflict-resolution rounds avoid: claims are ordered
deterministically, and a runtime that loses a contested core re-claims on
the least-contended node instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.allocation import ThreadAllocation
from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import (
    ExhaustiveSearch,
    HillClimbSearch,
    Objective,
    total_gflops,
)
from repro.core.spec import AppSpec, Placement
from repro.errors import AllocationError
from repro.machine.topology import MachineTopology

__all__ = [
    "ResourceRequest",
    "ArbitrationOutcome",
    "FairShareArbiter",
    "AgentArbiter",
    "CooperativeConsensus",
]


@dataclass(frozen=True, slots=True)
class ResourceRequest:
    """One runtime system's standing resource request.

    Attributes
    ----------
    spec:
        The analytic description of the application the runtime hosts.
    min_threads:
        Threads the application needs to make progress at all (machine
        wide).  Arbiters never go below this.
    max_threads:
        Threads beyond which the application cannot profit (machine wide);
        ``None`` means unbounded.
    priority:
        Relative weight used by priority-aware arbiters; higher wins ties.
    """

    spec: AppSpec
    min_threads: int = 1
    max_threads: int | None = None
    priority: float = 1.0

    def __post_init__(self) -> None:
        if self.min_threads < 0:
            raise AllocationError(
                f"'{self.spec.name}': min_threads must be >= 0"
            )
        if self.max_threads is not None and self.max_threads < self.min_threads:
            raise AllocationError(
                f"'{self.spec.name}': max_threads {self.max_threads} below "
                f"min_threads {self.min_threads}"
            )
        if self.priority <= 0:
            raise AllocationError(
                f"'{self.spec.name}': priority must be positive"
            )


@dataclass(frozen=True)
class ArbitrationOutcome:
    """Result of an arbitration round."""

    allocation: ThreadAllocation
    predicted_gflops: float
    rounds: int
    log: tuple[str, ...] = ()


def _check_requests(
    machine: MachineTopology, requests: Sequence[ResourceRequest]
) -> None:
    if not requests:
        raise AllocationError("no resource requests to arbitrate")
    names = [r.spec.name for r in requests]
    if len(set(names)) != len(names):
        raise AllocationError(f"duplicate app names in requests: {names}")
    total_min = sum(r.min_threads for r in requests)
    if total_min > machine.total_cores:
        raise AllocationError(
            f"minimum demands ({total_min} threads) exceed machine "
            f"capacity ({machine.total_cores} cores)"
        )


class FairShareArbiter:
    """The paper's "simple core allocation strategy": equal shares.

    Each application receives ``total_cores / num_apps`` threads, spread
    evenly over the NUMA nodes, "so that the total number of worker threads
    across all applications is equal to the total number of available CPU
    cores" — i.e. no over-subscription.  Constraints are applied by
    clamping to ``[min, max]`` and re-distributing the slack by priority.
    """

    def __init__(self, model: NumaPerformanceModel | None = None) -> None:
        self.model = model or NumaPerformanceModel()

    def decide(
        self,
        machine: MachineTopology,
        requests: Sequence[ResourceRequest],
    ) -> ArbitrationOutcome:
        """Compute the fair-share allocation."""
        _check_requests(machine, requests)
        names = [r.spec.name for r in requests]
        n_apps = len(requests)
        counts = np.zeros((n_apps, machine.num_nodes), dtype=np.int64)
        log: list[str] = []
        for node in machine.nodes:
            share, leftover = divmod(node.num_cores, n_apps)
            node_counts = np.full(n_apps, share, dtype=np.int64)
            order = np.argsort([-r.priority for r in requests], kind="stable")
            for i in order[:leftover]:
                node_counts[i] += 1
            counts[:, node.node_id] = node_counts
        # Clamp machine-wide to [min, max] and recycle freed threads.
        for i, req in enumerate(requests):
            total = counts[i].sum()
            if req.max_threads is not None and total > req.max_threads:
                excess = total - req.max_threads
                log.append(
                    f"{req.spec.name}: clamped {total} -> {req.max_threads}"
                )
                for n in np.argsort(-counts[i], kind="stable"):
                    take = min(excess, counts[i, n])
                    counts[i, n] -= take
                    excess -= take
                    if excess == 0:
                        break
        allocation = ThreadAllocation(app_names=tuple(names), counts=counts)
        allocation.validate(machine)
        prediction = self.model.predict(
            machine, [r.spec for r in requests], allocation
        )
        return ArbitrationOutcome(
            allocation=allocation,
            predicted_gflops=prediction.total_gflops,
            rounds=1,
            log=tuple(log),
        )


class AgentArbiter:
    """Central agent deciding with the model plus an allocation search.

    Runs :class:`~repro.core.optimizer.ExhaustiveSearch` over the symmetric
    space when it is small enough, otherwise falls back to
    :class:`~repro.core.optimizer.HillClimbSearch`, then repairs any
    min/max-thread constraint violations with single-thread moves.

    This is the "sophisticated, CPU-intensive scheduling algorithm" case of
    Section IV; its deliberation cost is surfaced via ``evaluations`` in
    the log so experiments can charge for it.
    """

    def __init__(
        self,
        model: NumaPerformanceModel | None = None,
        objective: Objective = total_gflops,
        *,
        exhaustive_limit: int = 20000,
    ) -> None:
        self.model = model or NumaPerformanceModel()
        self.objective = objective
        self.exhaustive_limit = exhaustive_limit

    def _symmetric_space_size(
        self, machine: MachineTopology, n_apps: int
    ) -> int:
        from math import comb

        cores = machine.nodes[0].num_cores
        return comb(cores + n_apps - 1, n_apps - 1)

    def decide(
        self,
        machine: MachineTopology,
        requests: Sequence[ResourceRequest],
    ) -> ArbitrationOutcome:
        """Search for the best allocation satisfying all constraints."""
        _check_requests(machine, requests)
        specs = [r.spec for r in requests]
        log: list[str] = []
        symmetric_ok = len(set(machine.cores_per_node)) == 1
        if (
            symmetric_ok
            and self._symmetric_space_size(machine, len(specs))
            <= self.exhaustive_limit
        ):
            search = ExhaustiveSearch(self.model, self.objective)
            result = search.search(machine, specs)
            log.append(
                f"exhaustive symmetric search: {result.evaluations} "
                f"evaluations"
            )
        else:
            search = HillClimbSearch(self.model, self.objective)
            result = search.search(machine, specs)
            log.append(
                f"hill-climb search: {result.evaluations} evaluations"
            )
        allocation = self._repair(machine, requests, result.allocation, log)
        prediction = self.model.predict(machine, specs, allocation)
        return ArbitrationOutcome(
            allocation=allocation,
            predicted_gflops=prediction.total_gflops,
            rounds=1,
            log=tuple(log),
        )

    def _repair(
        self,
        machine: MachineTopology,
        requests: Sequence[ResourceRequest],
        allocation: ThreadAllocation,
        log: list[str],
    ) -> ThreadAllocation:
        """Move threads until every request's min/max bound holds."""
        counts = np.array(allocation.counts)
        names = list(allocation.app_names)
        by_name = {r.spec.name: r for r in requests}

        def total(i: int) -> int:
            return int(counts[i].sum())

        for _ in range(machine.total_cores * len(names)):
            under = [
                i
                for i, n in enumerate(names)
                if total(i) < by_name[n].min_threads
            ]
            over = [
                i
                for i, n in enumerate(names)
                if by_name[n].max_threads is not None
                and total(i) > by_name[n].max_threads
            ]
            if not under and not over:
                break
            if over:
                src = over[0]
            else:
                # Take from the app with the largest surplus over its min.
                surplus = [
                    total(i) - by_name[n].min_threads
                    for i, n in enumerate(names)
                ]
                src = int(np.argmax(surplus))
                if surplus[src] <= 0:
                    raise AllocationError(
                        "cannot satisfy minimum thread constraints"
                    )
            if under:
                dst = under[0]
            else:
                # Give to the highest-priority app that still has headroom.
                candidates = [
                    i
                    for i, n in enumerate(names)
                    if i != src
                    and (
                        by_name[n].max_threads is None
                        or total(i) < by_name[n].max_threads
                    )
                ]
                if not candidates:
                    # Nobody can take the surplus thread: leave the core idle.
                    n = int(np.argmax(counts[src]))
                    counts[src, n] -= 1
                    log.append(f"{names[src]}: parked one thread (node {n})")
                    continue
                dst = max(
                    candidates, key=lambda i: by_name[names[i]].priority
                )
            n = int(np.argmax(counts[src]))
            if counts[src, n] == 0:
                raise AllocationError(
                    f"repair stuck: '{names[src]}' has no threads to move"
                )
            counts[src, n] -= 1
            counts[dst, n] += 1
            log.append(
                f"repair: moved one thread on node {n} from "
                f"{names[src]} to {names[dst]}"
            )
        repaired = ThreadAllocation(app_names=tuple(names), counts=counts)
        repaired.validate(machine)
        return repaired


class CooperativeConsensus:
    """Agentless agreement: runtimes claim cores in deterministic rounds.

    Protocol (synchronous rounds, no central decision maker):

    1. every runtime computes its *desired* per-node thread vector from its
       own spec (data-affine for SINGLE_NODE apps, spread otherwise) and a
       fair share of the machine scaled by priority;
    2. claims are resolved node by node: if a node is over-claimed, the
       lowest-priority claims shrink first (ties broken by app name, so
       every participant computes the same outcome — the determinism is
       what replaces the central agent);
    3. runtimes whose claims were cut re-claim their deficit on the nodes
       with the most free cores; repeat until a fixpoint (at most
       ``num_nodes + 1`` rounds, since each round either settles a node
       permanently or stops changing).
    """

    def __init__(
        self,
        model: NumaPerformanceModel | None = None,
        *,
        max_rounds: int = 32,
    ) -> None:
        self.model = model or NumaPerformanceModel()
        self.max_rounds = max_rounds

    def decide(
        self,
        machine: MachineTopology,
        requests: Sequence[ResourceRequest],
    ) -> ArbitrationOutcome:
        """Run the claim/yield protocol to a fixpoint."""
        _check_requests(machine, requests)
        names = [r.spec.name for r in requests]
        n_nodes = machine.num_nodes
        cores = np.array([n.num_cores for n in machine.nodes])
        log: list[str] = []

        # Step 1: initial desires.
        weights = np.array([r.priority for r in requests])
        share = weights / weights.sum()
        desired_total = np.floor(share * machine.total_cores).astype(int)
        for i in np.argsort(
            -(share * machine.total_cores - desired_total), kind="stable"
        )[: machine.total_cores - desired_total.sum()]:
            desired_total[i] += 1
        for i, req in enumerate(requests):
            desired_total[i] = max(desired_total[i], req.min_threads)
            if req.max_threads is not None:
                desired_total[i] = min(desired_total[i], req.max_threads)

        claims = np.zeros((len(requests), n_nodes), dtype=np.int64)
        for i, req in enumerate(requests):
            claims[i] = self._spread(req.spec, desired_total[i], cores)

        # Steps 2-3: resolve over-claims, re-claim deficits.
        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            changed = False
            # Resolve each over-claimed node.
            for n in range(n_nodes):
                excess = claims[:, n].sum() - cores[n]
                if excess <= 0:
                    continue
                changed = True
                order = sorted(
                    range(len(requests)),
                    key=lambda i: (requests[i].priority, names[i]),
                )
                for i in order:
                    cut = min(excess, claims[i, n])
                    claims[i, n] -= cut
                    excess -= cut
                    if cut:
                        log.append(
                            f"round {rounds}: {names[i]} yields {cut} "
                            f"core(s) on node {n}"
                        )
                    if excess == 0:
                        break
            # Re-claim deficits on the freest nodes.
            free = cores - claims.sum(axis=0)
            order = sorted(
                range(len(requests)),
                key=lambda i: (-requests[i].priority, names[i]),
            )
            for i in order:
                deficit = desired_total[i] - claims[i].sum()
                while deficit > 0 and free.sum() > 0:
                    n = int(np.argmax(free))
                    if free[n] == 0:
                        break
                    take = min(deficit, free[n])
                    claims[i, n] += take
                    free[n] -= take
                    deficit -= take
                    changed = True
                    log.append(
                        f"round {rounds}: {names[i]} re-claims {take} "
                        f"core(s) on node {n}"
                    )
            if not changed:
                break

        allocation = ThreadAllocation(app_names=tuple(names), counts=claims)
        allocation.validate(machine)
        prediction = self.model.predict(
            machine, [r.spec for r in requests], allocation
        )
        return ArbitrationOutcome(
            allocation=allocation,
            predicted_gflops=prediction.total_gflops,
            rounds=rounds,
            log=tuple(log),
        )

    @staticmethod
    def _spread(
        spec: AppSpec, total: int, cores: np.ndarray
    ) -> np.ndarray:
        """Initial claim: data-affine for NUMA-bad apps, even otherwise."""
        n_nodes = len(cores)
        claim = np.zeros(n_nodes, dtype=np.int64)
        if spec.placement is Placement.SINGLE_NODE and spec.home_node is not None:
            # Prefer the home node, overflow round-robin outward.
            home = spec.home_node
            claim[home] = min(total, cores[home])
            rest = total - claim[home]
            order = [n for n in range(n_nodes) if n != home]
            while rest > 0 and order:
                for n in list(order):
                    if claim[n] < cores[n]:
                        claim[n] += 1
                        rest -= 1
                        if rest == 0:
                            break
                    else:
                        order.remove(n)
                if not order:
                    break
            return claim
        base, leftover = divmod(total, n_nodes)
        claim[:] = base
        claim[:leftover] += 1
        return np.minimum(claim, cores)
