#!/usr/bin/env python3
"""The Figure 1 architecture end to end: two runtimes plus the agent.

Runs the producer-consumer scenario of the authors' earlier work [10] on
the simulated machine twice — once with only the OS scheduler, once with
the coordination agent aligning the two applications — and reports
completion time and the intermediate-data high-water mark.

Run:  python examples/agent_coscheduling.py
"""

from repro.agent import Agent, OcrVxEndpoint, ProducerConsumerAlignment
from repro.analysis import render_table
from repro.apps import ProducerConsumerScenario
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


def run(with_agent: bool) -> tuple[float, int, int]:
    machine = model_machine()
    ex = ExecutionSimulator(machine)
    producer = OCRVxRuntime("producer", ex)
    consumer = OCRVxRuntime("consumer", ex)
    # The paper's setup: each application starts with one worker per
    # core, so together they over-subscribe the machine 2x.
    producer.start()
    consumer.start()

    scenario = ProducerConsumerScenario(
        ex,
        producer,
        consumer,
        iterations=50,
        tasks_per_iteration=8,
        producer_flops=0.004,  # producer is ~3x faster per item
        consumer_flops=0.012,
    )
    scenario.build()

    commands = 0
    if with_agent:
        agent = Agent(
            ex,
            ProducerConsumerAlignment(
                "producer", "consumer", max_lead=3.0, min_lead=1.0
            ),
            period=0.005,
        )
        agent.register(OcrVxEndpoint(producer))
        agent.register(OcrVxEndpoint(consumer))
        agent.start()

    end = ex.run_until_condition(lambda: scenario.finished, max_time=600)
    if with_agent:
        commands = agent.commands_issued()
    return end, scenario.max_intermediate_items(), commands


def main() -> None:
    t_plain, peak_plain, _ = run(with_agent=False)
    t_agent, peak_agent, commands = run(with_agent=True)
    print(
        render_table(
            ["configuration", "time [s]", "peak buffered items"],
            [
                ["OS scheduler only", t_plain, peak_plain],
                ["with coordination agent", t_agent, peak_agent],
            ],
            title="Producer-consumer co-scheduling (Figure 1):",
        )
    )
    print(f"\nagent issued {commands} thread-allocation commands")
    print(
        f"intermediate-data reduction: "
        f"{(1 - peak_agent / peak_plain) * 100:.0f}%  "
        f"(the paper's clearest benefit)"
    )


if __name__ == "__main__":
    main()
