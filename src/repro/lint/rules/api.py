"""Public-surface drift: ``__all__`` vs the generated ``docs/API.md``.

``docs/API.md`` is generated from each package's ``__all__``
(:mod:`repro.analysis.apidoc`), so the two can only disagree when
someone changed a public surface and forgot to regenerate.  This rule
re-checks the contract statically: for every package that has a section
in ``docs/API.md``, the names in its ``__init__``'s ``__all__`` literal
must match the documented names exactly, both directions.

The rule needs a project root (to find ``docs/API.md``); when the
engine runs without one — e.g. on snippet fixtures — it stays silent.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = ["ApiDocDrift", "parse_api_md"]

_SECTION_RE = re.compile(r"^## `([\w.]+)`\s*$")
_SYMBOL_RE = re.compile(r"^\* \*\*`(\w+)`\*\*")


def parse_api_md(text: str) -> dict[str, set[str]]:
    """Parse API.md into ``{module_name: {documented symbol, ...}}``."""
    sections: dict[str, set[str]] = {}
    current: set[str] | None = None
    for line in text.splitlines():
        section = _SECTION_RE.match(line)
        if section:
            current = sections.setdefault(section.group(1), set())
            continue
        symbol = _SYMBOL_RE.match(line)
        if symbol and current is not None:
            current.add(symbol.group(1))
    return sections


def _module_name(path: Path, root: Path) -> str | None:
    """Dotted module name of ``path`` under ``root/src``, if any."""
    try:
        rel = path.resolve().relative_to((root / "src").resolve())
    except ValueError:
        return None
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else None


def _all_literal(tree: ast.Module) -> tuple[list[str], int] | None:
    """The module's ``__all__`` string-list literal and its line."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            names = [
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            ]
            return names, node.lineno
    return None


@register
class ApiDocDrift(Rule):
    """``__all__`` and ``docs/API.md`` disagree — regenerate the doc."""

    rule_id = "API001"
    severity = Severity.ERROR
    summary = (
        "__all__ does not match the package's docs/API.md section; "
        "regenerate with `python -m repro api > docs/API.md`"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        if ctx.project_root is None:
            return
        api_md = ctx.project_root / "docs" / "API.md"
        if not api_md.is_file():
            return
        module = _module_name(Path(ctx.path), ctx.project_root)
        if module is None:
            return
        documented = parse_api_md(
            api_md.read_text(encoding="utf-8")
        ).get(module)
        if documented is None:
            return
        found = _all_literal(ctx.tree)
        if found is None:
            yield self.violation(
                ctx,
                1,
                f"package '{module}' is documented in docs/API.md but "
                f"defines no __all__ literal",
            )
            return
        names, line = found
        missing_doc = sorted(set(names) - documented)
        stale_doc = sorted(documented - set(names))
        if missing_doc:
            yield self.violation(
                ctx,
                line,
                f"public names not in docs/API.md: "
                f"{', '.join(missing_doc)} (regenerate the doc)",
            )
        if stale_doc:
            yield self.violation(
                ctx,
                line,
                f"docs/API.md documents names absent from __all__: "
                f"{', '.join(stale_doc)} (regenerate the doc)",
            )
