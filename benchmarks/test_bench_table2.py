"""Table II: the even (2,2,2,2) worked example, 140 GFLOPS total."""

import pytest

from benchmarks.conftest import emit
from repro.analysis import run_table2


def test_bench_table2(benchmark):
    result = benchmark(run_table2)
    emit("Table II - even allocation (2,2,2,2)", result.render())
    mem, comp = result.columns
    assert result.total_gflops == pytest.approx(140.0)
    assert result.total_gflops_per_node == pytest.approx(35.0)
    assert mem.gflops_per_thread == pytest.approx(2.5)
    assert comp.gflops_per_application == pytest.approx(20.0)
