"""Discrete-event simulation substrate.

The simulator is the reproduction's "hardware": a deterministic event
engine (:mod:`~repro.sim.engine`), a fluid CFS-like OS scheduler
(:mod:`~repro.sim.os_scheduler`), per-slice NUMA bandwidth arbitration
(:mod:`~repro.sim.memory`) and the slice-stepped execution loop gluing
them together (:mod:`~repro.sim.executor`).
"""

from repro.sim.cache import CacheModel
from repro.sim.cpu import Binding, BindingKind, SimThread, ThreadState
from repro.sim.dvfs import DvfsModel
from repro.sim.engine import EventHandle, Simulator
from repro.sim.executor import ExecutionSimulator, WorkProvider, WorkSegment
from repro.sim.memory import BandwidthGrant, BandwidthRequest, BandwidthResolver
from repro.obs.metrics import Counter, MetricSet, RateIntegrator, TimeSeries
from repro.sim.os_scheduler import CfsScheduler, CpuAssignment
from repro.sim.trace import TraceEvent, TraceKind, Tracer

__all__ = [
    "Simulator",
    "EventHandle",
    "Binding",
    "BindingKind",
    "SimThread",
    "ThreadState",
    "CfsScheduler",
    "CpuAssignment",
    "DvfsModel",
    "CacheModel",
    "BandwidthRequest",
    "BandwidthGrant",
    "BandwidthResolver",
    "ExecutionSimulator",
    "WorkProvider",
    "WorkSegment",
    "Counter",
    "TimeSeries",
    "RateIntegrator",
    "MetricSet",
    "Tracer",
    "TraceEvent",
    "TraceKind",
]
