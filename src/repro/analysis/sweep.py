"""Parameter sweeps: run a function over a cartesian parameter grid."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError

__all__ = ["SweepRecord", "sweep"]


@dataclass(frozen=True)
class SweepRecord:
    """One grid point and its result."""

    params: dict[str, Any]
    result: Any


def sweep(
    fn: Callable[..., Any],
    grid: Mapping[str, Sequence[Any]],
) -> list[SweepRecord]:
    """Call ``fn(**point)`` for every point of the cartesian ``grid``.

    Deterministic iteration order: keys in the mapping's order, values in
    their sequence order (rightmost key varies fastest).
    """
    if not grid:
        raise ConfigurationError("sweep grid must not be empty")
    keys = list(grid)
    for k in keys:
        if not grid[k]:
            raise ConfigurationError(f"grid dimension '{k}' is empty")
    records = []
    for combo in itertools.product(*(grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        records.append(SweepRecord(params=params, result=fn(**params)))
    return records
