"""Retry-discipline rules.

The robustness layer (:mod:`repro.faults`, the hardened agent,
:class:`~repro.distributed.messaging.ReliableChannel`) is built on one
invariant: **every retry has a budget**.  A retry loop without one turns
a crashed runtime into a hung coordinator — the exact failure mode the
circuit breaker exists to prevent.  RETRY001 enforces the invariant
statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = ["UnboundedRetryLoop"]


def _loop_body_nodes(loop: ast.While) -> Iterator[ast.AST]:
    """Walk the loop body without descending into nested loops.

    A ``continue`` inside a nested ``for``/``while`` restarts the inner
    loop, not this one, so it must not implicate this loop.
    """
    stack: list[ast.AST] = list(loop.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            # Still look at the nested loop's else-clause siblings via
            # the outer queue, but not inside its body.
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_infinite(test: ast.expr) -> bool:
    """Whether the loop condition is a constant truthy value."""
    return isinstance(test, ast.Constant) and bool(test.value)


@register
class UnboundedRetryLoop(Rule):
    """``while True: try/except: continue`` — a retry with no budget."""

    rule_id = "RETRY001"
    severity = Severity.ERROR
    summary = (
        "unbounded retry loop (`while True` retrying on exception); "
        "bound it with an attempt budget, e.g. "
        "`for attempt in range(max_attempts)`"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not isinstance(node, ast.While):
                continue
            if not _is_infinite(node.test):
                continue
            for inner in _loop_body_nodes(node):
                if not isinstance(inner, ast.ExceptHandler):
                    continue
                if self._handler_retries(inner):
                    yield self.violation(
                        ctx,
                        node,
                        "`while True` retries on exception with no "
                        "attempt budget; a persistently failing call "
                        "spins forever (see ReliableChannel for the "
                        "bounded pattern)",
                    )
                    break  # one finding per loop is enough

    @staticmethod
    def _handler_retries(handler: ast.ExceptHandler) -> bool:
        """Whether the handler re-enters the loop instead of exiting.

        ``continue`` (or a body that simply falls through — ``pass``)
        retries; ``break``/``return``/``raise`` bound the loop and are
        fine.
        """
        exits = (ast.Break, ast.Return, ast.Raise)
        stack: list[ast.AST] = list(handler.body)
        saw_exit = False
        saw_retry = False
        while stack:
            node = stack.pop()
            if isinstance(node, exits):
                saw_exit = True
            elif isinstance(node, ast.Continue):
                saw_retry = True
            if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
                continue  # inner loop: its continue/break are not ours
            stack.extend(ast.iter_child_nodes(node))
        if saw_retry:
            return True
        # No explicit continue: falling off the handler also re-enters
        # the loop, unless some path exits.
        return not saw_exit
