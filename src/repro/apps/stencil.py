"""An iterative Jacobi-style stencil application on the runtime.

Section III motivates NUMA awareness with the authors' OCR-Vx experience
[11]: "it is possible to get very significant speed improvement with
NUMA-aware codes over NUMA-oblivious alternatives", and on Knights
Landing — where "the NUMA is optional and can be switched off" — the
oblivious code recovers by running in non-NUMA mode.

:class:`StencilApp` is the canonical such code: a 1-D block decomposition
of a grid, one task per block per iteration, each depending on its own
and both neighbours' previous-iteration tasks.  Each block is backed by a
runtime-managed datablock whose placement is the experiment's knob:

* ``numa_aware=True`` — block *b* lives on node ``b * nodes / blocks``
  and its tasks prefer that node (first-touch done right);
* ``numa_aware=False`` — every datablock lands on node 0 (the classic
  serial-initialisation mistake), so most traffic crosses links.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.runtime.datablock import Datablock
from repro.runtime.events import LatchEvent
from repro.runtime.runtime import OCRVxRuntime
from repro.runtime.task import Task

__all__ = ["StencilApp"]


class StencilApp:
    """Iterative nearest-neighbour stencil with runtime-managed blocks.

    Parameters
    ----------
    runtime:
        Hosting runtime.
    blocks:
        Number of spatial blocks (one task per block per iteration).
    iterations:
        Sweep count.
    flops_per_block:
        Work per block-update in GFLOP.
    arithmetic_intensity:
        FLOPs per byte of the update kernel (stencils are memory bound;
        default 0.25).
    block_bytes:
        Size of one block's datablock.
    numa_aware:
        Placement policy, see module docstring.
    """

    def __init__(
        self,
        runtime: OCRVxRuntime,
        *,
        blocks: int,
        iterations: int,
        flops_per_block: float = 0.01,
        arithmetic_intensity: float = 0.25,
        block_bytes: float = 32 * 2**20,
        numa_aware: bool = True,
    ) -> None:
        if blocks <= 0:
            raise ConfigurationError("blocks must be positive")
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        self.runtime = runtime
        self.blocks = blocks
        self.iterations = iterations
        self.flops_per_block = flops_per_block
        self.ai = arithmetic_intensity
        self.numa_aware = numa_aware
        self.iterations_done = 0
        self.done = LatchEvent(iterations, name=f"{runtime.name}/sweeps")
        num_nodes = runtime.machine.num_nodes
        self.datablocks: list[Datablock] = []
        for b in range(blocks):
            home = b * num_nodes // blocks if numa_aware else 0
            self.datablocks.append(
                runtime.create_datablock(
                    block_bytes, home, name=f"{runtime.name}/blk{b}"
                )
            )
        self._built = False

    def build(self) -> None:
        """Create the full iteration-by-iteration task graph."""
        if self._built:
            raise ConfigurationError("stencil already built")
        self._built = True
        prev: list[Task] = []
        for it in range(self.iterations):
            cur: list[Task] = []
            sweep = LatchEvent(
                self.blocks, name=f"{self.runtime.name}/sweep{it}"
            )
            sweep.add_dependent(self._sweep_done)
            for b in range(self.blocks):
                deps: list[Task] = []
                if prev:
                    for nb in (b - 1, b, b + 1):
                        if 0 <= nb < self.blocks:
                            deps.append(prev[nb])
                db = self.datablocks[b]
                task = self.runtime.create_task(
                    f"it{it}.b{b}",
                    flops=self.flops_per_block,
                    arithmetic_intensity=self.ai,
                    depends_on=deps,
                    datablocks=[db],
                    affinity_node=(
                        db.home_node if self.numa_aware else None
                    ),
                    on_finish=lambda _t, s=sweep: s.count_down(),
                )
                cur.append(task)
            prev = cur

    def _sweep_done(self, _payload) -> None:
        self.iterations_done += 1
        self.runtime.stats.report_progress("sweeps")
        self.done.count_down()

    @property
    def finished(self) -> bool:
        """True when all sweeps completed."""
        return self.iterations_done == self.iterations

    def total_flops(self) -> float:
        """Total work of the full run (GFLOP)."""
        return self.blocks * self.iterations * self.flops_per_block
