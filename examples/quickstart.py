#!/usr/bin/env python3
"""Quickstart: predict NUMA co-scheduling performance with the model.

Builds the paper's worked-example machine (4 NUMA nodes x 8 cores, 10
GFLOPS/core, 32 GB/s/node), describes four co-located applications, and
compares thread allocations — ending with an exhaustive search for the
best one.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_table
from repro.core import (
    AppSpec,
    EvenSharePolicy,
    ExhaustiveSearch,
    NodeExclusivePolicy,
    NumaPerformanceModel,
    ThreadAllocation,
    UnevenSharePolicy,
    min_app_gflops,
)
from repro.machine import model_machine


def main() -> None:
    machine = model_machine()
    print(machine.describe())
    print()

    # Three memory-bound applications (AI = 0.5) and one compute-bound
    # (AI = 10) — the paper's Tables I/II workload.
    apps = [
        AppSpec.memory_bound("mem0", 0.5),
        AppSpec.memory_bound("mem1", 0.5),
        AppSpec.memory_bound("mem2", 0.5),
        AppSpec.compute_bound("comp", 10.0),
    ]
    model = NumaPerformanceModel()

    allocations = {
        "uneven (1,1,1,5)": UnevenSharePolicy(
            {"mem0": 1, "mem1": 1, "mem2": 1, "comp": 5}
        ).allocate(machine, apps),
        "even (2,2,2,2)": EvenSharePolicy().allocate(machine, apps),
        "node-exclusive": NodeExclusivePolicy().allocate(machine, apps),
    }

    rows = []
    for name, alloc in allocations.items():
        pred = model.predict(machine, apps, alloc)
        rows.append(
            [
                name,
                pred.total_gflops,
                pred.app("comp").gflops,
                pred.app("mem0").gflops,
            ]
        )
    print(
        render_table(
            ["allocation", "total GFLOPS", "comp", "each mem"],
            rows,
            title="Paper scenarios (Figure 2):",
        )
    )
    print()

    # Search the whole symmetric space for the throughput optimum...
    best = ExhaustiveSearch().search(machine, apps)
    print(f"throughput optimum: {best.score:.1f} GFLOPS "
          f"with {best.allocation}")
    # ...and for the max-min-fair optimum, which cannot starve anyone.
    fair = ExhaustiveSearch(objective=min_app_gflops).search(machine, apps)
    print(
        f"max-min-fair optimum: worst app gets "
        f"{min(a.gflops for a in fair.prediction.apps):.1f} GFLOPS "
        f"with {fair.allocation}"
    )


if __name__ == "__main__":
    main()
