"""Content-hash-keyed incremental cache for the lint engine.

Parsing and summarising ~100 modules dominates a ``python -m repro
check`` run; almost none of them change between runs.  The cache
persists, per file, the SHA-256 of its content alongside the extracted
:class:`~repro.lint.project.summary.ModuleSummary` and the per-file
rule findings, so a warm run re-parses only files whose content hash
moved.  Project-wide rules always re-run — they are cheap once the
summaries exist — but they run *from cached summaries*, never from
re-parsed ASTs.

Invalidation is deliberately coarse where it has to be:

* ``CACHE_VERSION`` — bumped whenever the summary shape or any rule's
  behaviour changes; a version mismatch discards the whole cache;
* the **environment fingerprint** — a hash over the documentation
  files repo-aware rules read (``docs/API.md``,
  ``docs/OBSERVABILITY.md``); editing either invalidates everything,
  because API001/OBS003 findings depend on them, not on the ``.py``
  content alone;
* per-entry **rule coverage** — an entry only hits when the requested
  per-file rule set is a subset of the set the entry was computed with.

The cache file (:data:`CACHE_FILENAME`, at the project root) is a
plain-JSON implementation detail: corrupt, unreadable or alien content
is silently discarded and rebuilt, and write failures (read-only
checkouts) are swallowed — caching must never change check results or
exit codes.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.lint.engine import Violation
from repro.lint.project.summary import ModuleSummary

__all__ = ["CACHE_FILENAME", "CACHE_VERSION", "LintCache"]

#: Bump on any change to summary extraction or rule behaviour.
CACHE_VERSION = 1

#: File name of the on-disk cache, relative to the project root.
CACHE_FILENAME = ".repro-lint-cache.json"

#: Documents whose content feeds repo-aware rules (API001, OBS003).
_ENV_DOCS = ("docs/API.md", "docs/OBSERVABILITY.md")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class LintCache:
    """Per-file summary + findings cache, keyed on content hashes.

    Parameters
    ----------
    project_root:
        Where the cache file lives and where the environment documents
        are looked up.  ``load()`` and ``save()`` are both no-ops when
        the root does not exist.
    """

    def __init__(self, project_root: Path | str) -> None:
        self.root = Path(project_root)
        self.path = self.root / CACHE_FILENAME
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0

    # -- environment fingerprint ---------------------------------------
    def environment_fingerprint(self) -> str:
        """Hash of everything that invalidates the cache besides content."""
        h = hashlib.sha256()
        h.update(str(CACHE_VERSION).encode())
        for rel in _ENV_DOCS:
            doc = self.root / rel
            h.update(b"\x00" + rel.encode() + b"\x00")
            if doc.is_file():
                h.update(doc.read_bytes())
        return h.hexdigest()

    # -- persistence ----------------------------------------------------
    def load(self) -> None:
        """Read the cache file; discard silently on any mismatch."""
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("version") != CACHE_VERSION:
            return
        if raw.get("environment") != self.environment_fingerprint():
            return
        files = raw.get("files")
        if isinstance(files, dict):
            self._entries = files

    def save(self) -> None:
        """Atomically write the cache; failures are swallowed."""
        if not self._dirty:
            return
        document = {
            "version": CACHE_VERSION,
            "environment": self.environment_fingerprint(),
            "files": self._entries,
        }
        try:
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), prefix=".repro-lint-cache."
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:
            return

    # -- lookup ---------------------------------------------------------
    @staticmethod
    def content_hash(source: bytes) -> str:
        """The key of one file's content."""
        return _sha256(source)

    def lookup(
        self, path: str, content_hash: str, rule_ids: list[str]
    ) -> tuple[ModuleSummary, list[Violation]] | None:
        """Cached summary + findings, or ``None`` on any mismatch.

        A hit requires the content hash to match and the requested
        per-file ``rule_ids`` to be a subset of the rules the entry was
        computed with (findings are filtered down to the request).
        """
        entry = self._entries.get(path)
        if entry is None or entry.get("hash") != content_hash:
            self.misses += 1
            return None
        if not set(rule_ids) <= set(entry.get("rules", ())):
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(entry["summary"])
            violations = [
                Violation.from_dict(v) for v in entry["violations"]
            ]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        requested = set(rule_ids)
        self.hits += 1
        return summary, [v for v in violations if v.rule_id in requested]

    def store(
        self,
        path: str,
        content_hash: str,
        rule_ids: list[str],
        summary: ModuleSummary,
        violations: list[Violation],
    ) -> None:
        """Record one freshly computed file."""
        self._entries[path] = {
            "hash": content_hash,
            "rules": sorted(rule_ids),
            "summary": summary.to_dict(),
            "violations": [v.to_dict() for v in violations],
        }
        self._dirty = True
