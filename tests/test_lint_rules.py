"""Per-rule fixture tests: each rule fires on a bad snippet and stays
quiet on the compliant version of the same idiom."""

import pytest

from repro.lint.engine import LintEngine, Severity
from repro.lint.rules.api import parse_api_md
from repro.lint.rules.units import unit_of_name


def hits(rule_id: str, source: str, **engine_kwargs):
    engine = LintEngine(rules=[rule_id], **engine_kwargs)
    return engine.check_source(source)


class TestLock001:
    def test_bare_acquire_fires(self):
        src = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def f():\n"
            "    lock.acquire()\n"
            "    work()\n"
            "    lock.release()\n"
        )
        found = hits("LOCK001", src)
        assert [v.rule_id for v in found] == ["LOCK001"]
        assert found[0].line == 4

    def test_acquire_on_fresh_lock_fires(self):
        src = "import threading\nthreading.Lock().acquire()\n"
        assert len(hits("LOCK001", src)) == 1

    def test_with_statement_is_quiet(self):
        src = (
            "import threading\n"
            "lock = threading.Lock()\n"
            "def f():\n"
            "    with lock:\n"
            "        work()\n"
        )
        assert hits("LOCK001", src) == []

    def test_acquire_before_try_finally_is_quiet(self):
        src = (
            "def f(self):\n"
            "    self._lock.acquire()\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        self._lock.release()\n"
        )
        assert hits("LOCK001", src) == []

    def test_acquire_inside_try_finally_is_quiet(self):
        src = (
            "def f(self):\n"
            "    try:\n"
            "        self._lock.acquire()\n"
            "        work()\n"
            "    finally:\n"
            "        self._lock.release()\n"
        )
        assert hits("LOCK001", src) == []

    def test_nonblocking_probe_is_quiet(self):
        src = (
            "def f(lock):\n"
            "    if lock.acquire(blocking=False):\n"
            "        try:\n"
            "            work()\n"
            "        finally:\n"
            "            lock.release()\n"
        )
        assert hits("LOCK001", src) == []

    def test_non_lock_acquire_is_ignored(self):
        # Datablock acquire/release protocols are not lock discipline.
        src = "def f(db, mode):\n    db.acquire(mode)\n"
        assert hits("LOCK001", src) == []


class TestObs001:
    def test_span_without_with_fires(self):
        src = (
            "def f(tracer):\n"
            "    span = tracer.span('model/predict')\n"
            "    work()\n"
        )
        found = hits("OBS001", src)
        assert [v.rule_id for v in found] == ["OBS001"]

    def test_span_in_with_is_quiet(self):
        src = (
            "def f(tracer):\n"
            "    with tracer.span('model/predict') as sp:\n"
            "        work(sp)\n"
        )
        assert hits("OBS001", src) == []

    def test_obs_tracer_attribute_form(self):
        src = (
            "from repro.obs import OBS\n"
            "def f():\n"
            "    OBS.tracer.span('agent/round')\n"
        )
        assert len(hits("OBS001", src)) == 1

    def test_returned_span_is_quiet(self):
        # Delegating the context manager to the caller (optimizer idiom).
        src = (
            "def scope(self, name):\n"
            "    return OBS.tracer.span(name)\n"
        )
        assert hits("OBS001", src) == []


class TestObs002:
    def test_start_without_finish_fires(self):
        src = (
            "def f(tracer):\n"
            "    sp = tracer.start('x')\n"
            "    work()\n"
        )
        found = hits("OBS002", src)
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_start_with_finish_in_function_is_quiet(self):
        src = (
            "def f(tracer):\n"
            "    sp = tracer.start('x')\n"
            "    try:\n"
            "        work()\n"
            "    finally:\n"
            "        tracer.finish(sp)\n"
        )
        assert hits("OBS002", src) == []

    def test_start_in_enter_finish_in_exit_is_quiet(self):
        # The _SpanContext idiom: paired across methods of one class.
        src = (
            "class Ctx:\n"
            "    def __enter__(self):\n"
            "        self._sp = self._tracer.start('x')\n"
            "        return self._sp\n"
            "    def __exit__(self, *exc):\n"
            "        self._tracer.finish(self._sp)\n"
        )
        assert hits("OBS002", src) == []


class TestDef001:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "{1}", "list()", "dict()", "set()"]
    )
    def test_mutable_defaults_fire(self, default):
        src = f"def f(x={default}):\n    return x\n"
        assert len(hits("DEF001", src)) == 1

    def test_keyword_only_default_fires(self):
        src = "def f(*, x=[]):\n    return x\n"
        assert len(hits("DEF001", src)) == 1

    def test_none_and_immutable_defaults_are_quiet(self):
        src = "def f(x=None, y=0, z=(), w='s', v=frozenset()):\n    pass\n"
        assert hits("DEF001", src) == []


class TestExc001And002:
    def test_bare_except_fires(self):
        src = "try:\n    work()\nexcept:\n    handle()\n"
        assert [v.rule_id for v in hits("EXC001", src)] == ["EXC001"]

    def test_named_except_is_quiet_for_exc001(self):
        src = "try:\n    work()\nexcept ValueError:\n    handle()\n"
        assert hits("EXC001", src) == []

    def test_swallowed_exception_fires(self):
        src = "try:\n    work()\nexcept ValueError:\n    pass\n"
        found = hits("EXC002", src)
        assert len(found) == 1
        assert found[0].severity is Severity.WARNING

    def test_ellipsis_body_fires(self):
        src = "try:\n    work()\nexcept ValueError:\n    ...\n"
        assert len(hits("EXC002", src)) == 1

    def test_handler_with_real_body_is_quiet(self):
        src = "try:\n    work()\nexcept ValueError:\n    raise\n"
        assert hits("EXC002", src) == []


class TestTime001:
    def test_time_time_fires(self):
        src = "import time\nstart = time.time()\n"
        assert len(hits("TIME001", src)) == 1

    def test_from_import_form_fires(self):
        src = "from time import time\nstart = time()\n"
        assert len(hits("TIME001", src)) == 1

    def test_perf_counter_is_quiet(self):
        src = "import time\nstart = time.perf_counter()\n"
        assert hits("TIME001", src) == []

    def test_unrelated_time_name_is_quiet(self):
        # A local callable named `time` without the from-import.
        src = "def f(time):\n    return time()\n"
        assert hits("TIME001", src) == []


class TestFlt001:
    @pytest.mark.parametrize(
        "expr",
        ["x == 1.5", "x != 0.0", "1.5 == x", "x == -2.5", "x == float(y)"],
    )
    def test_float_equality_fires(self, expr):
        assert len(hits("FLT001", f"def f(x, y):\n    return {expr}\n")) == 1

    @pytest.mark.parametrize(
        "expr",
        [
            "x == 1",
            "x < 1.5",
            "x >= 0.0",
            "abs(x - 1.5) < 1e-9",
            "math.isclose(x, 1.5)",
        ],
    )
    def test_tolerant_and_integer_comparisons_are_quiet(self, expr):
        assert hits("FLT001", f"def f(x):\n    return {expr}\n") == []


class TestUnit001:
    def test_unit_of_name(self):
        assert unit_of_name("local_bw_gbps") == "gbps"
        assert unit_of_name("peak_gflops") == "gflops"
        assert unit_of_name("size_bytes") == "bytes"
        assert unit_of_name("n_cores") == "threads"  # canonicalised
        assert unit_of_name("elapsed_ms") == "seconds"
        assert unit_of_name("baseline") is None
        assert unit_of_name("gbps") is None  # a unit, not a quantity

    @pytest.mark.parametrize(
        "expr",
        [
            "peak_gflops + link_gbps",
            "size_bytes - budget_gbps",
            "peak_gflops < link_gbps",
            "demand_gbps == size_bytes",
        ],
    )
    def test_cross_unit_fires(self, expr):
        src = f"def f(peak_gflops, link_gbps, size_bytes, budget_gbps, demand_gbps):\n    return {expr}\n"
        assert len(hits("UNIT001", src)) == 1

    @pytest.mark.parametrize(
        "expr",
        [
            "local_gbps + remote_gbps",  # same unit
            "peak_gflops / demand_gbps",  # division changes units: fine
            "peak_gflops * ai",  # multiplication: fine
            "n_threads + n_cores",  # aliases of one dimension
            "baseline + local_gbps",  # unsuffixed operand: no claim
        ],
    )
    def test_compatible_arithmetic_is_quiet(self, expr):
        src = (
            "def f(local_gbps, remote_gbps, peak_gflops, demand_gbps,"
            " ai, n_threads, n_cores, baseline):\n"
            f"    return {expr}\n"
        )
        assert hits("UNIT001", src) == []

    def test_attribute_suffixes_tracked(self):
        src = (
            "def f(node, app):\n"
            "    return node.local_gbps + app.peak_gflops\n"
        )
        assert len(hits("UNIT001", src)) == 1


class TestApi001:
    API_MD = (
        "# API reference\n\n"
        "## `repro.fake`\n\n"
        "* **`good`** (function) — fine.\n"
        "* **`stale`** (function) — removed from code.\n"
    )

    def make_project(self, tmp_path, all_names):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "API.md").write_text(self.API_MD)
        pkg = tmp_path / "src" / "repro" / "fake"
        pkg.mkdir(parents=True)
        init = pkg / "__init__.py"
        init.write_text(f"__all__ = {all_names!r}\n")
        return init

    def check(self, tmp_path, init):
        engine = LintEngine(rules=["API001"], project_root=tmp_path)
        return engine.check_file(init)

    def test_drift_both_directions(self, tmp_path):
        init = self.make_project(tmp_path, ["good", "brand_new"])
        found = self.check(tmp_path, init)
        messages = " ".join(v.message for v in found)
        assert len(found) == 2
        assert "brand_new" in messages  # in __all__, not documented
        assert "stale" in messages  # documented, not in __all__

    def test_matching_surface_is_quiet(self, tmp_path):
        init = self.make_project(tmp_path, ["good", "stale"])
        assert self.check(tmp_path, init) == []

    def test_undocumented_module_is_ignored(self, tmp_path):
        self.make_project(tmp_path, ["good"])
        other = tmp_path / "src" / "repro" / "other.py"
        other.write_text("__all__ = ['whatever']\n")
        engine = LintEngine(rules=["API001"], project_root=tmp_path)
        assert engine.check_file(other) == []

    def test_parse_api_md(self):
        sections = parse_api_md(self.API_MD)
        assert sections == {"repro.fake": {"good", "stale"}}

    def test_real_tree_is_clean(self):
        # The live repo must satisfy its own drift rule.
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        engine = LintEngine(rules=["API001"], project_root=root)
        assert engine.check_paths([root / "src"]) == []


class TestRetry001:
    def test_while_true_except_continue_fires(self):
        src = (
            "def f():\n"
            "    while True:\n"
            "        try:\n"
            "            do()\n"
            "            break\n"
            "        except ValueError:\n"
            "            continue\n"
        )
        found = hits("RETRY001", src)
        assert [v.rule_id for v in found] == ["RETRY001"]
        assert found[0].severity is Severity.ERROR
        assert found[0].line == 2

    def test_fallthrough_handler_fires(self):
        # No continue, but nothing exits either: falling off the handler
        # re-enters the loop just the same.
        src = (
            "def f():\n"
            "    while True:\n"
            "        try:\n"
            "            do()\n"
            "        except ValueError:\n"
            "            log()\n"
        )
        assert len(hits("RETRY001", src)) == 1

    def test_while_one_counts_as_infinite(self):
        src = (
            "def f():\n"
            "    while 1:\n"
            "        try:\n"
            "            do()\n"
            "        except ValueError:\n"
            "            pass\n"
        )
        assert len(hits("RETRY001", src)) == 1

    def test_bounded_for_loop_is_quiet(self):
        src = (
            "def f():\n"
            "    for attempt in range(5):\n"
            "        try:\n"
            "            do()\n"
            "            break\n"
            "        except ValueError:\n"
            "            continue\n"
        )
        assert hits("RETRY001", src) == []

    def test_handler_that_raises_is_quiet(self):
        src = (
            "def f():\n"
            "    while True:\n"
            "        try:\n"
            "            do()\n"
            "            break\n"
            "        except ValueError:\n"
            "            raise RuntimeError('boom')\n"
        )
        assert hits("RETRY001", src) == []

    def test_handler_that_breaks_is_quiet(self):
        src = (
            "def f():\n"
            "    while True:\n"
            "        try:\n"
            "            do()\n"
            "        except ValueError:\n"
            "            break\n"
        )
        assert hits("RETRY001", src) == []

    def test_conditional_loop_is_quiet(self):
        src = (
            "def f():\n"
            "    while attempts < budget:\n"
            "        try:\n"
            "            do()\n"
            "        except ValueError:\n"
            "            continue\n"
        )
        assert hits("RETRY001", src) == []

    def test_continue_in_nested_loop_is_quiet(self):
        # The continue restarts the inner for-loop, not the while True.
        src = (
            "def f():\n"
            "    while True:\n"
            "        item = q.get()\n"
            "        if item is None:\n"
            "            break\n"
            "        for x in item:\n"
            "            try:\n"
            "                do(x)\n"
            "            except ValueError:\n"
            "                continue\n"
        )
        assert hits("RETRY001", src) == []

    def test_one_finding_per_loop(self):
        src = (
            "def f():\n"
            "    while True:\n"
            "        try:\n"
            "            a()\n"
            "        except ValueError:\n"
            "            continue\n"
            "        try:\n"
            "            b()\n"
            "        except KeyError:\n"
            "            continue\n"
        )
        assert len(hits("RETRY001", src)) == 1

    def test_noqa_suppresses(self):
        src = (
            "def f():\n"
            "    while True:  # repro: noqa[RETRY001]\n"
            "        try:\n"
            "            do()\n"
            "        except ValueError:\n"
            "            continue\n"
        )
        assert hits("RETRY001", src) == []


class TestPerf001:
    def test_counter_lookup_in_for_body_fires(self):
        src = (
            "def f(self):\n"
            "    for item in items:\n"
            "        OBS.metrics.counter('x/y').add()\n"
        )
        found = hits("PERF001", src)
        assert [v.rule_id for v in found] == ["PERF001"]
        assert found[0].line == 3
        assert found[0].severity is Severity.WARNING

    def test_gauge_and_histogram_fire_too(self):
        src = (
            "def f(self):\n"
            "    while running:\n"
            "        OBS.metrics.gauge('a').set(1)\n"
            "        self.metrics.histogram('b').observe(2)\n"
        )
        assert len(hits("PERF001", src)) == 2

    def test_lookup_outside_loop_is_quiet(self):
        src = (
            "counter = OBS.metrics.counter('x/y')\n"
            "def f(self):\n"
            "    c = self.metrics.counter('z')\n"
            "    for item in items:\n"
            "        c.add()\n"
        )
        assert hits("PERF001", src) == []

    def test_for_iterable_is_quiet(self):
        # The iterable expression is evaluated once, not per iteration.
        src = (
            "def f(self):\n"
            "    for item in self.metrics.counter('x').tags:\n"
            "        use(item)\n"
        )
        assert hits("PERF001", src) == []

    def test_nested_function_in_loop_is_quiet(self):
        # The inner def's body runs per *call*, not per loop iteration.
        src = (
            "def f(self):\n"
            "    for item in items:\n"
            "        def cb():\n"
            "            return OBS.metrics.counter('x').value\n"
            "        register(cb)\n"
        )
        assert hits("PERF001", src) == []

    def test_non_metrics_owner_is_quiet(self):
        src = (
            "def f(self):\n"
            "    for item in items:\n"
            "        self.registry.counter('x').add()\n"
        )
        assert hits("PERF001", src) == []

    def test_while_body_fires(self):
        src = (
            "def f(self):\n"
            "    while True:\n"
            "        OBS.metrics.counter('ticks').add()\n"
        )
        assert len(hits("PERF001", src)) == 1

    def test_noqa_suppresses(self):
        src = (
            "def f(self):\n"
            "    for item in items:\n"
            "        OBS.metrics.counter('x').add()  # repro: noqa[PERF001]\n"
        )
        assert hits("PERF001", src) == []


class TestPerf002:
    #: A churn handler that tracks the previous answer and re-searches.
    BAD = (
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._prev_allocation: ThreadAllocation | None = None\n"
        "    def reoptimize(self, specs):\n"
        "        result = self.search.search(self.machine, specs)\n"
        "        self._prev_allocation = result.allocation\n"
    )

    def test_full_search_with_tracked_previous_fires(self):
        found = hits("PERF002", self.BAD)
        assert [v.rule_id for v in found] == ["PERF002"]
        assert found[0].line == 5
        assert found[0].severity is Severity.WARNING
        assert "_prev_allocation" in found[0].message

    def test_handler_prefixes_fire(self):
        for name in ("on_churn", "handle_join", "decide", "_optimize"):
            src = (
                "class S:\n"
                "    def __init__(self):\n"
                "        self.last_alloc = None\n"
                f"    def {name}(self, specs):\n"
                "        r = self.search.search(self.machine, specs)\n"
            )
            assert len(hits("PERF002", src)) == 1, name

    def test_delta_receiver_is_quiet(self):
        src = (
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._prev_allocation: ThreadAllocation | None = None\n"
            "    def reoptimize(self, specs):\n"
            "        out = self.delta.search(self.machine, specs)\n"
        )
        assert hits("PERF002", src) == []

    def test_no_previous_state_is_quiet(self):
        # An arbiter that searches from scratch every time has no warm
        # start to ignore.
        src = (
            "class Arbiter:\n"
            "    def decide(self, machine, requests):\n"
            "        return self.search.search(machine, requests)\n"
        )
        assert hits("PERF002", src) == []

    def test_non_handler_function_is_quiet(self):
        src = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self._prev_allocation = None\n"
            "    def offline_answer(self, specs):\n"
            "        return self.search.search(self.machine, specs)\n"
        )
        assert hits("PERF002", src) == []

    def test_regex_style_search_is_quiet(self):
        # One positional argument: not the optimizer protocol.
        src = (
            "def handle_line(self):\n"
            "    last_alloc = None\n"
            "    return PATTERN.search(line)\n"
        )
        assert hits("PERF002", src) == []

    def test_previous_allocation_in_function_locals_fires(self):
        src = (
            "def on_event(machine, specs, prev_alloc):\n"
            "    last_alloc = search.search(machine, specs).allocation\n"
            "    return last_alloc\n"
        )
        assert len(hits("PERF002", src)) == 1

    def test_annotation_without_alloc_in_name_fires(self):
        src = (
            "class S:\n"
            "    def __init__(self):\n"
            "        self._last: ThreadAllocation | None = None\n"
            "    def decide(self, machine):\n"
            "        r = ExhaustiveSearch(self.model).search(machine, self.specs)\n"
        )
        assert len(hits("PERF002", src)) == 1

    def test_noqa_suppresses(self):
        src = self.BAD.replace(
            "specs)\n        self._prev",
            "specs)  # repro: noqa[PERF002]\n        self._prev",
        )
        assert hits("PERF002", src) == []


class TestPerf003:
    def test_pool_in_loop_fires(self):
        src = (
            "def f(batches):\n"
            "    for batch in batches:\n"
            "        pool = WorkerPool(4)\n"
            "        pool.score(batch)\n"
        )
        found = hits("PERF003", src)
        assert [v.rule_id for v in found] == ["PERF003"]
        assert found[0].line == 3
        assert found[0].severity is Severity.WARNING

    def test_attribute_form_fires(self):
        src = (
            "def f(rounds):\n"
            "    while rounds:\n"
            "        with multiprocessing.Pool(4) as p:\n"
            "            p.map(g, rounds.pop())\n"
        )
        assert len(hits("PERF003", src)) == 1

    def test_executor_in_handler_fires(self):
        src = (
            "def handle_report(self, report):\n"
            "    ex = ProcessPoolExecutor(4)\n"
            "    return ex.submit(score, report)\n"
        )
        assert len(hits("PERF003", src)) == 1

    def test_search_shaped_function_fires(self):
        src = (
            "def search(self, machine, apps):\n"
            "    pool = WorkerPool(self.workers)\n"
            "    return pool.score(machine, apps)\n"
        )
        assert len(hits("PERF003", src)) == 1

    def test_hoisted_pool_is_quiet(self):
        src = (
            "POOL = WorkerPool(4)\n"
            "def score_all(batches):\n"
            "    for batch in batches:\n"
            "        POOL.score(batch)\n"
        )
        assert hits("PERF003", src) == []

    def test_registry_lookup_is_quiet(self):
        src = (
            "def search(self, machine, apps):\n"
            "    pool = get_pool(self.workers)\n"
            "    return pool.score(machine, apps)\n"
        )
        assert hits("PERF003", src) == []

    def test_cold_function_is_quiet(self):
        src = (
            "def make_pool(workers):\n"
            "    return WorkerPool(workers)\n"
        )
        assert hits("PERF003", src) == []

    def test_nested_function_in_loop_is_quiet(self):
        # Defined per iteration, constructed per later call.
        src = (
            "def f(batches):\n"
            "    for batch in batches:\n"
            "        def make():\n"
            "            return WorkerPool(2)\n"
            "        callbacks.append(make)\n"
        )
        assert hits("PERF003", src) == []

    def test_noqa_suppresses(self):
        src = (
            "def bench(counts):\n"
            "    for w in counts:\n"
            "        pool = WorkerPool(w)  # repro: noqa[PERF003]\n"
            "        pool.close()\n"
        )
        assert hits("PERF003", src) == []


class TestDoc001:
    def test_undocumented_exported_function_fires(self):
        src = (
            "__all__ = ['f']\n"
            "def f():\n"
            "    return 1\n"
        )
        found = hits("DOC001", src)
        assert [v.rule_id for v in found] == ["DOC001"]
        assert found[0].line == 2
        assert "'f'" in found[0].message

    def test_documented_exported_function_is_quiet(self):
        src = (
            "__all__ = ['f']\n"
            "def f():\n"
            "    \"\"\"Do the thing.\"\"\"\n"
            "    return 1\n"
        )
        assert hits("DOC001", src) == []

    def test_unexported_function_is_quiet(self):
        src = (
            "__all__ = ['g']\n"
            "def g():\n"
            "    \"\"\"Exported and documented.\"\"\"\n"
            "def helper():\n"
            "    return 1\n"
        )
        assert hits("DOC001", src) == []

    def test_public_method_of_exported_class_fires(self):
        src = (
            "__all__ = ['C']\n"
            "class C:\n"
            "    \"\"\"Documented class.\"\"\"\n"
            "    def work(self):\n"
            "        return 1\n"
            "    def _internal(self):\n"
            "        return 2\n"
        )
        found = hits("DOC001", src)
        assert len(found) == 1
        assert "C.work" in found[0].message

    def test_undocumented_class_and_method_both_fire(self):
        src = (
            "__all__ = ['C']\n"
            "class C:\n"
            "    def work(self):\n"
            "        return 1\n"
        )
        found = hits("DOC001", src)
        assert len(found) == 2

    def test_nested_def_sharing_the_name_is_quiet(self):
        src = (
            "__all__ = ['f']\n"
            "def f():\n"
            "    \"\"\"Documented.\"\"\"\n"
            "    def f():\n"
            "        return 1\n"
            "    return f\n"
        )
        assert hits("DOC001", src) == []

    def test_no_all_literal_is_quiet(self):
        src = "def f():\n    return 1\n"
        assert hits("DOC001", src) == []

    def test_noqa_suppresses(self):
        src = (
            "__all__ = ['f']\n"
            "def f():  # repro: noqa[DOC001]\n"
            "    return 1\n"
        )
        assert hits("DOC001", src) == []

    def test_real_tree_is_clean(self):
        # The live repo must satisfy its own documentation rule.
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        engine = LintEngine(rules=["DOC001"], project_root=root)
        assert engine.check_paths([root / "src"]) == []


class TestIo001:
    def test_open_write_in_save_function_fires(self):
        src = (
            "import json\n"
            "def save_results(path, doc):\n"
            "    with open(path, 'w') as handle:\n"
            "        json.dump(doc, handle)\n"
        )
        found = hits("IO001", src)
        assert [v.rule_id for v in found] == ["IO001"]
        assert found[0].line == 3
        assert "atomic" in found[0].message

    def test_write_text_on_durable_path_fires(self):
        src = (
            "def f(snapshot_path, data):\n"
            "    snapshot_path.write_text(data)\n"
        )
        found = hits("IO001", src)
        assert len(found) == 1

    def test_write_bytes_on_journal_path_fires(self):
        src = "def f(journal_file):\n    journal_file.write_bytes(b'x')\n"
        assert len(hits("IO001", src)) == 1

    def test_open_with_mode_keyword_fires(self):
        src = (
            "def persist(path, data):\n"
            "    handle = open(path, mode='wb')\n"
            "    handle.write(data)\n"
        )
        assert len(hits("IO001", src)) == 1

    def test_read_mode_is_quiet(self):
        src = (
            "def load_snapshot(path):\n"
            "    with open(path, 'r') as handle:\n"
            "        return handle.read()\n"
        )
        assert hits("IO001", src) == []

    def test_default_mode_is_quiet(self):
        # No mode argument means read mode.
        src = "def load_baseline(path):\n    return open(path).read()\n"
        assert hits("IO001", src) == []

    def test_non_durable_context_is_quiet(self):
        # Neither the function name nor the path smells durable.
        src = (
            "def render(out, text):\n"
            "    with open(out, 'w') as handle:\n"
            "        handle.write(text)\n"
        )
        assert hits("IO001", src) == []

    def test_temp_plus_rename_idiom_is_quiet(self):
        src = (
            "import os, tempfile\n"
            "def save_state(path, data):\n"
            "    fd, tmp = tempfile.mkstemp(dir='.')\n"
            "    with os.fdopen(fd, 'w') as handle:\n"
            "        handle.write(data)\n"
            "    os.replace(tmp, path)\n"
        )
        assert hits("IO001", src) == []

    def test_noqa_suppresses(self):
        src = (
            "def save_log(path):\n"
            "    open(path, 'a').write('x')  # repro: noqa[IO001]\n"
        )
        assert hits("IO001", src) == []

    def test_severity_is_warning(self):
        src = (
            "def checkpoint(path):\n"
            "    open(path, 'w').write('x')\n"
        )
        found = hits("IO001", src)
        assert found[0].severity is Severity.WARNING

    def test_real_tree_is_clean(self):
        # Every durable write in the repo uses the atomic idiom.
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent
        engine = LintEngine(rules=["IO001"], project_root=root)
        assert engine.check_paths([root / "src"]) == []
