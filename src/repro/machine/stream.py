"""STREAM-like bandwidth measurement on the simulated machine.

The paper's remote-access model rules were chosen to "capture to some
degree experimental results that we have obtained using the STREAM
benchmark [13] on a four socket server".  This module reproduces that
measurement methodology against the execution simulator: saturate a
(source node, memory node) pair with streaming threads and report the
achieved bandwidth.  Running it over all pairs recovers the machine's
link matrix — which is how a user would calibrate
:class:`~repro.machine.topology.MachineTopology` parameters for their own
hardware.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CalibrationError
from repro.machine.topology import MachineTopology

# NOTE: the simulator is imported lazily inside the functions below.  The
# machine package is the bottom layer of the library and the simulator
# depends on it; importing repro.sim here at module load time would close
# an import cycle (machine -> stream -> sim -> machine).

__all__ = ["measure_pair_bandwidth", "measure_link_matrix"]

#: Arithmetic intensity of the triad kernel: essentially pure streaming.
_STREAM_AI = 1e-3


class _StreamLoad:
    """Endless streaming segments against a fixed memory node."""

    def __init__(self, memory_node: int, flops: float) -> None:
        self.memory_node = memory_node
        self.flops = flops

    def next_segment(self, thread):
        from repro.sim.executor import WorkSegment

        return WorkSegment(
            flops=self.flops,
            arithmetic_intensity=_STREAM_AI,
            data_home=self.memory_node,
            label="stream-triad",
        )

    def segment_finished(self, thread, segment) -> None:
        pass


def measure_pair_bandwidth(
    machine: MachineTopology,
    source_node: int,
    memory_node: int,
    *,
    threads: int | None = None,
    duration: float = 0.2,
) -> float:
    """Achieved GB/s for ``threads`` on ``source_node`` reading
    ``memory_node``.

    ``threads`` defaults to all cores of the source node (the saturating
    configuration STREAM uses).
    """
    from repro.sim.cpu import Binding
    from repro.sim.executor import ExecutionSimulator

    machine.node(source_node)
    machine.node(memory_node)
    if duration <= 0:
        raise CalibrationError("duration must be positive")
    n = threads or machine.node(source_node).num_cores
    if n <= 0 or n > machine.node(source_node).num_cores:
        raise CalibrationError(
            f"thread count {n} invalid for node {source_node}"
        )
    ex = ExecutionSimulator(machine)
    core_peak = machine.node(source_node).cores[0].peak_gflops
    # Size each task to ~10 slices so quantisation error stays small.
    flops = core_peak * ex.slice_seconds * 10
    load = _StreamLoad(memory_node, flops)
    for i in range(n):
        ex.add_thread(
            f"stream-{i}",
            Binding.to_node(source_node),
            load,
            app_name="stream",
        )
    ex.run(duration)
    gflops = ex.achieved_gflops("stream", duration)
    return gflops / _STREAM_AI


def measure_link_matrix(
    machine: MachineTopology, *, duration: float = 0.2
) -> np.ndarray:
    """Measure achieved bandwidth for every (source, memory) node pair.

    The diagonal approaches each node's local bandwidth; off-diagonal
    entries approach the link bandwidths — the measured analogue of
    :attr:`MachineTopology.link_bandwidth`.
    """
    n = machine.num_nodes
    out = np.zeros((n, n))
    for s in range(n):
        for m in range(n):
            out[s, m] = measure_pair_bandwidth(
                machine, s, m, duration=duration
            )
    return out
