"""The producer-consumer scenario of the authors' earlier work [10].

"We used a simple producer-consumer scenario, where one application
produces one data item per iteration and another application consumes one
such item per iteration.  Each iteration consists internally of multiple
tasks that can be executed in parallel."

Two :class:`~repro.runtime.runtime.OCRVxRuntime` instances share the
machine.  Producer iteration *i* is a fan of parallel tasks joined by a
sink that publishes item *i*; consumer iteration *i* depends on item *i*
and on the consumer's own iteration *i-1*.  The scenario tracks the
*intermediate data* (items produced but not yet consumed) over time — the
metric where the paper reports the clearest benefit of agent coordination
("a clear benefit on storage thanks to the reduced size of intermediate
data").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.runtime.events import OnceEvent
from repro.runtime.runtime import OCRVxRuntime
from repro.runtime.task import Task
from repro.sim.executor import ExecutionSimulator
from repro.obs.metrics import TimeSeries

__all__ = ["ProducerConsumerScenario"]


@dataclass(frozen=True)
class _SideConfig:
    tasks_per_iteration: int
    flops_per_task: float
    arithmetic_intensity: float


class ProducerConsumerScenario:
    """Builds and tracks the two-application pipeline.

    Parameters
    ----------
    executor:
        Shared execution simulator.
    iterations:
        Pipeline length.
    producer / consumer:
        The two hosting runtimes (created by the caller, typically with
        half the machine each or with all cores each to exhibit
        over-subscription).
    tasks_per_iteration:
        Parallel fan width inside one iteration.
    producer_flops / consumer_flops:
        Work per task on each side; unequal values make one side the
        bottleneck, which is what the agent has to keep aligned.
    item_bytes:
        Size of one produced item, for the intermediate-data metric.
    """

    def __init__(
        self,
        executor: ExecutionSimulator,
        producer: OCRVxRuntime,
        consumer: OCRVxRuntime,
        *,
        iterations: int,
        tasks_per_iteration: int = 8,
        producer_flops: float = 0.01,
        consumer_flops: float = 0.01,
        arithmetic_intensity: float = 4.0,
        item_bytes: float = 16 * 2**20,
    ) -> None:
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if tasks_per_iteration <= 0:
            raise ConfigurationError("tasks_per_iteration must be positive")
        self.executor = executor
        self.producer = producer
        self.consumer = consumer
        self.iterations = iterations
        self.item_bytes = item_bytes
        self._pcfg = _SideConfig(
            tasks_per_iteration, producer_flops, arithmetic_intensity
        )
        self._ccfg = _SideConfig(
            tasks_per_iteration, consumer_flops, arithmetic_intensity
        )
        self.produced = 0
        self.consumed = 0
        self.intermediate_items = TimeSeries("intermediate-items")
        self.item_events: list[OnceEvent] = [
            OnceEvent(f"item-{i}") for i in range(iterations)
        ]
        self._built = False

    # ------------------------------------------------------------------
    def build(self) -> None:
        """Create both applications' full task graphs (pipelined)."""
        if self._built:
            raise ConfigurationError("scenario already built")
        self._built = True
        prev_sink: Task | None = None
        for i in range(self.iterations):
            prev_sink = self._producer_iteration(i, prev_sink)
        prev_csink: Task | None = None
        for i in range(self.iterations):
            prev_csink = self._consumer_iteration(i, prev_csink)

    def _producer_iteration(
        self, i: int, prev_sink: Task | None
    ) -> Task:
        cfg = self._pcfg
        deps = [prev_sink] if prev_sink is not None else []
        fan = [
            self.producer.create_task(
                f"prod{i}.{j}",
                flops=cfg.flops_per_task,
                arithmetic_intensity=cfg.arithmetic_intensity,
                depends_on=deps,
            )
            for j in range(cfg.tasks_per_iteration)
        ]

        def publish(_t: Task) -> None:
            self.produced += 1
            self.producer.stats.report_progress("iterations")
            self.intermediate_items.record(
                self.executor.sim.now, self.produced - self.consumed
            )
            self.item_events[i].satisfy(i)

        sink = self.producer.create_task(
            f"prod{i}.sink",
            flops=cfg.flops_per_task * 0.1,
            arithmetic_intensity=cfg.arithmetic_intensity,
            depends_on=fan,
            on_finish=publish,
        )
        return sink

    def _consumer_iteration(
        self, i: int, prev_sink: Task | None
    ) -> Task:
        cfg = self._ccfg
        deps: list = [self.item_events[i]]
        if prev_sink is not None:
            deps.append(prev_sink)
        fan = [
            self.consumer.create_task(
                f"cons{i}.{j}",
                flops=cfg.flops_per_task,
                arithmetic_intensity=cfg.arithmetic_intensity,
                depends_on=deps,
            )
            for j in range(cfg.tasks_per_iteration)
        ]

        def retire(_t: Task) -> None:
            self.consumed += 1
            self.consumer.stats.report_progress("iterations")
            self.intermediate_items.record(
                self.executor.sim.now, self.produced - self.consumed
            )

        sink = self.consumer.create_task(
            f"cons{i}.sink",
            flops=cfg.flops_per_task * 0.1,
            arithmetic_intensity=cfg.arithmetic_intensity,
            depends_on=fan,
            on_finish=retire,
        )
        return sink

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True when every item has been produced and consumed."""
        return (
            self.produced == self.iterations
            and self.consumed == self.iterations
        )

    def max_intermediate_items(self) -> int:
        """Peak number of items alive at once (storage high-water mark)."""
        if len(self.intermediate_items) == 0:
            return 0
        return int(self.intermediate_items.max())

    def max_intermediate_bytes(self) -> float:
        """Peak intermediate storage in bytes."""
        return self.max_intermediate_items() * self.item_bytes
