"""Ablation: allocation-search strategies on the paper workloads.

DESIGN.md calls out the optimizer as a design choice to ablate: how do
greedy, hill-climbing and annealing compare against exhaustive symmetric
search in quality and in model evaluations?
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core import (
    AnnealingSearch,
    AppSpec,
    ExhaustiveSearch,
    GreedySearch,
    HillClimbSearch,
)
from repro.machine import model_machine, skylake_4s


def _apps():
    return [
        AppSpec.memory_bound("mem0", 0.5),
        AppSpec.memory_bound("mem1", 0.5),
        AppSpec.memory_bound("mem2", 0.5),
        AppSpec.compute_bound("comp", 10.0),
    ]


def _compare(machine):
    apps = _apps()
    searches = {
        "exhaustive": ExhaustiveSearch(),
        "greedy": GreedySearch(),
        "hill-climb": HillClimbSearch(),
        "annealing": AnnealingSearch(steps=1500, seed=1),
    }
    return {
        name: s.search(machine, apps) for name, s in searches.items()
    }


def test_bench_optimizer_model_machine(benchmark):
    results = benchmark.pedantic(
        _compare, args=(model_machine(),), rounds=1, iterations=1
    )
    emit(
        "Optimizer ablation (model machine, Tables I/II workload)",
        render_table(
            ["search", "GFLOPS", "model evaluations"],
            [
                [name, r.score, r.evaluations]
                for name, r in results.items()
            ],
        ),
    )
    best = results["exhaustive"].score
    assert best == pytest.approx(320.0)
    # Heuristics reach at least 95% of the symmetric optimum.
    for name, r in results.items():
        assert r.score >= 0.95 * best, name
    # Greedy needs far fewer evaluations than exhaustive on big machines.
    assert results["greedy"].evaluations > 0


def test_bench_optimizer_skylake(benchmark):
    results = benchmark.pedantic(
        _compare, args=(skylake_4s(),), rounds=1, iterations=1
    )
    emit(
        "Optimizer ablation (Skylake 4x20)",
        render_table(
            ["search", "GFLOPS", "model evaluations"],
            [
                [name, r.score, r.evaluations]
                for name, r in results.items()
            ],
        ),
    )
    best = max(r.score for r in results.values())
    for name, r in results.items():
        assert r.score >= 0.90 * best, name
