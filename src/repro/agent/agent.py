"""The coordination agent of Figure 1.

A dedicated process that periodically: collects a :class:`StatusReport`
from every registered runtime endpoint, samples machine load, asks its
:class:`~repro.agent.strategies.AgentStrategy` for commands, and applies
them.  The loop runs on the shared discrete-event clock, so agent activity
interleaves with application execution exactly as it would on a real node.

Section IV warns that a CPU-hungry agent perturbs the applications; the
agent therefore tracks its cumulative *deliberation budget*
(``decision_cost_seconds`` per round) and can optionally burn that budget
as real simulated work on a dedicated core via ``charge_cpu=True`` —
letting the experiments quantify the perturbation instead of ignoring it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.agent.monitor import LoadMonitor, LoadSample
from repro.agent.protocol import RuntimeEndpoint, StatusReport, ThreadCommand
from repro.agent.strategies import AgentStrategy
from repro.errors import AgentError
from repro.obs import OBS
from repro.sim.executor import ExecutionSimulator, WorkSegment
from repro.sim.cpu import Binding, SimThread
from repro.sim.trace import TraceKind

__all__ = ["AgentDecision", "Agent"]


def _endpoint_threads(endpoint: RuntimeEndpoint) -> int | None:
    """Active-thread count of an endpoint's runtime, if it exposes one.

    Duck-typed so command spans can annotate before/after counts without
    issuing an extra protocol report (which would perturb the endpoints'
    differencing state, e.g. ``cpu_load``).
    """
    runtime = getattr(endpoint, "runtime", None)
    return getattr(runtime, "active_threads", None)


@dataclass(frozen=True)
class AgentDecision:
    """Record of one agent round."""

    time: float
    reports: dict[str, StatusReport]
    load: LoadSample
    commands: dict[str, tuple[ThreadCommand, ...]]


class Agent:
    """The resource-arbitration agent.

    Parameters
    ----------
    executor:
        The shared execution simulator.
    strategy:
        Decision logic.
    period:
        Seconds between rounds.
    decision_cost_seconds:
        CPU time one round costs the agent (Section IV's concern).
    charge_cpu:
        When True, the agent's deliberation is executed as work on a
        dedicated simulated thread (bound to ``agent_node``), competing
        for a core like any other thread would.
    """

    def __init__(
        self,
        executor: ExecutionSimulator,
        strategy: AgentStrategy,
        *,
        period: float = 0.01,
        decision_cost_seconds: float = 0.0,
        charge_cpu: bool = False,
        agent_node: int = 0,
    ) -> None:
        if period <= 0:
            raise AgentError(f"period must be positive, got {period}")
        if decision_cost_seconds < 0:
            raise AgentError("decision_cost_seconds must be >= 0")
        self.executor = executor
        self.strategy = strategy
        self.period = period
        self.decision_cost_seconds = decision_cost_seconds
        self.charge_cpu = charge_cpu
        self.agent_node = agent_node
        self.endpoints: dict[str, RuntimeEndpoint] = {}
        self.monitor = LoadMonitor(executor)
        self.decisions: list[AgentDecision] = []
        self.total_deliberation = 0.0
        self._started = False
        self._agent_thread: SimThread | None = None
        self._pending_work = 0.0

    # ------------------------------------------------------------------
    def register(self, endpoint: RuntimeEndpoint) -> None:
        """Attach a runtime to the agent."""
        if endpoint.name in self.endpoints:
            raise AgentError(f"duplicate endpoint '{endpoint.name}'")
        self.endpoints[endpoint.name] = endpoint

    def start(self) -> None:
        """Begin the periodic control loop (first round after one period)."""
        if self._started:
            raise AgentError("agent already started")
        if not self.endpoints:
            raise AgentError("agent has no registered runtimes")
        self._started = True
        if self.charge_cpu and self.decision_cost_seconds > 0:
            # The agent's own thread: its provider drains deliberation
            # work charged by each round.  Compute-only (high AI).
            agent = self

            class _AgentWork:
                def next_segment(self, thread: SimThread) -> WorkSegment | None:
                    if agent._pending_work <= 0:
                        return None
                    core_peak = agent.executor.machine.node(
                        agent.agent_node
                    ).cores[0].peak_gflops
                    flops = agent._pending_work * core_peak
                    agent._pending_work = 0.0
                    return WorkSegment(
                        flops=flops,
                        arithmetic_intensity=1e6,
                        label="agent-deliberation",
                    )

                def segment_finished(self, thread, segment) -> None:
                    pass

            self._agent_thread = self.executor.add_thread(
                "agent",
                Binding.to_node(self.agent_node),
                _AgentWork(),
                app_name="agent",
            )
        self.executor.sim.schedule(self.period, self._round, priority=5)

    # ------------------------------------------------------------------
    def _round(self) -> None:
        now = self.executor.sim.now
        with OBS.tracer.span("agent/round", sim_time=now) as span:
            reports = {
                name: ep.report(now) for name, ep in self.endpoints.items()
            }
            load = self.monitor.sample()
            commands = self.strategy.decide(self.executor.machine, reports)
            applied = 0
            for name, cmds in commands.items():
                if name not in self.endpoints:
                    raise AgentError(
                        f"strategy issued commands for unknown runtime "
                        f"'{name}'"
                    )
                for cmd in cmds:
                    self._apply_command(name, cmd, now)
                    applied += 1
            if OBS.enabled:
                span.attrs["commands"] = applied
                OBS.metrics.counter("agent/rounds").add()
        self.total_deliberation += self.decision_cost_seconds
        if self.charge_cpu:
            self._pending_work += self.decision_cost_seconds
        self.decisions.append(
            AgentDecision(
                time=now,
                reports=reports,
                load=load,
                commands={
                    k: tuple(v) for k, v in commands.items()
                },
            )
        )
        self.executor.sim.schedule(self.period, self._round, priority=5)

    def _apply_command(self, name: str, cmd: ThreadCommand, now: float) -> None:
        """Apply one command; when observability is on, log it as a span
        with the runtime's before/after active-thread counts."""
        endpoint = self.endpoints[name]
        if not OBS.enabled:
            endpoint.apply(cmd)
        else:
            before = _endpoint_threads(endpoint)
            with OBS.tracer.span(
                "agent/command",
                runtime=name,
                command=cmd.kind.value,
                sim_time=now,
            ) as span:
                endpoint.apply(cmd)
                span.attrs["threads_before"] = before
                span.attrs["threads_after"] = _endpoint_threads(endpoint)
            OBS.metrics.counter("agent/commands").add()
        self.executor.tracer.emit(
            now, TraceKind.COMMAND, name, command=cmd.kind.value
        )

    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Completed decision rounds."""
        return len(self.decisions)

    def commands_issued(self) -> int:
        """Total commands applied across all rounds."""
        return sum(
            len(cmds)
            for d in self.decisions
            for cmds in d.commands.values()
        )
