#!/usr/bin/env python3
"""Rescuing a NUMA-bad application: allocation choice and data migration.

A "NUMA-bad" application stores all its data on one node (Section III).
This example shows, on the simulated Skylake server:

1. how badly a cross-node even allocation performs,
2. how much a data-affine node-exclusive allocation recovers,
3. and the OCR-specific remedy the paper highlights — the runtime owns
   the data, so it can *migrate* the datablocks to where the threads are
   (impossible in TBB, where the runtime never sees application data).

Run:  python examples/numa_bad_rescue.py
"""

from repro.analysis import render_table
from repro.apps import SyntheticApp
from repro.core import AppSpec, NumaPerformanceModel, ThreadAllocation
from repro.machine import skylake_4s
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


def measure(allocation: list[int], migrate_to: int | None) -> float:
    """Run the NUMA-bad app alone under a per-node allocation."""
    machine = skylake_4s()
    ex = ExecutionSimulator(machine)
    rt = OCRVxRuntime("bad", ex)
    rt.start(allocation)
    spec = AppSpec.numa_bad("bad", 1 / 16, home_node=0)
    app = SyntheticApp(rt, spec, task_flops=0.005)
    if migrate_to is not None:
        app.migrate_data(migrate_to)
    app.submit_stream(10**9)
    duration = 0.3
    ex.run(duration)
    return ex.total_gflops(duration)


def main() -> None:
    machine = skylake_4s()
    model = NumaPerformanceModel()
    spec = AppSpec.numa_bad("bad", 1 / 16, home_node=0)

    # Analytic predictions first.
    even = ThreadAllocation.from_mapping({"bad": [5, 5, 5, 5]})
    home = ThreadAllocation.from_mapping({"bad": [20, 0, 0, 0]})
    wrong = ThreadAllocation.from_mapping({"bad": [0, 0, 0, 20]})
    rows = []
    for name, alloc in [
        ("spread over all nodes (5,5,5,5)", even),
        ("all threads on the data's node", home),
        ("all threads on the WRONG node", wrong),
    ]:
        rows.append(
            [name, model.predict(machine, [spec], alloc).total_gflops]
        )
    print(
        render_table(
            ["thread placement", "predicted GFLOPS"],
            rows,
            title="NUMA-bad app (data on node 0), model predictions:",
        )
    )
    print()

    # Now measured on the full runtime stack, including the migration fix.
    measured = [
        [
            "threads on wrong node, data stays",
            measure([0, 0, 0, 20], migrate_to=None),
        ],
        [
            "threads on wrong node, data MIGRATED to it",
            measure([0, 0, 0, 20], migrate_to=3),
        ],
    ]
    print(
        render_table(
            ["configuration", "measured GFLOPS"],
            measured,
            title="The OCR remedy — migrate the datablocks:",
        )
    )
    print(
        "\nMigrating the data turns remote (link-capped) traffic into "
        "local traffic;\nthe paper notes this is natural in OCR, where "
        "the runtime manages the data,\nbut 'very difficult in "
        "applications based on TBB'."
    )


if __name__ == "__main__":
    main()
