"""Application scaling curves and marginal-utility core allocation.

Section II: "if the scaling of the applications is less than linear, we
might get better efficiency by reducing the number of threads ... The
application's performance might increase with any extra thread, but the
scaling is not linear.  In this case, it might be better to limit the
number of threads allocated to this application and assign the CPU cores
to another application, which can make better use of them."

This module makes that reasoning executable:

* :class:`ScalingCurve` — throughput as a function of thread count, with
  three concrete families: linear, Amdahl, and the model-derived curve of
  a roofline application on a NUMA node (linear until bandwidth
  saturation, flat after — exactly the paper's memory-bound case);
* :func:`marginal_utility_allocation` — the greedy water-filling
  allocator over marginal gains.  For concave curves the greedy choice is
  optimal, which turns the paper's observation into an O(cores * apps)
  algorithm instead of a search.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.spec import AppSpec
from repro.errors import ConfigurationError, ModelError
from repro.machine.topology import MachineTopology

__all__ = [
    "ScalingCurve",
    "LinearScaling",
    "AmdahlScaling",
    "RooflineNodeScaling",
    "measured_curve",
    "marginal_utility_allocation",
]


class ScalingCurve(ABC):
    """Throughput (GFLOPS) of one application vs its thread count."""

    @abstractmethod
    def throughput(self, threads: int) -> float:
        """Throughput with ``threads`` threads (0 threads -> 0)."""

    def speedup(self, threads: int) -> float:
        """Throughput relative to one thread."""
        base = self.throughput(1)
        if base <= 0:
            raise ModelError("speedup undefined: zero single-thread rate")
        return self.throughput(threads) / base

    def efficiency(self, threads: int) -> float:
        """Speedup divided by thread count (parallel efficiency)."""
        if threads <= 0:
            raise ModelError(f"threads must be positive, got {threads}")
        return self.speedup(threads) / threads

    def marginal(self, threads: int) -> float:
        """Extra throughput from adding the ``threads``-th thread."""
        if threads <= 0:
            raise ModelError(f"threads must be positive, got {threads}")
        return self.throughput(threads) - self.throughput(threads - 1)

    def is_sublinear(self, max_threads: int, *, tol: float = 1e-9) -> bool:
        """True if efficiency drops below 1 anywhere up to max_threads."""
        return any(
            self.efficiency(t) < 1.0 - tol
            for t in range(2, max_threads + 1)
        )


@dataclass(frozen=True)
class LinearScaling(ScalingCurve):
    """Perfect scaling: ``threads * per_thread`` GFLOPS."""

    per_thread: float

    def __post_init__(self) -> None:
        if self.per_thread <= 0:
            raise ConfigurationError("per_thread must be positive")

    def throughput(self, threads: int) -> float:
        """GFLOPS at ``threads``: perfectly linear."""
        if threads < 0:
            raise ModelError("threads must be non-negative")
        return self.per_thread * threads


@dataclass(frozen=True)
class AmdahlScaling(ScalingCurve):
    """Amdahl's law: serial fraction limits the speedup.

    ``throughput(n) = peak_single * n / (serial * n + (1 - serial))``.
    """

    peak_single: float
    serial_fraction: float

    def __post_init__(self) -> None:
        if self.peak_single <= 0:
            raise ConfigurationError("peak_single must be positive")
        if not 0 <= self.serial_fraction <= 1:
            raise ConfigurationError("serial_fraction must be in [0,1]")

    def throughput(self, threads: int) -> float:
        """GFLOPS at ``threads`` under Amdahl's law."""
        if threads < 0:
            raise ModelError("threads must be non-negative")
        if threads == 0:
            return 0.0
        s = self.serial_fraction
        return self.peak_single * threads / (s * threads + (1 - s))


@dataclass(frozen=True)
class RooflineNodeScaling(ScalingCurve):
    """The model-derived curve of a roofline app alone on one NUMA node.

    Linear at ``per_thread_peak`` until the node bandwidth saturates,
    flat at ``bandwidth * AI`` beyond — the paper's memory-bound
    applications follow exactly this shape (the source of the 254-vs-140
    result).
    """

    per_thread_peak: float
    node_bandwidth: float
    arithmetic_intensity: float

    def __post_init__(self) -> None:
        if self.per_thread_peak <= 0:
            raise ConfigurationError("per_thread_peak must be positive")
        if self.node_bandwidth <= 0:
            raise ConfigurationError("node_bandwidth must be positive")
        if self.arithmetic_intensity <= 0:
            raise ConfigurationError("arithmetic_intensity must be positive")

    @property
    def saturation_threads(self) -> float:
        """Thread count at which the bandwidth ceiling binds."""
        demand = self.per_thread_peak / self.arithmetic_intensity
        return self.node_bandwidth / demand

    def throughput(self, threads: int) -> float:
        """GFLOPS at ``threads`` from the node-local roofline model."""
        if threads < 0:
            raise ModelError("threads must be non-negative")
        compute = self.per_thread_peak * threads
        memory = self.node_bandwidth * self.arithmetic_intensity
        return min(compute, memory)

    @classmethod
    def for_app(
        cls, machine: MachineTopology, spec: AppSpec, node: int = 0
    ) -> "RooflineNodeScaling":
        """Curve of ``spec`` alone on ``machine``'s node ``node``."""
        n = machine.node(node)
        return cls(
            per_thread_peak=spec.peak_gflops(n.cores[0].peak_gflops),
            node_bandwidth=n.local_bandwidth,
            arithmetic_intensity=spec.arithmetic_intensity,
        )


@dataclass(frozen=True)
class _TabulatedCurve(ScalingCurve):
    values: tuple[float, ...]  # values[t] = throughput with t threads

    def throughput(self, threads: int) -> float:
        if threads < 0:
            raise ModelError("threads must be non-negative")
        if threads >= len(self.values):
            return self.values[-1]
        return self.values[threads]


def measured_curve(samples: Sequence[float]) -> ScalingCurve:
    """Build a curve from measured throughputs ``[t=0, t=1, ...]``.

    Values beyond the last sample are held flat (pessimistic).  The
    samples must be non-decreasing — the paper explicitly does "not
    assum[e] that the performance of that application actually degrades
    with more threads".
    """
    vals = [float(v) for v in samples]
    if len(vals) < 2:
        raise ConfigurationError("need at least [t0, t1] samples")
    if abs(vals[0]) > 1e-12:
        raise ConfigurationError("samples[0] (zero threads) must be 0")
    if any(b < a - 1e-12 for a, b in zip(vals, vals[1:])):
        raise ConfigurationError("samples must be non-decreasing")
    return _TabulatedCurve(values=tuple(vals))


def marginal_utility_allocation(
    curves: dict[str, ScalingCurve],
    total_cores: int,
    *,
    min_threads: int = 0,
    weights: dict[str, float] | None = None,
) -> dict[str, int]:
    """Allocate ``total_cores`` threads by greatest marginal gain.

    Hands out cores one at a time, each to the application whose
    (optionally weighted) marginal throughput for its next thread is
    largest — the water-filling rule.  Optimal for concave curves; exact
    for all three curve families above.  Ties break by application name,
    so the result is deterministic.

    Parameters
    ----------
    min_threads:
        Floor given to every application first (the arbiter's
        "nobody starves" rule).
    """
    if total_cores < 0:
        raise ConfigurationError("total_cores must be non-negative")
    if not curves:
        raise ConfigurationError("need at least one application curve")
    if min_threads * len(curves) > total_cores:
        raise ConfigurationError(
            f"cannot give {min_threads} thread(s) to each of "
            f"{len(curves)} apps with {total_cores} cores"
        )
    w = weights or {}
    alloc = {name: min_threads for name in curves}
    remaining = total_cores - min_threads * len(curves)
    for _ in range(remaining):
        best_name = None
        best_gain = -np.inf
        for name in sorted(curves):
            gain = w.get(name, 1.0) * curves[name].marginal(
                alloc[name] + 1
            )
            if gain > best_gain + 1e-15:
                best_gain = gain
                best_name = name
        if best_name is None or best_gain <= 0:
            break  # no application profits from another core
        alloc[best_name] += 1
    return alloc
