"""Unit tests for the paper machine presets."""

import pytest

from repro.machine import (
    knl_flat,
    knl_snc4,
    model_machine,
    numa_bad_example_machine,
    skylake_4s,
    uma_machine,
)


class TestModelMachine:
    def test_shape(self):
        m = model_machine()
        assert m.num_nodes == 4
        assert m.cores_per_node == (8, 8, 8, 8)
        assert m.nodes[0].cores[0].peak_gflops == 10.0

    def test_bandwidths_follow_table_arithmetic_not_caption(self):
        # Tables I/II compute with 32 GB/s (baseline 32/8 = 4), despite
        # their captions saying 40 GB/s.
        m = model_machine()
        assert m.nodes[0].local_bandwidth == 32.0

    def test_machine_peak(self):
        assert model_machine().peak_gflops == 320.0


class TestNumaBadExampleMachine:
    def test_recovered_bandwidths(self):
        m = numa_bad_example_machine()
        assert m.nodes[0].local_bandwidth == 60.0
        assert m.bandwidth(0, 1) == 10.0


class TestSkylake:
    def test_shape_matches_paper(self):
        m = skylake_4s()
        assert m.num_nodes == 4
        assert m.cores_per_node == (20,) * 4
        # "0.29 peak GFLOPS per thread", "100GB/s memory bandwidth"
        assert m.nodes[0].cores[0].peak_gflops == pytest.approx(0.29)
        assert m.nodes[0].local_bandwidth == pytest.approx(100.0)
        assert m.bandwidth(1, 0) == pytest.approx(10.0)

    def test_total_cores(self):
        assert skylake_4s().total_cores == 80


class TestOtherPresets:
    def test_knl_flat_is_single_node(self):
        m = knl_flat()
        assert m.num_nodes == 1
        assert m.total_cores == 64

    def test_knl_snc4_is_four_clusters(self):
        m = knl_snc4()
        assert m.num_nodes == 4
        assert m.total_cores == 64

    def test_knl_modes_have_equal_compute(self):
        assert knl_flat().peak_gflops == pytest.approx(
            knl_snc4().peak_gflops
        )

    def test_uma_machine_parameters(self):
        m = uma_machine(cores=4, peak_gflops_per_core=2.0, bandwidth=16.0)
        assert m.num_nodes == 1
        assert m.total_cores == 4
        assert m.nodes[0].local_bandwidth == 16.0
