"""Fairness and utilisation metrics for allocations and predictions.

An arbiter maximising raw GFLOPS starves memory-bound applications (the
320-GFLOPS degenerate optimum of the Tables I/II workload gives three of
the four applications nothing).  These metrics quantify that trade-off so
reports can show throughput *and* fairness side by side:

* **Jain's fairness index** — :math:`(\\sum x_i)^2 / (n \\sum x_i^2)`,
  1 when everyone gets the same, ``1/n`` when one application gets all;
* **proportional-fairness welfare** — :math:`\\sum \\log x_i`, the Nash
  bargaining objective (``-inf`` as soon as anyone is starved);
* machine **compute and bandwidth utilisation** of a prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.model import Prediction
from repro.errors import ConfigurationError
from repro.machine.topology import MachineTopology

__all__ = [
    "jain_index",
    "proportional_fairness",
    "FairnessReport",
    "evaluate_prediction",
]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of non-negative values, in ``[1/n, 1]``."""
    if not values:
        raise ConfigurationError("jain_index needs at least one value")
    if any(v < 0 for v in values):
        raise ConfigurationError("values must be non-negative")
    total = sum(values)
    if total == 0:
        return 1.0  # everyone equally has nothing
    squares = sum(v * v for v in values)
    return total * total / (len(values) * squares)


def proportional_fairness(values: Sequence[float]) -> float:
    """Sum of logs (Nash welfare); ``-inf`` if anyone gets zero."""
    if not values:
        raise ConfigurationError(
            "proportional_fairness needs at least one value"
        )
    if any(v < 0 for v in values):
        raise ConfigurationError("values must be non-negative")
    if any(v == 0 for v in values):
        return float("-inf")
    return sum(math.log(v) for v in values)


@dataclass(frozen=True)
class FairnessReport:
    """Throughput/fairness summary of one prediction."""

    total_gflops: float
    jain: float
    nash_welfare: float
    min_app_gflops: float
    compute_utilization: float
    bandwidth_utilization: float


def evaluate_prediction(
    machine: MachineTopology, prediction: Prediction
) -> FairnessReport:
    """Compute the fairness/utilisation summary of a model prediction."""
    per_app = [a.gflops for a in prediction.apps]
    return FairnessReport(
        total_gflops=prediction.total_gflops,
        jain=jain_index(per_app),
        nash_welfare=proportional_fairness(per_app),
        min_app_gflops=min(per_app),
        compute_utilization=(
            prediction.total_gflops / machine.peak_gflops
        ),
        bandwidth_utilization=(
            prediction.total_bandwidth / machine.total_local_bandwidth
        ),
    )
