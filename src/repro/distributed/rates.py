"""Piecewise-constant compute-rate profiles.

The distributed layer (Section V) reasons about *how fast each rank's
component computes over time*: co-located components and dynamic core
shifting make a rank's effective GFLOPS a piecewise-constant function.
:class:`PeriodicRate` represents one period of such a profile and answers
the only question the workload models need: *given this profile, when does
``work`` GFLOP finish if started at time t?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import DistributedError

__all__ = ["RatePhase", "PeriodicRate"]


@dataclass(frozen=True, slots=True)
class RatePhase:
    """One phase of a periodic rate profile."""

    duration: float
    gflops: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise DistributedError(
                f"phase duration must be positive, got {self.duration}"
            )
        if self.gflops < 0:
            raise DistributedError(
                f"phase rate must be non-negative, got {self.gflops}"
            )


class PeriodicRate:
    """A compute-rate profile repeating with a fixed period.

    Parameters
    ----------
    phases:
        The phases of one period, in order.
    offset:
        Phase shift: the profile at time ``t`` is the base profile at
        ``t + offset`` (lets co-located components on different ranks be
        out of phase, the situation that hurts barrier codes most).
    """

    def __init__(
        self, phases: Sequence[RatePhase], *, offset: float = 0.0
    ) -> None:
        if not phases:
            raise DistributedError("profile needs at least one phase")
        self.phases = tuple(phases)
        self.period = sum(p.duration for p in self.phases)
        self.offset = offset % self.period
        if all(p.gflops == 0 for p in self.phases):
            raise DistributedError("profile never computes")

    @classmethod
    def constant(cls, gflops: float) -> "PeriodicRate":
        """A flat profile."""
        return cls([RatePhase(duration=1.0, gflops=gflops)])

    # ------------------------------------------------------------------
    def rate_at(self, time: float) -> float:
        """Instantaneous GFLOPS at ``time``."""
        t = (time + self.offset) % self.period
        for p in self.phases:
            if t < p.duration:
                return p.gflops
            t -= p.duration
        return self.phases[-1].gflops  # pragma: no cover - fp guard

    def work_per_period(self) -> float:
        """GFLOP completed in one full period."""
        return sum(p.duration * p.gflops for p in self.phases)

    def average_rate(self) -> float:
        """Long-run average GFLOPS."""
        return self.work_per_period() / self.period

    def finish_time(self, work: float, start: float) -> float:
        """Earliest time at which ``work`` GFLOP complete, starting at
        ``start``."""
        if work < 0:
            raise DistributedError(f"work must be non-negative, got {work}")
        if work == 0:
            return start
        # Skip whole periods first.  When the work is an exact multiple
        # of a period's output, it completes at the end of that period's
        # *last active phase*, not after any trailing idle time — so walk
        # the final period explicitly.
        wpp = self.work_per_period()
        periods = int(work // wpp)
        remaining = work - periods * wpp
        if remaining <= 1e-15 and periods > 0:
            periods -= 1
            remaining = wpp
        t = start + periods * self.period
        # Walk phases until the remainder is done.  The remainder spans at
        # most one period plus the phase we started inside, so the walk
        # needs at most len(phases)+2 steps; the epsilon snaps below keep
        # float noise at phase boundaries from stalling it.  All
        # tolerances scale with the running time, because the modulo's
        # absolute error grows with |t|.
        guard = 0
        work_floor = 1e-12 * max(work, 1.0)
        while remaining > work_floor:
            guard += 1
            if guard > 10 * (len(self.phases) + 2):
                raise DistributedError(
                    "finish_time failed to converge"
                )
            eps = 1e-12 * max(self.period, abs(t), 1.0)
            local = (t + self.offset) % self.period
            if self.period - local < eps:
                local = 0.0  # snap a boundary-straddling remainder
            acc = 0.0
            for p in self.phases:
                if local < acc + p.duration:
                    in_phase_left = acc + p.duration - local
                    if in_phase_left < eps:
                        # Step past the boundary, not just up to it, or
                        # float rounding re-lands on the same spot.
                        t += eps
                        break
                    if p.gflops > 0:
                        need = remaining / p.gflops
                        if need <= in_phase_left + eps:
                            return t + need
                        remaining -= p.gflops * in_phase_left
                    t += in_phase_left
                    break
                acc += p.duration
        return t
