"""Per-NUMA-node memory-bandwidth arbitration.

Implements assumptions 4 and 5 of the paper's model (Section III-A):

4. memory bandwidth is shared by all cores in the same NUMA node;
5. the actual bandwidth is split so that each core can get at least its
   equal share of the node total (the *baseline*, ``node_bw / num_cores``),
   and the remainder is split proportionately to the attempted memory
   access above the baseline.

The remainder split is a water-filling problem: a thread can never receive
more than it demands, and bandwidth freed by a thread whose demand is met
flows back to the still-unsatisfied threads.  The paper's worked examples
(Tables I and II) only exercise the case where all unsatisfied threads have
identical unmet demand, where proportional and even splitting coincide;
:class:`RemainderRule` exposes both so the difference can be ablated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = ["RemainderRule", "NodeShare", "share_node_bandwidth"]

#: Bandwidth below this (GB/s) is treated as zero during water-filling.
_EPS = 1e-12


class RemainderRule(enum.Enum):
    """How leftover bandwidth is divided among unsatisfied threads."""

    #: Proportional to each thread's unmet demand (paper assumption 5:
    #: "a code that would want to make twice as many memory operations
    #: above the baseline will end up getting twice as much of the
    #: remaining bandwidth").
    PROPORTIONAL = "proportional"

    #: Equal split among unsatisfied threads (the arithmetic actually
    #: performed in the paper's worked examples: "We split this evenly
    #: among the three memory-bound applications").
    EVEN = "even"


@dataclass(frozen=True)
class NodeShare:
    """Result of arbitrating one node's bandwidth.

    Attributes
    ----------
    allocated:
        GB/s granted to each thread, same order as the input demands.
    baseline:
        The per-core baseline share used (``capacity / num_cores``).
    capacity:
        The bandwidth that was available for local threads.
    """

    allocated: np.ndarray
    baseline: float
    capacity: float

    @property
    def consumed(self) -> float:
        """Total bandwidth handed out."""
        return float(self.allocated.sum())

    @property
    def leftover(self) -> float:
        """Bandwidth that nobody wanted."""
        return self.capacity - self.consumed


def share_node_bandwidth(
    capacity: float,
    num_cores: int,
    demands: np.ndarray | list[float],
    *,
    rule: RemainderRule = RemainderRule.PROPORTIONAL,
) -> NodeShare:
    """Split ``capacity`` GB/s among threads with the given ``demands``.

    Parameters
    ----------
    capacity:
        Bandwidth available to local threads on this node (GB/s).  This is
        the node's full local bandwidth unless remote traffic was served
        first (see :mod:`repro.core.model`).
    num_cores:
        Number of CPU cores in the node.  The baseline is
        ``capacity / num_cores`` regardless of how many threads are
        actually running — an idle core's share joins the remainder pool.
    demands:
        Per-thread attempted bandwidth (GB/s).

    Returns
    -------
    NodeShare
        Per-thread grants.  Invariants: ``0 <= grant <= demand`` for every
        thread, ``sum(grants) <= capacity``, and when total demand meets or
        exceeds capacity the grants exhaust it (up to rounding).
    """
    if capacity < 0:
        raise ModelError(f"capacity must be non-negative, got {capacity}")
    if num_cores <= 0:
        raise ModelError(f"num_cores must be positive, got {num_cores}")
    d = np.asarray(demands, dtype=float)
    if d.ndim != 1:
        raise ModelError(f"demands must be 1-D, got shape {d.shape}")
    if np.any(d < 0):
        raise ModelError("demands must be non-negative")
    if len(d) > num_cores:
        raise ModelError(
            f"{len(d)} threads on a node with {num_cores} cores violates "
            f"the model's no-over-subscription assumption"
        )

    baseline = capacity / num_cores
    allocated = np.minimum(d, baseline)
    remaining = capacity - allocated.sum()

    # Water-fill the remainder.  Each pass hands out bandwidth according to
    # the rule, capped at each thread's unmet demand; threads that become
    # satisfied drop out and their unused share is redistributed in the
    # next pass.  Terminates because every pass either exhausts the
    # remainder or satisfies at least one thread.
    while remaining > _EPS:
        unmet = d - allocated
        unsatisfied = unmet > _EPS
        if not np.any(unsatisfied):
            break
        if rule is RemainderRule.PROPORTIONAL:
            weights = np.where(unsatisfied, unmet, 0.0)
        else:
            weights = unsatisfied.astype(float)
        give = remaining * weights / weights.sum()
        give = np.minimum(give, unmet)
        handed = give.sum()
        if handed <= _EPS:
            break
        allocated += give
        remaining -= handed

    return NodeShare(
        allocated=allocated, baseline=baseline, capacity=capacity
    )
