"""Unit tests for the execution simulator."""

import pytest

from repro.core.spec import AppSpec
from repro.errors import SimulationError
from repro.machine import model_machine, uma_machine
from repro.sim import (
    Binding,
    ExecutionSimulator,
    ThreadState,
    Tracer,
    TraceKind,
    WorkSegment,
)


class CountedWork:
    """Provider handing out ``count`` identical segments."""

    def __init__(self, count, flops=0.01, ai=10.0, home=None):
        self.remaining = count
        self.finished = 0
        self.flops = flops
        self.ai = ai
        self.home = home

    def next_segment(self, thread):
        if self.remaining <= 0:
            return None
        self.remaining -= 1
        return WorkSegment(
            flops=self.flops, arithmetic_intensity=self.ai, data_home=self.home
        )

    def segment_finished(self, thread, segment):
        self.finished += 1


class InfiniteWork(CountedWork):
    def __init__(self, flops=0.01, ai=10.0, home=None):
        super().__init__(10**12, flops=flops, ai=ai, home=home)


class TestSegmentValidation:
    def test_flops_positive(self):
        with pytest.raises(SimulationError):
            WorkSegment(flops=0.0, arithmetic_intensity=1.0)

    def test_ai_positive(self):
        with pytest.raises(SimulationError):
            WorkSegment(flops=1.0, arithmetic_intensity=0.0)

    def test_fractions_sum_to_one(self):
        with pytest.raises(SimulationError):
            WorkSegment(
                flops=1.0,
                arithmetic_intensity=1.0,
                data_fractions={0: 0.5, 1: 0.2},
            )


class TestExecution:
    def test_compute_bound_runs_at_peak(self):
        ex = ExecutionSimulator(uma_machine())
        ex.add_thread("t", Binding.to_node(0), InfiniteWork(ai=10.0))
        ex.run(0.5)
        # one 10 GFLOPS core, compute-bound demand 1 GB/s vs 32 available
        assert ex.achieved_gflops("t", 0.5) == pytest.approx(10.0, rel=0.02)

    def test_memory_bound_contention(self):
        ex = ExecutionSimulator(uma_machine())
        for i in range(8):
            ex.add_thread(
                f"t{i}", Binding.to_node(0), InfiniteWork(ai=0.5),
                app_name="app",
            )
        ex.run(0.5)
        # 8 threads saturate 32 GB/s -> 16 GFLOPS
        assert ex.achieved_gflops("app", 0.5) == pytest.approx(16.0, rel=0.02)

    def test_finite_workload_completes(self):
        ex = ExecutionSimulator(uma_machine())
        work = CountedWork(20)
        ex.add_thread("t", Binding.to_node(0), work)
        end = ex.run_until_idle()
        assert work.finished == 20
        # 20 tasks x 0.01 GFLOP at 10 GFLOPS = 20 ms
        assert end == pytest.approx(0.02, rel=0.1)

    def test_segments_counter(self):
        ex = ExecutionSimulator(uma_machine())
        work = CountedWork(5)
        ex.add_thread("t", Binding.to_node(0), work, app_name="app")
        ex.run_until_idle()
        assert ex.metrics.counter("segments/app").value == 5

    def test_remote_data_capped_by_link(self):
        m = model_machine()  # links 10 GB/s
        ex = ExecutionSimulator(m)
        # Thread on node 1 streaming node 0's memory with high demand.
        ex.add_thread(
            "t", Binding.to_node(1), InfiniteWork(ai=0.5, home=0)
        )
        ex.run(0.5)
        # bandwidth limited to 10 GB/s -> 5 GFLOPS
        assert ex.achieved_gflops("t", 0.5) == pytest.approx(5.0, rel=0.02)


class TestBlocking:
    def test_blocked_thread_makes_no_progress(self):
        ex = ExecutionSimulator(uma_machine())
        t = ex.add_thread("t", Binding.to_node(0), InfiniteWork())
        ex.run(0.05)
        ex.block(t)
        flops_at_block = ex.metrics.integrator("flops/t").total
        ex.run(0.1)
        assert ex.metrics.integrator("flops/t").total == flops_at_block
        ex.unblock(t)
        ex.run(0.1)
        assert ex.metrics.integrator("flops/t").total > flops_at_block

    def test_block_finished_thread_rejected(self):
        ex = ExecutionSimulator(uma_machine())
        t = ex.add_thread("t", Binding.to_node(0), CountedWork(1))
        ex.finish(t)
        with pytest.raises(SimulationError):
            ex.block(t)
        with pytest.raises(SimulationError):
            ex.unblock(t)

    def test_double_block_is_noop(self):
        ex = ExecutionSimulator(uma_machine())
        t = ex.add_thread("t", Binding.to_node(0), CountedWork(1))
        ex.block(t)
        ex.block(t)
        assert t.state is ThreadState.BLOCKED


class TestRebind:
    def test_rebind_changes_execution_node(self):
        m = model_machine()
        ex = ExecutionSimulator(m)
        t = ex.add_thread("t", Binding.to_node(0), InfiniteWork())
        ex.run(0.01)
        assert t.assigned_node == 0
        ex.rebind(t, Binding.to_node(2))
        ex.run(0.01)
        assert t.assigned_node == 2


class TestTracing:
    def test_task_events_recorded(self):
        tracer = Tracer()
        ex = ExecutionSimulator(uma_machine(), tracer=tracer)
        ex.add_thread("t", Binding.to_node(0), CountedWork(3))
        ex.run_until_idle()
        assert tracer.count(TraceKind.TASK_FINISHED) == 3

    def test_block_events_recorded(self):
        tracer = Tracer()
        ex = ExecutionSimulator(uma_machine(), tracer=tracer)
        t = ex.add_thread("t", Binding.to_node(0), CountedWork(1))
        ex.block(t)
        ex.unblock(t)
        assert tracer.count(TraceKind.THREAD_BLOCKED) == 1
        assert tracer.count(TraceKind.THREAD_UNBLOCKED) == 1


class TestRunners:
    def test_run_duration_positive(self):
        ex = ExecutionSimulator(uma_machine())
        with pytest.raises(SimulationError):
            ex.run(0.0)

    def test_slice_positive(self):
        with pytest.raises(SimulationError):
            ExecutionSimulator(uma_machine(), slice_seconds=0.0)

    def test_run_until_condition(self):
        ex = ExecutionSimulator(uma_machine())
        work = CountedWork(50)
        ex.add_thread("t", Binding.to_node(0), work)
        end = ex.run_until_condition(lambda: work.finished >= 10)
        assert work.finished >= 10
        # progress is attributed within the slice after the tick event,
        # so the reported end may lead the clock by up to one slice
        assert end <= ex.sim.now + ex.slice_seconds + 1e-9

    def test_run_until_condition_timeout(self):
        ex = ExecutionSimulator(uma_machine())
        ex.add_thread("t", Binding.to_node(0), InfiniteWork())
        with pytest.raises(SimulationError):
            ex.run_until_condition(lambda: False, max_time=0.05)

    def test_deadlock_detection(self):
        ex = ExecutionSimulator(uma_machine())
        t = ex.add_thread("t", Binding.to_node(0), CountedWork(100))
        ex.block(t)
        with pytest.raises(SimulationError):
            ex.run_until_idle(max_time=1.0)


class TestBandwidthSampling:
    def test_series_recorded(self):
        ex = ExecutionSimulator(uma_machine(), sample_bandwidth=True)
        for i in range(8):
            ex.add_thread(
                f"t{i}", Binding.to_node(0), InfiniteWork(ai=0.5),
                app_name="app",
            )
        ex.run(0.1)
        series = ex.metrics.series("bw/node0")
        assert len(series) > 50
        # 8 memory-bound threads saturate the 32 GB/s node
        assert series.mean() == pytest.approx(32.0, rel=0.05)

    def test_off_by_default(self):
        ex = ExecutionSimulator(uma_machine())
        ex.add_thread("t", Binding.to_node(0), InfiniteWork())
        ex.run(0.02)
        assert len(ex.metrics.series("bw/node0")) == 0


class TestNoise:
    def test_zero_noise_deterministic_exact(self):
        ex = ExecutionSimulator(uma_machine())
        ex.add_thread("t", Binding.to_node(0), InfiniteWork(ai=10.0))
        ex.run(0.2)
        assert ex.achieved_gflops("t", 0.2) == pytest.approx(
            10.0, rel=0.01
        )

    def test_noise_perturbs_but_preserves_mean(self):
        def run(seed):
            ex = ExecutionSimulator(
                uma_machine(), noise=0.05, noise_seed=seed
            )
            ex.add_thread(
                "t", Binding.to_node(0), InfiniteWork(ai=10.0)
            )
            ex.run(0.3)
            return ex.achieved_gflops("t", 0.3)

        values = [run(s) for s in range(5)]
        # different seeds give different results...
        assert len({round(v, 6) for v in values}) > 1
        # ...centred on the deterministic value
        mean = sum(values) / len(values)
        assert mean == pytest.approx(10.0, rel=0.03)

    def test_same_seed_reproducible(self):
        def run():
            ex = ExecutionSimulator(
                uma_machine(), noise=0.05, noise_seed=7
            )
            ex.add_thread("t", Binding.to_node(0), InfiniteWork())
            ex.run(0.1)
            return ex.metrics.integrator("flops/t").total

        assert run() == run()

    def test_noise_validation(self):
        with pytest.raises(SimulationError):
            ExecutionSimulator(uma_machine(), noise=-0.1)
        with pytest.raises(SimulationError):
            ExecutionSimulator(uma_machine(), noise=0.9)
