"""The injection proxy: a faulty wire between agent and runtime.

:class:`InjectionProxy` wraps any
:class:`~repro.agent.protocol.RuntimeEndpoint` and executes a
:class:`~repro.faults.plan.FaultPlan` and/or a
:class:`~repro.faults.chaos.ChaosConfig` against it on the shared
discrete-event clock.  The wrapped endpoint and the agent are both
oblivious: crashes and hangs surface as
:class:`~repro.errors.EndpointUnavailable` (exactly what a lost TCP
connection looks like to a coordinator), corrupt reports surface as
implausible field values, dropped commands surface as... nothing, which
is the point.

Every injection is recorded in :attr:`InjectionProxy.injected` and — when
observability is on — counted on ``faults/injected`` (plus a per-kind
counter ``faults/<kind>``), so experiments can plot recovery behaviour
against the exact fault sequence that caused it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.agent.protocol import RuntimeEndpoint, StatusReport, ThreadCommand
from repro.errors import EndpointUnavailable, FaultError
from repro.faults.chaos import ChaosConfig
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs import OBS
from repro.sim.engine import Simulator

__all__ = ["InjectedFault", "InjectionProxy"]


@dataclass(frozen=True, slots=True)
class InjectedFault:
    """Ledger entry: one fault actually delivered."""

    time: float
    target: str
    kind: FaultKind
    detail: str = ""


class InjectionProxy(RuntimeEndpoint):
    """A :class:`RuntimeEndpoint` that misbehaves on schedule.

    Parameters
    ----------
    endpoint:
        The real endpoint to wrap (any protocol adapter).
    simulator:
        The shared event engine — needed for the clock and for delayed
        command delivery.
    plan:
        Scripted faults for this endpoint (entries targeting other
        names are ignored, so one plan can serve many proxies).
    chaos:
        Ambient probabilistic faults (seeded, reproducible).
    on_crash:
        Optional callback fired once when a ``CRASH`` fault activates —
        scenarios use it to actually halt the runtime's workers, so the
        crash costs machine throughput and not just protocol traffic.
    """

    def __init__(
        self,
        endpoint: RuntimeEndpoint,
        simulator: Simulator,
        *,
        plan: FaultPlan | None = None,
        chaos: ChaosConfig | None = None,
        on_crash: Callable[[], None] | None = None,
    ) -> None:
        if isinstance(endpoint, InjectionProxy):
            raise FaultError("refusing to stack injection proxies")
        self.endpoint = endpoint
        self.name = endpoint.name
        self.simulator = simulator
        self.plan = plan or FaultPlan()
        self.chaos = chaos
        self.on_crash = on_crash
        self._specs = self.plan.for_target(self.name)
        self._rng = chaos.rng_for(self.name) if chaos is not None else None
        self._consumed: dict[int, int] = {}  # spec index -> uses burned
        self._crashed = False
        self._last_report: StatusReport | None = None
        self.injected: list[InjectedFault] = []

    # ------------------------------------------------------------------
    @property
    def runtime(self):
        """The wrapped endpoint's runtime, if any (span annotations)."""
        return getattr(self.endpoint, "runtime", None)

    @property
    def crashed(self) -> bool:
        """Whether a CRASH fault has activated."""
        return self._crashed

    def _record(self, kind: FaultKind, now: float, detail: str = "") -> None:
        self.injected.append(
            InjectedFault(time=now, target=self.name, kind=kind, detail=detail)
        )
        if OBS.enabled:
            OBS.metrics.counter("faults/injected").add()
            OBS.metrics.counter(f"faults/{kind.value}").add()

    def _take(self, index: int, spec: FaultSpec) -> bool:
        """Consume one occurrence of a counted fault; False when spent."""
        used = self._consumed.get(index, 0)
        if used >= spec.count:
            return False
        self._consumed[index] = used + 1
        return True

    def _scripted(self, kind: FaultKind, now: float):
        """The first active scripted fault of ``kind``, if any."""
        for index, spec in enumerate(self._specs):
            if spec.kind is kind and spec.active(now):
                yield index, spec

    def _check_liveness(self, now: float) -> None:
        """Raise if the endpoint is (or just became) crashed or hung."""
        for _, spec in self._scripted(FaultKind.CRASH, now):
            if not self._crashed:
                self._crashed = True
                self._record(FaultKind.CRASH, now)
                if self.on_crash is not None:
                    self.on_crash()
        if self._crashed:
            raise EndpointUnavailable(
                f"endpoint '{self.name}' crashed (injected)"
            )
        for _, spec in self._scripted(FaultKind.HANG, now):
            self._record(
                FaultKind.HANG, now, detail=f"until {spec.at + spec.duration}"
            )
            raise EndpointUnavailable(
                f"endpoint '{self.name}' hung (injected, until "
                f"{spec.at + spec.duration:g}s)"
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _corrupt(report: StatusReport) -> StatusReport:
        """Mangle a report into implausibility (negative counters, a
        truncated per-node vector) so a validating consumer rejects it."""
        return dataclasses.replace(
            report,
            tasks_executed=-1,
            active_per_node=(),
            cpu_load=-1.0,
        )

    def report(self, time: float) -> StatusReport:
        """Report through the wrapped endpoint, faults injected."""
        self._check_liveness(time)

        # Scripted report faults first (they are the experiment).
        for _, spec in self._scripted(FaultKind.STALE_REPORT, time):
            if self._last_report is not None:
                self._record(
                    FaultKind.STALE_REPORT,
                    time,
                    detail=f"replayed t={self._last_report.time:g}",
                )
                return self._last_report
        for index, spec in enumerate(self._specs):
            if (
                spec.kind is FaultKind.CORRUPT_REPORT
                and spec.active(time)
                and self._take(index, spec)
            ):
                self._record(FaultKind.CORRUPT_REPORT, time)
                return self._corrupt(self.endpoint.report(time))

        # Ambient chaos.
        if self._rng is not None and self.chaos.any_report_fault:
            roll = self._rng.random()
            if roll < self.chaos.report_failure:
                self._record(FaultKind.HANG, time, detail="chaos")
                raise EndpointUnavailable(
                    f"endpoint '{self.name}' dropped a report (chaos)"
                )
            roll = self._rng.random()
            if roll < self.chaos.report_stale and self._last_report is not None:
                self._record(FaultKind.STALE_REPORT, time, detail="chaos")
                return self._last_report
            roll = self._rng.random()
            if roll < self.chaos.report_corrupt:
                self._record(FaultKind.CORRUPT_REPORT, time, detail="chaos")
                return self._corrupt(self.endpoint.report(time))

        report = self.endpoint.report(time)
        for _, spec in self._scripted(FaultKind.SLOWDOWN, time):
            self._record(
                FaultKind.SLOWDOWN, time, detail=f"factor {spec.factor:g}"
            )
            report = dataclasses.replace(
                report, cpu_load=report.cpu_load * spec.factor
            )
        self._last_report = report
        return report

    # ------------------------------------------------------------------
    def apply(self, command: ThreadCommand) -> None:
        """Apply through the wrapped endpoint, faults injected."""
        now = self.simulator.now
        self._check_liveness(now)

        for index, spec in enumerate(self._specs):
            if (
                spec.kind is FaultKind.DROP_COMMAND
                and spec.active(now)
                and self._take(index, spec)
            ):
                self._record(
                    FaultKind.DROP_COMMAND, now, detail=command.kind.value
                )
                return
        for _, spec in self._scripted(FaultKind.DELAY_COMMAND, now):
            self._record(
                FaultKind.DELAY_COMMAND,
                now,
                detail=f"{command.kind.value} +{spec.delay:g}s",
            )
            self.simulator.schedule(
                spec.delay, lambda: self._deliver(command), priority=7
            )
            return

        if self._rng is not None and self.chaos.any_command_fault:
            roll = self._rng.random()
            if roll < self.chaos.command_drop:
                self._record(
                    FaultKind.DROP_COMMAND, now, detail=command.kind.value
                )
                return
            roll = self._rng.random()
            if roll < self.chaos.command_delay:
                self._record(
                    FaultKind.DELAY_COMMAND,
                    now,
                    detail=f"{command.kind.value} +{self.chaos.delay:g}s",
                )
                self.simulator.schedule(
                    self.chaos.delay,
                    lambda: self._deliver(command),
                    priority=7,
                )
                return

        self.endpoint.apply(command)

    def _deliver(self, command: ThreadCommand) -> None:
        """Late delivery of a delayed command (unless crashed meanwhile)."""
        if self._crashed:
            return
        self.endpoint.apply(command)
