"""Project-specific static analysis: AST lint rules and spec invariants.

The codebase passes physical quantities (GFLOPS, GB/s, arithmetic
intensity, thread counts) as bare floats between the analytic model,
the simulator and the agent; a silently swapped unit or an unvalidated
preset corrupts every downstream number.  This package is the
correctness tooling that catches those mistakes before they run:

* :mod:`repro.lint.engine` — the AST lint engine: rule registry,
  per-file dispatch, :class:`Violation` records, ``# repro:
  noqa[RULE]`` suppression (inline and module-level), text and JSON
  reporters;
* :mod:`repro.lint.rules` — the standard rule pack (lock discipline,
  span lifetimes, mutable defaults, swallowed exceptions, wall-clock
  durations, float equality, cross-unit arithmetic, API-doc drift) and
  the whole-program rules (blocking calls in async paths, locks across
  awaits, cross-context races, replay determinism, metric-namespace
  drift);
* :mod:`repro.lint.project` — the whole-program layer those rules run
  on: per-module summaries, the project call graph, and the
  content-hash cache that makes warm runs incremental;
* :mod:`repro.lint.invariants` — the semantic checker that loads every
  machine preset and verifies the model's conservation laws on example
  workloads (INV001-INV004);
* :mod:`repro.lint.sarif` / :mod:`repro.lint.baseline` — the SARIF
  2.1.0 reporter and the committed findings-baseline ratchet;
* :mod:`repro.lint.cli` — the ``python -m repro check`` subcommand.

Programmatic use::

    from repro.lint import LintEngine

    violations = LintEngine().check_paths(["src"])
    for v in violations:
        print(v.format())

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and how to add
a rule.
"""

from __future__ import annotations

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.engine import (
    FileContext,
    LintEngine,
    ProjectRule,
    Rule,
    Severity,
    Violation,
    all_rules,
    format_text,
    get_rule,
    register,
    violations_from_json,
    violations_to_json,
)
from repro.lint.invariants import (
    INVARIANT_IDS,
    check_all_presets,
    check_preset,
)
from repro.lint.sarif import violations_to_sarif

__all__ = [
    "Severity",
    "Violation",
    "FileContext",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "LintEngine",
    "format_text",
    "violations_to_json",
    "violations_from_json",
    "violations_to_sarif",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "INVARIANT_IDS",
    "check_preset",
    "check_all_presets",
]
