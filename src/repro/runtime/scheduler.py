"""Task schedulers: pick which ready task a worker runs next.

The paper anticipates that "different kinds of workloads might benefit
from using a scheduler tailored for the specific kind of problems", so the
runtime takes the scheduler as a strategy object.  Three are provided:

* :class:`FifoScheduler` — one global queue; simplest and fair.
* :class:`LocalityScheduler` — per-NUMA-node queues keyed on the task's
  affinity node; a worker drains its own node first and only then (if
  allowed) steals elsewhere.  This is what makes an application
  "NUMA-perfect" in the simulator: tasks run where their data lives.
* :class:`WorkStealingScheduler` — per-worker deques with random-victim
  stealing (the classic TBB/Cilk discipline), deterministic under a seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SchedulerError
from repro.runtime.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.worker import Worker

__all__ = [
    "TaskScheduler",
    "FifoScheduler",
    "LocalityScheduler",
    "WorkStealingScheduler",
]


class TaskScheduler(ABC):
    """Interface between the runtime and its ready-task pool."""

    @abstractmethod
    def push(self, task: Task) -> None:
        """Add a ready task."""

    @abstractmethod
    def pop(self, worker: "Worker") -> Task | None:
        """Return the next task for ``worker`` (None if nothing suits)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of queued tasks."""

    def _check_ready(self, task: Task) -> None:
        if task.state is not TaskState.READY:
            raise SchedulerError(
                f"cannot schedule task '{task.name}' in state "
                f"{task.state.value}"
            )


class FifoScheduler(TaskScheduler):
    """Single global FIFO queue.

    Tied tasks (``task.tied_to``) are skipped for other workers and left
    in place for their owner.
    """

    def __init__(self) -> None:
        self._queue: deque[Task] = deque()

    def push(self, task: Task) -> None:
        """Enqueue a ready task at the tail of the global queue."""
        self._check_ready(task)
        self._queue.append(task)

    def pop(self, worker: "Worker") -> Task | None:
        """Dequeue the oldest task runnable by ``worker``."""
        for _ in range(len(self._queue)):
            task = self._queue.popleft()
            if task.tied_to is not None and task.tied_to != worker.name:
                self._queue.append(task)
                continue
            return task
        return None

    def __len__(self) -> int:
        return len(self._queue)


class LocalityScheduler(TaskScheduler):
    """Per-NUMA-node queues with optional cross-node stealing.

    A task lands in the queue of its ``affinity_node`` (or a shared
    overflow queue when it has none).  Workers pop their own node's queue,
    then the overflow, then — only if ``allow_steal`` — the fullest other
    node's queue.  With stealing disabled, work placed on a node whose
    workers are all blocked simply waits, which is exactly the hazard the
    paper warns option-1 thread control creates for NUMA-aware codes.
    """

    def __init__(self, num_nodes: int, *, allow_steal: bool = True) -> None:
        if num_nodes <= 0:
            raise SchedulerError(f"num_nodes must be positive: {num_nodes}")
        self._queues: list[deque[Task]] = [
            deque() for _ in range(num_nodes)
        ]
        self._overflow: deque[Task] = deque()
        self.allow_steal = allow_steal

    def push(self, task: Task) -> None:
        """Enqueue a ready task on its affinity node's queue."""
        self._check_ready(task)
        node = task.affinity_node
        if node is None:
            self._overflow.append(task)
        elif 0 <= node < len(self._queues):
            self._queues[node].append(task)
        else:
            raise SchedulerError(
                f"task '{task.name}' affinity node {node} out of range"
            )

    def pop(self, worker: "Worker") -> Task | None:
        """Dequeue from the worker's node, then steal cross-node."""
        sources: list[deque[Task]] = []
        if worker.node is not None:
            sources.append(self._queues[worker.node])
        sources.append(self._overflow)
        if self.allow_steal or worker.node is None:
            others = sorted(
                (
                    q
                    for i, q in enumerate(self._queues)
                    if i != worker.node
                ),
                key=len,
                reverse=True,
            )
            sources.extend(others)
        for q in sources:
            for _ in range(len(q)):
                task = q.popleft()
                if task.tied_to is not None and task.tied_to != worker.name:
                    q.append(task)
                    continue
                return task
        return None

    def __len__(self) -> int:
        return len(self._overflow) + sum(len(q) for q in self._queues)

    def queued_on(self, node: int) -> int:
        """Tasks currently queued for ``node``."""
        return len(self._queues[node])


class WorkStealingScheduler(TaskScheduler):
    """Per-worker deques, LIFO locally, random-victim FIFO steals."""

    def __init__(self, *, seed: int = 0) -> None:
        self._deques: dict[str, deque[Task]] = {}
        self._shared: deque[Task] = deque()
        self._rng = np.random.default_rng(seed)

    def register_worker(self, name: str) -> None:
        """Create a deque for a worker (runtimes call this at spawn)."""
        self._deques.setdefault(name, deque())

    def push(self, task: Task) -> None:
        """Push a ready task onto the owning worker's deque."""
        self._check_ready(task)
        # Tasks pushed from a worker's control path go to its own deque;
        # external pushes (main thread, agent) go to the shared queue.
        owner = task.worker_name
        if owner is not None and owner in self._deques:
            self._deques[owner].append(task)
        else:
            self._shared.append(task)

    def pop(self, worker: "Worker") -> Task | None:
        """Pop LIFO locally; steal FIFO from a random victim."""
        self._deques.setdefault(worker.name, deque())
        own = self._deques[worker.name]
        # Local LIFO for cache warmth.
        for _ in range(len(own)):
            task = own.pop()
            if task.tied_to is not None and task.tied_to != worker.name:
                own.appendleft(task)
                continue
            return task
        # Shared queue next.
        for _ in range(len(self._shared)):
            task = self._shared.popleft()
            if task.tied_to is not None and task.tied_to != worker.name:
                self._shared.append(task)
                continue
            return task
        # Steal: random victims, oldest task first.
        victims = [
            n for n, q in self._deques.items() if n != worker.name and q
        ]
        if not victims:
            return None
        order = self._rng.permutation(len(victims))
        for i in order:
            q = self._deques[victims[i]]
            for _ in range(len(q)):
                task = q.popleft()
                if task.tied_to is not None and task.tied_to != worker.name:
                    q.append(task)
                    continue
                return task
        return None

    def __len__(self) -> int:
        return len(self._shared) + sum(len(q) for q in self._deques.values())
