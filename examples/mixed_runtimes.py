#!/usr/bin/env python3
"""The paper's future work, running: OCR-Vx + TBB + OpenMP on one node.

Three applications built on three *different* runtime systems share the
model machine, coordinated by one agent:

* an OCR-Vx application (memory-bound task stream),
* a TBB application (compute-bound, arena-per-node as Section II
  prescribes for option-3-like control),
* an OpenMP application (static team on node 3, controllable only by
  total thread count, and holding tied tasks the runtime refuses to
  block — the Section IV caveat, visible in the agent's reports).

Run:  python examples/mixed_runtimes.py
"""

from repro.agent import (
    Agent,
    FairShareStrategy,
    OcrVxEndpoint,
    OmpEndpoint,
    TbbEndpoint,
)
from repro.analysis import render_table
from repro.apps import SyntheticApp
from repro.core import AppSpec
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime, OpenMpRuntime, TbbRuntime
from repro.runtime.task import Task
from repro.sim import ExecutionSimulator


def main() -> None:
    machine = model_machine()
    ex = ExecutionSimulator(machine)

    # OCR-Vx: memory-bound stream.
    ocr = OCRVxRuntime("ocr-app", ex)
    ocr.start()
    SyntheticApp(
        ocr, AppSpec.memory_bound("ocr-app", 0.5), task_flops=0.02
    ).submit_stream(10**9)

    # TBB: compute-bound work fed through node arenas.
    tbb = TbbRuntime("tbb-app", ex, num_threads=32)
    tbb_ep = TbbEndpoint(tbb)
    for i in range(2000):
        tbb_ep.arena_for(i % 4).enqueue(
            Task(f"tbb{i}", flops=0.02, arithmetic_intensity=10.0)
        )

    # OpenMP: a static team on node 3 with some tied tasks.
    omp = OpenMpRuntime("omp-app", ex, num_threads=8, node=3)
    omp_ep = OmpEndpoint(omp)
    omp.parallel_for(
        "loop", iterations=400, flops_per_iteration=0.004,
        arithmetic_intensity=4.0,
    )
    for i in range(4):
        omp.submit_tied_task(f"tied{i}", 0.05, 4.0, thread_index=i)

    agent = Agent(ex, FairShareStrategy(), period=0.01)
    agent.register(OcrVxEndpoint(ocr))
    agent.register(tbb_ep)
    agent.register(omp_ep)
    agent.start()

    ex.run(0.3)

    rows = []
    for name in ("ocr-app", "tbb-app", "omp-app"):
        rows.append([name, ex.achieved_gflops(name, 0.3)])
    print(
        render_table(
            ["application (runtime system)", "GFLOPS"],
            rows,
            title="Three runtime systems under one agent "
            "(fair share):",
        )
    )
    last = agent.decisions[-1].reports
    print(
        f"\nOpenMP endpoint declined to block "
        f"{last['omp-app'].progress['declined']:.0f} thread-block "
        f"requests (tied tasks, Section IV)."
    )
    print(
        f"TBB arena occupancy: "
        f"{dict(tbb.arena_occupancy())} — RML honouring the agent's "
        f"per-node limits."
    )
    print(f"agent rounds: {agent.rounds}")


if __name__ == "__main__":
    main()
