"""The roofline performance model [12].

The paper builds its NUMA model on the roofline: given a kernel's
arithmetic intensity ``AI`` (FLOPs per byte) and a platform's peak compute
``P`` (GFLOPS) and peak memory bandwidth ``B`` (GB/s), attainable
performance is ``min(P, B * AI)``.  The *ridge point* ``P / B`` separates
memory-bound kernels (AI below) from compute-bound ones (AI above).

This module provides the scalar roofline plus helpers used by calibration
and by the synthetic-application generators.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = ["Roofline", "attainable_gflops"]


def attainable_gflops(
    arithmetic_intensity: float, peak_gflops: float, peak_bandwidth: float
) -> float:
    """Roofline-attainable GFLOPS: ``min(P, B * AI)``."""
    if arithmetic_intensity <= 0:
        raise ModelError(
            f"arithmetic_intensity must be positive, got {arithmetic_intensity}"
        )
    if peak_gflops <= 0 or peak_bandwidth <= 0:
        raise ModelError("peaks must be positive")
    return min(peak_gflops, peak_bandwidth * arithmetic_intensity)


@dataclass(frozen=True, slots=True)
class Roofline:
    """A roofline for one execution context (a core, a node, a machine).

    Attributes
    ----------
    peak_gflops:
        Compute ceiling (GFLOPS).
    peak_bandwidth:
        Memory ceiling (GB/s).
    """

    peak_gflops: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0:
            raise ModelError(
                f"peak_gflops must be positive, got {self.peak_gflops}"
            )
        if self.peak_bandwidth <= 0:
            raise ModelError(
                f"peak_bandwidth must be positive, got {self.peak_bandwidth}"
            )

    @property
    def ridge_ai(self) -> float:
        """Arithmetic intensity at which the two ceilings intersect."""
        return self.peak_gflops / self.peak_bandwidth

    def attainable(self, arithmetic_intensity: float) -> float:
        """Attainable GFLOPS for a kernel of the given intensity."""
        return attainable_gflops(
            arithmetic_intensity, self.peak_gflops, self.peak_bandwidth
        )

    def is_memory_bound(self, arithmetic_intensity: float) -> bool:
        """True when the kernel sits left of the ridge point."""
        if arithmetic_intensity <= 0:
            raise ModelError(
                f"arithmetic_intensity must be positive, got "
                f"{arithmetic_intensity}"
            )
        return arithmetic_intensity < self.ridge_ai

    def demand_bandwidth(self, arithmetic_intensity: float) -> float:
        """Bandwidth (GB/s) the kernel attempts to draw at peak compute.

        This is the paper's assumption 3: every thread tries to stream at
        ``peak_gflops / AI`` regardless of whether the memory system can
        sustain it.
        """
        if arithmetic_intensity <= 0:
            raise ModelError(
                f"arithmetic_intensity must be positive, got "
                f"{arithmetic_intensity}"
            )
        return self.peak_gflops / arithmetic_intensity

    def efficiency(self, arithmetic_intensity: float) -> float:
        """Attainable GFLOPS as a fraction of peak compute, in (0, 1]."""
        return self.attainable(arithmetic_intensity) / self.peak_gflops

    def sweep(
        self, intensities: np.ndarray | list[float]
    ) -> np.ndarray:
        """Vectorised attainable GFLOPS over many intensities."""
        ai = np.asarray(intensities, dtype=float)
        if np.any(ai <= 0):
            raise ModelError("all intensities must be positive")
        return np.minimum(self.peak_gflops, self.peak_bandwidth * ai)

    def scaled(self, threads: int, *, bandwidth_shared: bool = True) -> "Roofline":
        """Roofline of ``threads`` cooperating threads.

        Compute scales linearly with the thread count; bandwidth stays at
        the node ceiling when ``bandwidth_shared`` (the NUMA-node case) or
        scales linearly too (the multi-node NUMA-perfect case).
        """
        if threads <= 0:
            raise ModelError(f"threads must be positive, got {threads}")
        return Roofline(
            peak_gflops=self.peak_gflops * threads,
            peak_bandwidth=(
                self.peak_bandwidth
                if bandwidth_shared
                else self.peak_bandwidth * threads
            ),
        )
