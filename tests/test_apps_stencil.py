"""Tests for the Jacobi-style stencil application."""

import pytest

from repro.apps import StencilApp
from repro.errors import ConfigurationError
from repro.machine import knl_flat, knl_snc4, model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


def run_stencil(machine, *, numa_aware, blocks=16, iterations=8):
    ex = ExecutionSimulator(machine)
    rt = OCRVxRuntime("st", ex)
    rt.start()
    app = StencilApp(
        rt,
        blocks=blocks,
        iterations=iterations,
        numa_aware=numa_aware,
        flops_per_block=0.02,
        arithmetic_intensity=0.25,
    )
    app.build()
    end = ex.run_until_condition(lambda: app.finished, max_time=600)
    return end, app


class TestConstruction:
    def test_numa_aware_blocks_spread(self):
        ex = ExecutionSimulator(model_machine())
        rt = OCRVxRuntime("st", ex)
        rt.start([1, 1, 1, 1])
        app = StencilApp(rt, blocks=8, iterations=1, numa_aware=True)
        homes = [db.home_node for db in app.datablocks]
        assert homes == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_oblivious_blocks_on_node_zero(self):
        ex = ExecutionSimulator(model_machine())
        rt = OCRVxRuntime("st", ex)
        rt.start([1, 1, 1, 1])
        app = StencilApp(rt, blocks=8, iterations=1, numa_aware=False)
        assert all(db.home_node == 0 for db in app.datablocks)

    def test_validation(self):
        ex = ExecutionSimulator(model_machine())
        rt = OCRVxRuntime("st", ex)
        rt.start([1, 1, 1, 1])
        with pytest.raises(ConfigurationError):
            StencilApp(rt, blocks=0, iterations=1)
        with pytest.raises(ConfigurationError):
            StencilApp(rt, blocks=1, iterations=0)
        app = StencilApp(rt, blocks=2, iterations=1)
        app.build()
        with pytest.raises(ConfigurationError):
            app.build()


class TestExecution:
    def test_completes_all_sweeps(self):
        end, app = run_stencil(model_machine(), numa_aware=True)
        assert app.finished
        assert app.iterations_done == 8
        assert app.done.fired

    def test_sweep_ordering_respected(self):
        # Total tasks executed equals blocks * iterations; progress
        # counter matches.
        end, app = run_stencil(
            model_machine(), numa_aware=True, blocks=8, iterations=4
        )
        assert app.runtime.stats.tasks_executed == 32
        assert app.runtime.stats.progress["sweeps"] == 4

    def test_numa_aware_beats_oblivious_on_numa_machine(self):
        aware, _ = run_stencil(knl_snc4(), numa_aware=True)
        oblivious, _ = run_stencil(knl_snc4(), numa_aware=False)
        # [11]: "very significant speed improvement"
        assert oblivious > aware * 1.5

    def test_no_gap_on_flat_machine(self):
        # [11]: on KNL with NUMA off, the oblivious code is fine.
        aware, _ = run_stencil(knl_flat(), numa_aware=True)
        oblivious, _ = run_stencil(knl_flat(), numa_aware=False)
        assert oblivious == pytest.approx(aware, rel=0.02)

    def test_total_flops(self):
        ex = ExecutionSimulator(model_machine())
        rt = OCRVxRuntime("st", ex)
        rt.start([1, 1, 1, 1])
        app = StencilApp(
            rt, blocks=4, iterations=3, flops_per_block=0.5
        )
        assert app.total_flops() == pytest.approx(6.0)
