"""ASCII roofline charts.

Renders the classic log-log roofline of a NUMA node with application
operating points, so examples and reports can show *why* an application
is memory or compute bound at a glance — the visual companion of
Section III-A's model.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.roofline import Roofline
from repro.core.spec import AppSpec
from repro.errors import ConfigurationError
from repro.machine.topology import MachineTopology

__all__ = ["render_roofline"]


def render_roofline(
    machine: MachineTopology,
    apps: Sequence[AppSpec] = (),
    *,
    node: int = 0,
    width: int = 64,
    height: int = 16,
    ai_range: tuple[float, float] | None = None,
) -> str:
    """Render node ``node``'s roofline with the apps' operating points.

    The x axis is arithmetic intensity (log scale), the y axis attainable
    GFLOPS (log scale).  The roof is drawn with ``/`` (bandwidth slope)
    and ``-`` (compute ceiling); each application appears as a letter at
    its (AI, attainable) point, with a legend underneath.
    """
    if width < 16 or height < 6:
        raise ConfigurationError("chart needs width >= 16, height >= 6")
    n = machine.node(node)
    roof = Roofline(
        peak_gflops=n.peak_gflops, peak_bandwidth=n.local_bandwidth
    )
    ridge = roof.ridge_ai
    if ai_range is None:
        ai_lo = ridge / 64
        ai_hi = ridge * 64
        for app in apps:
            ai_lo = min(ai_lo, app.arithmetic_intensity / 2)
            ai_hi = max(ai_hi, app.arithmetic_intensity * 2)
    else:
        ai_lo, ai_hi = ai_range
        if ai_lo <= 0 or ai_hi <= ai_lo:
            raise ConfigurationError("invalid ai_range")

    y_hi = roof.peak_gflops * 2
    y_lo = roof.attainable(ai_lo) / 4

    def x_of(ai: float) -> int:
        f = (math.log10(ai) - math.log10(ai_lo)) / (
            math.log10(ai_hi) - math.log10(ai_lo)
        )
        return min(width - 1, max(0, int(f * (width - 1))))

    def y_of(gflops: float) -> int:
        f = (math.log10(gflops) - math.log10(y_lo)) / (
            math.log10(y_hi) - math.log10(y_lo)
        )
        return min(height - 1, max(0, int(f * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    # Roof line.
    for cx in range(width):
        ai = 10 ** (
            math.log10(ai_lo)
            + cx / (width - 1) * (math.log10(ai_hi) - math.log10(ai_lo))
        )
        attainable = roof.attainable(ai)
        cy = y_of(attainable)
        grid[cy][cx] = "-" if ai >= ridge else "/"
    # Ridge marker.
    grid[y_of(roof.peak_gflops)][x_of(ridge)] = "+"
    # Application points.
    legend = []
    for i, app in enumerate(apps):
        mark = chr(ord("A") + (i % 26))
        ai = app.arithmetic_intensity
        point = roof.attainable(ai)
        grid[y_of(point)][x_of(ai)] = mark
        bound = "memory" if roof.is_memory_bound(ai) else "compute"
        legend.append(
            f"  {mark} = {app.name} (AI {ai:g}, attainable "
            f"{point:.2f} GFLOPS, {bound} bound)"
        )

    lines = [
        f"roofline of '{machine.name}' node {node}: peak "
        f"{roof.peak_gflops:g} GFLOPS, {roof.peak_bandwidth:g} GB/s, "
        f"ridge AI {ridge:.3g}"
    ]
    for row in reversed(grid):
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" AI {ai_lo:.3g} {' ' * (width - 16)}AI {ai_hi:.3g}"
    )
    lines.extend(legend)
    return "\n".join(lines)
