"""The clock-agnostic service core on the discrete-event simulator:
registry lifecycle, debounced re-optimization, staleness quarantine,
quorum degradation, and at-least-once allocation delivery."""

import pytest

from repro.core import AppSpec, NumaPerformanceModel
from repro.core.optimizer import ExhaustiveSearch
from repro.errors import ServiceError
from repro.machine import model_machine
from repro.agent.resilience import ResiliencePolicy
from repro.serve import (
    Ack,
    AllocationService,
    AllocationUpdate,
    Deregister,
    ErrorReply,
    ProgressReport,
    QueryAllocation,
    Register,
    ServiceClient,
    ServiceConfig,
    SessionState,
    WorkloadRegistry,
)
from repro.sim.engine import Simulator


def make_service(**config_kwargs):
    sim = Simulator()
    config_kwargs.setdefault("machine", model_machine())
    service = AllocationService(
        ServiceConfig(**config_kwargs),
        clock=lambda: sim.now,
        call_later=lambda delay, fn: sim.schedule(delay, fn),
    )
    return sim, service


MEM = AppSpec.memory_bound("mem", 0.5)
BAD = AppSpec.numa_bad("bad", 1.0, home_node=0)


class TestRegistry:
    def test_admission_order_is_stable(self):
        reg = WorkloadRegistry()
        reg.admit(MEM, now=0.0)
        reg.admit(BAD, now=0.1)
        assert [s.name for s in reg.live_sessions()] == ["mem", "bad"]
        assert tuple(s.name for s in reg.active_sessions()) == (
            "mem",
            "bad",
        )

    def test_duplicate_live_name_rejected(self):
        reg = WorkloadRegistry()
        reg.admit(MEM, now=0.0)
        with pytest.raises(ServiceError):
            reg.admit(MEM, now=0.1)

    def test_closed_name_is_reusable_and_joins_at_the_end(self):
        reg = WorkloadRegistry()
        reg.admit(MEM, now=0.0)
        reg.admit(BAD, now=0.0)
        reg.remove("mem")
        reg.admit(MEM, now=0.2)
        assert [s.name for s in reg.live_sessions()] == ["bad", "mem"]

    def test_epoch_bumps_on_every_membership_change(self):
        reg = WorkloadRegistry()
        e0 = reg.epoch
        reg.admit(MEM, now=0.0)
        e1 = reg.epoch
        reg.quarantine("mem")
        e2 = reg.epoch
        reg.reactivate("mem")
        e3 = reg.epoch
        reg.remove("mem")
        e4 = reg.epoch
        assert e0 < e1 < e2 < e3 < e4

    def test_reactivating_an_active_session_is_a_noop_epoch(self):
        reg = WorkloadRegistry()
        reg.admit(MEM, now=0.0)
        before = reg.epoch
        reg.reactivate("mem")
        assert reg.epoch == before

    def test_backwards_report_time_rejected(self):
        reg = WorkloadRegistry()
        reg.admit(MEM, now=0.0)
        reg.record_report(
            "mem", time=0.5, progress={}, cpu_load=0.0, acked_epoch=None
        )
        with pytest.raises(ServiceError):
            reg.record_report(
                "mem", time=0.4, progress={}, cpu_load=0.0, acked_epoch=None
            )

    def test_quarantined_excluded_from_active_specs(self):
        reg = WorkloadRegistry()
        reg.admit(MEM, now=0.0)
        reg.admit(BAD, now=0.0)
        reg.quarantine("bad")
        assert [s.name for s in reg.active_specs()] == ["mem"]
        assert reg.get("bad").state is SessionState.QUARANTINED

    def test_max_sessions_enforced(self):
        reg = WorkloadRegistry(max_sessions=1)
        reg.admit(MEM, now=0.0)
        with pytest.raises(ServiceError):
            reg.admit(BAD, now=0.0)


class TestChurnAndDebounce:
    def test_burst_of_joins_costs_one_reoptimization(self):
        sim, service = make_service(debounce=0.02)
        a = ServiceClient(service, "mem")
        b = ServiceClient(service, "bad")
        a.register(MEM)
        sim.run_until(0.005)  # still inside the debounce window
        b.register(BAD)
        sim.run_until(0.1)
        assert service.reoptimizations == 1

    def test_spaced_churn_reoptimizes_each_time(self):
        sim, service = make_service(debounce=0.02)
        a = ServiceClient(service, "mem")
        b = ServiceClient(service, "bad")
        a.register(MEM)
        sim.run_until(0.05)
        b.register(BAD)
        sim.run_until(0.1)
        b.deregister()
        sim.run_until(0.15)
        assert service.reoptimizations == 3

    def test_result_matches_offline_search_exactly(self):
        sim, service = make_service()
        a = ServiceClient(service, "mem")
        b = ServiceClient(service, "bad")
        a.register(MEM)
        b.register(BAD)
        sim.run_until(0.1)
        offline = ExhaustiveSearch(NumaPerformanceModel()).search(
            model_machine(), [MEM, BAD]
        )
        assert service.current_score() == offline.score
        for name in ("mem", "bad"):
            assert service.current_allocation()[name] == tuple(
                int(t) for t in offline.allocation.threads_of(name)
            )

    def test_updates_pushed_once_per_epoch(self):
        sim, service = make_service()
        a = ServiceClient(service, "mem")
        a.register(MEM)
        sim.run_until(0.2)  # several idle reoptimization opportunities
        updates = [
            m for m in a.inbox if isinstance(m, AllocationUpdate)
        ]
        assert len(updates) == 1  # one epoch, one push

    def test_handle_returns_error_reply_not_raise(self):
        sim, service = make_service()
        reply = service.handle(
            ProgressReport(name="ghost", time=0.0, progress={})
        )
        assert isinstance(reply, ErrorReply)
        assert "ghost" in reply.error

    def test_query_allocation_roundtrip(self):
        sim, service = make_service()
        a = ServiceClient(service, "mem")
        a.register(MEM)
        sim.run_until(0.1)
        update = a.query_allocation()
        assert isinstance(update, AllocationUpdate)
        assert update.per_node == (8, 8, 8, 8)


class TestStalenessAndQuorum:
    def _resilience(self):
        return ResiliencePolicy(
            freshness_window=1.5, quarantine_after=3, quorum=0.6
        )

    def test_silent_session_quarantined_by_watchdog(self):
        sim, service = make_service(
            report_interval=0.02, resilience=self._resilience()
        )
        a = ServiceClient(service, "mem")
        b = ServiceClient(service, "bad")
        a.register(MEM)
        b.register(BAD)
        service.start_watchdog()

        def beat():
            a.report(sim.now, cpu_load=0.5, acked_epoch=a.last_epoch())
            sim.schedule(0.02, beat)

        sim.schedule(0.02, beat)  # only "mem" heartbeats
        sim.run_until(0.5)
        assert service.quarantines >= 1
        assert service.registry.get("bad").state is (
            SessionState.QUARANTINED
        )
        # Below quorum (1 of 2 active < 0.6): degraded equal share.
        assert service.degraded_reoptimizations >= 1

    def test_fresh_report_reactivates(self):
        sim, service = make_service(
            report_interval=0.02, resilience=self._resilience()
        )
        a = ServiceClient(service, "mem")
        b = ServiceClient(service, "bad")
        a.register(MEM)
        b.register(BAD)
        service.start_watchdog()

        def beat_a():
            a.report(sim.now, cpu_load=0.5)
            sim.schedule(0.02, beat_a)

        sim.schedule(0.02, beat_a)
        # "bad" goes silent until t=0.3, then resumes.
        def beat_b():
            b.report(sim.now, cpu_load=0.5)
            sim.schedule(0.02, beat_b)

        sim.schedule_at(0.3, beat_b)
        sim.run_until(0.5)
        assert service.quarantines >= 1
        assert service.registry.get("bad").state is SessionState.ACTIVE

    def test_degraded_equal_share_covers_all_active(self):
        sim, service = make_service(
            resilience=ResiliencePolicy(quorum=1.0, freshness_window=1.5),
            report_interval=0.02,
        )
        a = ServiceClient(service, "mem")
        b = ServiceClient(service, "bad")
        a.register(MEM)
        b.register(BAD)
        service.start_watchdog()
        sim.run_until(0.5)  # nobody reports: both eventually stale
        # With everyone quarantined or below quorum the service pushed
        # degraded updates while it still had active members.
        assert service.degraded_reoptimizations >= 1


class TestRetransmitAndDrain:
    def test_unacked_epoch_is_retransmitted(self):
        sim, service = make_service(report_interval=0.02)
        a = ServiceClient(service, "mem")
        a.register(MEM)
        sim.run_until(0.1)
        assert a.last_allocation() is not None
        # Report without acking: the service re-pushes the update.
        before = len(a.inbox)
        a.report(sim.now, cpu_load=0.5, acked_epoch=0)
        assert len(a.inbox) > before
        assert service.retransmits >= 1

    def test_acked_epoch_not_retransmitted(self):
        sim, service = make_service(report_interval=0.02)
        a = ServiceClient(service, "mem")
        a.register(MEM)
        sim.run_until(0.1)
        epoch = a.last_epoch()
        before = len(a.inbox)
        a.report(sim.now, cpu_load=0.5, acked_epoch=epoch)
        assert len(a.inbox) == before
        assert service.retransmits == 0

    def test_drain_notifies_and_closes_everything(self):
        sim, service = make_service()
        a = ServiceClient(service, "mem")
        a.register(MEM)
        sim.run_until(0.1)
        service.drain("test shutdown")
        assert service.draining
        types = [type(m).__name__ for m in a.inbox]
        assert "ShutdownNotice" in types
        assert list(service.registry.live_sessions()) == []
        reply = service.handle(Register(name="bad", app=BAD))
        assert isinstance(reply, ErrorReply)

    def test_drain_is_idempotent(self):
        sim, service = make_service()
        service.drain("once")
        service.drain("twice")
        assert service.draining


class TestThreadCommand:
    def test_command_matches_allocation(self):
        sim, service = make_service()
        a = ServiceClient(service, "mem")
        a.register(MEM)
        sim.run_until(0.1)
        command = service.thread_command("mem")
        assert command.per_node == service.current_allocation()["mem"]

    def test_unknown_session_raises(self):
        sim, service = make_service()
        with pytest.raises(ServiceError):
            service.thread_command("ghost")


class TestDeltaMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig(machine=model_machine(), mode="incremental")

    def test_full_mode_has_no_delta_searcher(self):
        _, service = make_service()
        assert service.delta is None
        assert service.delta_fallbacks == 0

    def test_delta_searcher_shares_model_and_fallback(self):
        _, service = make_service(mode="delta")
        assert service.delta is not None
        assert service.delta.model is service.model
        assert service.delta.fallback is service.search

    def test_churn_routed_through_delta_path(self):
        sim, service = make_service(mode="delta")
        a = ServiceClient(service, "mem")
        b = ServiceClient(service, "bad")
        a.register(MEM)
        sim.run_until(0.05)
        b.register(BAD)
        sim.run_until(0.1)
        assert service.reoptimizations == 2
        assert service.delta_reoptimizations == 2
        # First event is a cold start; the second warm-starts.
        assert service.delta_fallbacks == 1

    def test_delta_mode_matches_offline_search_exactly(self):
        sim, service = make_service(mode="delta")
        a = ServiceClient(service, "mem")
        b = ServiceClient(service, "bad")
        a.register(MEM)
        sim.run_until(0.05)
        b.register(BAD)
        sim.run_until(0.1)
        offline = ExhaustiveSearch(NumaPerformanceModel()).search(
            model_machine(), [MEM, BAD]
        )
        assert service.current_score() == offline.score
        for name in ("mem", "bad"):
            assert service.current_allocation()[name] == tuple(
                int(t) for t in offline.allocation.threads_of(name)
            )

    def test_degraded_event_clears_the_warm_start(self):
        sim, service = make_service(
            mode="delta",
            resilience=ResiliencePolicy(quorum=1.0, freshness_window=1.5),
            report_interval=0.02,
        )
        a = ServiceClient(service, "mem")
        a.register(MEM)
        service.start_watchdog()
        sim.run_until(0.5)  # "mem" never reports: degraded path
        assert service.degraded_reoptimizations >= 1
        assert service._prev_allocation is None
        assert service._prev_specs == ()

    def test_full_mode_never_counts_delta_work(self):
        sim, service = make_service()
        a = ServiceClient(service, "mem")
        a.register(MEM)
        sim.run_until(0.1)
        assert service.reoptimizations == 1
        assert service.delta_reoptimizations == 0


class TestSearchModelValidation:
    def test_mismatched_search_model_rejected(self):
        sim = Simulator()
        model = NumaPerformanceModel()
        other = NumaPerformanceModel()
        with pytest.raises(ServiceError):
            AllocationService(
                ServiceConfig(machine=model_machine()),
                clock=lambda: sim.now,
                call_later=lambda d, fn: sim.schedule(d, fn),
                model=model,
                search=ExhaustiveSearch(other),
            )

    def test_reply_to_register_is_ack_with_epoch(self):
        sim, service = make_service()
        reply = service.handle(Register(name="mem", app=MEM))
        assert isinstance(reply, Ack)
        assert reply.epoch == 1
        dup = service.handle(Register(name="mem", app=MEM))
        assert isinstance(dup, ErrorReply)


class TestOverloadProtection:
    def test_flood_is_shed_only_while_reopt_pending(self):
        # A long debounce keeps the re-optimization pending while the
        # flood arrives.  Admission stamps last_report_time, so the
        # first report is spaced past the shed floor.
        sim, service = make_service(
            debounce=0.2, shed_report_interval=0.005
        )
        a = ServiceClient(service, "mem")
        a.register(MEM)  # debounce armed: a re-opt is pending
        first = service.handle(
            ProgressReport(name="mem", time=0.1, progress={}, cpu_load=0.9)
        )
        assert isinstance(first, Ack)
        flood = service.handle(
            ProgressReport(name="mem", time=0.101, progress={}, cpu_load=0.1)
        )
        # Shed: acked so the runtime keeps its cadence, but the
        # registry still holds the first report's state.
        assert isinstance(flood, Ack)
        assert service.shed_commands == 1
        assert service.registry.get("mem").last_report_time == 0.1
        # Once the debounce fired nothing is pending: same spacing
        # is accepted again.
        sim.run_until(0.3)
        late = service.handle(
            ProgressReport(
                name="mem", time=sim.now, progress={}, cpu_load=0.5
            )
        )
        more = service.handle(
            ProgressReport(
                name="mem", time=sim.now + 0.001, progress={}, cpu_load=0.5
            )
        )
        assert isinstance(late, Ack) and isinstance(more, Ack)
        assert service.shed_commands == 1  # unchanged
        assert service.registry.get("mem").last_report_time == sim.now + 0.001

    def test_membership_is_never_shed(self):
        sim, service = make_service(shed_report_interval=0.005)
        a = ServiceClient(service, "mem")
        a.register(MEM)  # pending re-opt: shedding is live
        reply = service.handle(Register(name="bad", app=BAD))
        assert isinstance(reply, Ack)
        bye = service.handle(Deregister(name="bad"))
        assert isinstance(bye, Ack)
        assert service.shed_commands == 0

    def test_stale_queued_command_hits_the_deadline(self):
        sim, service = make_service(command_deadline=0.05)
        a = ServiceClient(service, "mem")
        a.register(MEM)
        sim.run_until(0.5)
        reply = service.handle(
            ProgressReport(name="mem", time=sim.now, progress={}),
            received_at=sim.now - 0.2,
        )
        assert isinstance(reply, ErrorReply)
        assert reply.code == "deadline-exceeded"
        assert service.shed_commands == 1

    def test_fresh_queued_command_beats_the_deadline(self):
        sim, service = make_service(command_deadline=0.05)
        a = ServiceClient(service, "mem")
        a.register(MEM)
        sim.run_until(0.5)
        reply = service.handle(
            ProgressReport(name="mem", time=sim.now, progress={}),
            received_at=sim.now - 0.01,
        )
        assert isinstance(reply, Ack)

    def test_late_membership_commands_are_exempt_from_deadlines(self):
        sim, service = make_service(command_deadline=0.05)
        sim.run_until(0.5)
        reply = service.handle(
            Register(name="mem", app=MEM), received_at=sim.now - 0.2
        )
        assert isinstance(reply, Ack)  # a late register is still true

    def test_admission_cap_answers_overloaded(self):
        sim, service = make_service(max_sessions=1)
        first = service.handle(Register(name="mem", app=MEM))
        assert isinstance(first, Ack)
        second = service.handle(Register(name="bad", app=BAD))
        assert isinstance(second, ErrorReply)
        assert second.code == "overloaded"

    def test_shed_interval_must_respect_the_staleness_window(self):
        with pytest.raises(ServiceError):
            ServiceConfig(
                machine=model_machine(),
                report_interval=0.02,
                shed_report_interval=0.015,  # >= staleness_window / 2
            )
