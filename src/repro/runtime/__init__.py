"""Task-based runtime systems running on the execution simulator.

* :class:`~repro.runtime.runtime.OCRVxRuntime` — the paper's extended
  OCR-Vx with all three thread-control options;
* :class:`~repro.runtime.tbb.TbbRuntime` — TBB-like arenas + RML;
* :class:`~repro.runtime.openmp.OpenMpRuntime` — OpenMP-like static loops
  and tied tasks (the Section IV hazards).
"""

from repro.runtime.datablock import AccessMode, Datablock, traffic_fractions
from repro.runtime.events import Event, LatchEvent, OnceEvent
from repro.runtime.openmp import OmpSchedule, OpenMpRuntime
from repro.runtime.runtime import BindingMode, OCRVxRuntime, RuntimeStats
from repro.runtime.scheduler import (
    FifoScheduler,
    LocalityScheduler,
    TaskScheduler,
    WorkStealingScheduler,
)
from repro.runtime.task import Task, TaskState
from repro.runtime.taskgraph import TaskGraph
from repro.runtime.templates import FinishScope, TaskTemplate
from repro.runtime.tbb import TbbArena, TbbRuntime
from repro.runtime.worker import Worker

__all__ = [
    "Task",
    "TaskState",
    "TaskGraph",
    "TaskTemplate",
    "FinishScope",
    "Event",
    "OnceEvent",
    "LatchEvent",
    "Datablock",
    "AccessMode",
    "traffic_fractions",
    "TaskScheduler",
    "FifoScheduler",
    "LocalityScheduler",
    "WorkStealingScheduler",
    "Worker",
    "BindingMode",
    "RuntimeStats",
    "OCRVxRuntime",
    "TbbArena",
    "TbbRuntime",
    "OmpSchedule",
    "OpenMpRuntime",
]
