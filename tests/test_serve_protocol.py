"""The NDJSON wire protocol: every message round-trips through the
codec byte-identically, and malformed input is rejected with
`ServiceError` rather than a stack trace."""

import json

import pytest

from repro.core import AppSpec
from repro.errors import ServiceError
from repro.serve import (
    Ack,
    AllocationUpdate,
    Deregister,
    ErrorReply,
    ProgressReport,
    QueryAllocation,
    Register,
    ShutdownNotice,
    decode_message,
    encode_message,
)

ALL_MESSAGES = [
    Register(name="a", app=AppSpec.memory_bound("a", 0.5)),
    Register(name="b", app=AppSpec.numa_bad("b", 1.0, home_node=2)),
    Deregister(name="a"),
    ProgressReport(
        name="a",
        time=0.25,
        progress={"tasks": 12.0},
        cpu_load=0.8,
        acked_epoch=3,
    ),
    ProgressReport(name="a", time=0.0, progress={}),
    QueryAllocation(name="a"),
    Ack(name="a", epoch=4, in_reply_to="register"),
    AllocationUpdate(
        name="a",
        per_node=(2, 2, 2, 2),
        epoch=4,
        score=79.8,
        degraded=False,
    ),
    AllocationUpdate(
        name="a",
        per_node=(8, 0, 0, 0),
        epoch=9,
        score=64.0,
        degraded=True,
        in_reply_to="query-allocation",
    ),
    ErrorReply(error="duplicate session 'a'", in_reply_to="register"),
    ShutdownNotice(reason="draining"),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_codec_round_trip(self, message):
        line = encode_message(message)
        assert "\n" not in line
        assert decode_message(line) == message

    @pytest.mark.parametrize(
        "message", ALL_MESSAGES, ids=lambda m: type(m).__name__
    )
    def test_encoding_is_canonical(self, message):
        # Sorted keys, compact separators: same message, same bytes.
        assert encode_message(message) == encode_message(message)
        parsed = json.loads(encode_message(message))
        assert list(parsed) == sorted(parsed)

    def test_register_preserves_app_fingerprint(self):
        app = AppSpec.numa_bad("bad", 1.0, home_node=1)
        line = encode_message(Register(name="bad", app=app))
        decoded = decode_message(line)
        assert decoded.app.fingerprint == app.fingerprint


class TestRejection:
    @pytest.mark.parametrize(
        "line",
        [
            "not json",
            "[1, 2, 3]",
            '{"no_type": true}',
            '{"type": "warp-drive"}',
            '{"type": "register", "app": {}}',
            '{"type": "deregister"}',
            '{"type": "progress-report", "name": "a"}',
            '{"type": "progress-report", "name": "a", "time": "soon"}',
            '{"type": "progress-report", "name": "a", "time": true}',
            '{"type": "allocation", "name": "a", "per_node": []}',
            '{"type": "allocation", "name": "a", "per_node": [1, -2]}',
        ],
    )
    def test_malformed_raises_service_error(self, line):
        with pytest.raises(ServiceError):
            decode_message(line)

    def test_register_name_must_match_app(self):
        payload = json.loads(
            encode_message(
                Register(name="y", app=AppSpec.memory_bound("y", 0.5))
            )
        )
        payload["name"] = "x"  # app inside still says "y"
        with pytest.raises(ServiceError):
            decode_message(json.dumps(payload))

    def test_error_survives_codec(self):
        line = encode_message(ErrorReply(error="boom"))
        reply = decode_message(line)
        assert isinstance(reply, ErrorReply)
        assert reply.error == "boom"
