"""Benchmark the model-evaluation fast path: ``python -m repro bench``.

Times the three layers of the fast evaluation engine
(:mod:`repro.core.fasteval`) against the scalar reference model on the
paper's model machine and a four-application workload:

* ``model/*`` — raw evaluation throughput: scalar
  :meth:`~repro.core.model.NumaPerformanceModel.predict` per-candidate,
  one batched :meth:`~repro.core.model.NumaPerformanceModel.predict_scores`
  call over the same candidates (cold cache), and the same call again
  with every row memoised (warm cache).
* ``search/*`` — end-to-end searches, scalar (``use_fast=False``) vs
  fast path, measured in model evaluations per second.
* ``delta/*`` — churn-time re-optimization on a ten-application
  workload (24,310 symmetric candidates): a full exhaustive re-search
  with a cold and a warm score cache versus the incremental
  :class:`~repro.core.delta.DeltaSearch` warm-started from the previous
  allocation across a leave/rejoin cycle.
* ``parallel/*`` (``--workers N``) — the same ten-application space
  scored serially vs through the :mod:`repro.core.parallel` process
  pool at 2/4/... workers: exhaustive (where sharding the 24k-candidate
  tensor helps) and hill-climb with the batch threshold forced to 1
  (where per-round pool trips *hurt* — kept in the report as the honest
  "when workers hurt" number).  Every parallel run is checked
  byte-identical to the serial answer, and the section records
  ``effective_cpus`` because speedup is physically bounded by the cores
  this process may use; the ``--min-parallel-speedup`` gate enforces
  only on hosts with at least two.

The report is a JSON document mapping each op to its measured
``evals_per_sec`` (plus ``seconds`` and ``evaluations``), with a
``speedups`` section pairing each fast op against its scalar baseline
and a ``delta`` section recording ``steady_state_ms`` — the wall time
of one steady-state delta re-optimization — with its speedups over the
full re-search.  The committed ``BENCH_model.json`` at the repo root
records the numbers of the environment that produced it; CI re-runs
``--smoke`` mode and gates on the exhaustive-search speedup staying
above ``--min-speedup`` (default 5x) and on ``steady_state_ms``
staying under ``--max-delta-ms`` (default 1 ms) — see
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Sequence

from repro.core.allocation import ThreadAllocation
from repro.core.candidates import CandidateSpace
from repro.core.delta import DeltaSearch
from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import (
    AnnealingSearch,
    ExhaustiveSearch,
    GreedySearch,
    HillClimbSearch,
)
from repro.core.policies import symmetric_counts_tensor
from repro.core.spec import AppSpec
from repro.machine.presets import model_machine

__all__ = [
    "bench_workload",
    "delta_workload",
    "effective_cpus",
    "run_bench",
    "format_report",
    "write_report",
]

#: Baseline op each fast op's speedup is computed against.
_SPEEDUP_PAIRS = {
    "model/batched": "model/scalar",
    "model/cached": "model/scalar",
    "search/exhaustive_fast": "search/exhaustive_scalar",
    "search/greedy_fast": "search/greedy_scalar",
    "search/hillclimb_fast": "search/hillclimb_scalar",
    "search/annealing_fast": "search/annealing_scalar",
}


def bench_workload() -> tuple:
    """The fixed (machine, apps) pair every benchmark op runs against."""
    machine = model_machine()
    apps = [
        AppSpec.memory_bound("mem-a"),
        AppSpec.memory_bound("mem-b", 0.25),
        AppSpec.compute_bound("cpu-a"),
        AppSpec.numa_bad("bad-a", 1.0, home_node=0),
    ]
    return machine, apps


def delta_workload() -> tuple:
    """The ten-application churn workload behind the ``delta/*`` ops.

    Ten apps on the eight-core model machine span a 24,310-candidate
    symmetric space — large enough that :class:`DeltaSearch` skips its
    exactness audit and the steady-state path is a genuine O(delta)
    move search rather than a disguised full enumeration.
    """
    machine = model_machine()
    apps = [
        AppSpec.memory_bound(f"mem-{i}", 0.2 + 0.1 * i) for i in range(6)
    ] + [AppSpec.compute_bound(f"cpu-{i}", 4.0 + 2.0 * i) for i in range(4)]
    return machine, apps


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn`` (minimum filters noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def effective_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    The honest upper bound on any parallel speedup measured here: a
    single-core container can exercise every pool code path but can
    never run two workers at once, so its measured "speedups" are pure
    overhead.  The ``--min-parallel-speedup`` gate reads this to know
    when a wall-clock expectation is physically meaningful.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _parallel_worker_counts(workers: int) -> list[int]:
    """The worker ladder benchmarked for ``--workers N``.

    The standard 2/4 rungs up to ``N``, plus ``N`` itself when it is
    not one of them — so ``--workers 4`` measures [2, 4] (the committed
    baseline shape) and ``--workers 3`` measures [2, 3].
    """
    counts = [w for w in (2, 4) if w <= workers]
    if workers >= 1 and workers not in counts:
        counts.append(workers)
    return counts


def _run_parallel_bench(repeats: int, workers: int) -> dict:
    """The ``parallel`` report section: serial vs pooled searches.

    Exhaustive and hill-climb on the ten-app 24,310-candidate space.
    Models run with the memo cache off so every repetition re-scores
    the space (the pool sits on the cache-miss path; a warm cache would
    time dict lookups).  Hill-climb forces ``parallel_min_batch=1`` —
    its neighbourhood rounds are a few hundred candidates, far under
    the default threshold, so this is the deliberate worst case that
    documents when workers hurt.  Byte-identity of every parallel
    answer against the serial one is recorded per run and hard-gated
    by the CLI whenever this section exists.
    """
    from repro.core import parallel as par

    machine, apps = delta_workload()
    counts_list = _parallel_worker_counts(workers)
    serial_model = NumaPerformanceModel(workers=0, cache_size=0)
    serial_ops: dict[str, dict] = {}
    baselines: dict[str, object] = {}
    for op, make in (
        ("exhaustive", lambda m: ExhaustiveSearch(m)),
        ("hillclimb", lambda m: HillClimbSearch(m)),
    ):
        search = make(serial_model)
        result = search.search(machine, apps)  # warm-up (tables)
        seconds = _best_seconds(
            lambda s=search: s.search(machine, apps), repeats
        )
        baselines[op] = result
        serial_ops[op] = {
            "seconds": round(seconds, 6),
            "evaluations": result.evaluations,
        }

    per_workers: dict[str, dict] = {}
    speedups: dict[str, float] = {}
    all_identical = True
    for w in counts_list:
        model = NumaPerformanceModel(
            workers=w, parallel_min_batch=1, cache_size=0
        )
        entry: dict[str, dict] = {}
        for op, make in (
            ("exhaustive", lambda m: ExhaustiveSearch(m)),
            ("hillclimb", lambda m: HillClimbSearch(m)),
        ):
            search = make(model)
            result = search.search(machine, apps)  # warm-up (spawns pool)
            base = baselines[op]
            identical = (
                result.score == base.score
                and result.allocation.counts.tobytes()
                == base.allocation.counts.tobytes()
            )
            all_identical = all_identical and identical
            seconds = _best_seconds(
                lambda s=search: s.search(machine, apps), repeats
            )
            speedup = round(serial_ops[op]["seconds"] / seconds, 2)
            entry[op] = {
                "seconds": round(seconds, 6),
                "speedup": speedup,
                "identical": identical,
            }
            speedups[f"{op}_w{w}"] = speedup
        stats = par.pool_stats().get(w)
        entry["pool"] = {
            "spawned": stats is not None,
            "calls": stats["calls"] if stats else 0,
        }
        per_workers[str(w)] = entry
        par.release_pool(w)

    return {
        "apps": len(apps),
        "candidates": CandidateSpace(machine, len(apps)).symmetric_size(),
        "effective_cpus": effective_cpus(),
        "shared_memory": par.shared_memory_available(),
        "worker_counts": counts_list,
        "serial": serial_ops,
        "workers": per_workers,
        "speedups": speedups,
        "identical": all_identical,
    }


def run_bench(
    *,
    smoke: bool = False,
    annealing_steps: int | None = None,
    workers: int | None = None,
) -> dict:
    """Run the benchmark suite; returns the report as a plain dict.

    ``smoke`` shrinks repeat counts and the annealing schedule so CI can
    afford the run; the measured speedups are the same ballpark either
    way because every op scales down together.  ``workers`` (>= 1) adds
    the ``parallel`` section — serial vs process-pool searches on the
    ten-app space at :func:`_parallel_worker_counts` rungs.
    """
    repeats = 2 if smoke else 5
    steps = annealing_steps or (200 if smoke else 2000)
    machine, apps = bench_workload()
    names = tuple(a.name for a in apps)
    counts = symmetric_counts_tensor(machine, len(apps))
    allocations = [
        ThreadAllocation(app_names=names, counts=c) for c in counts
    ]
    ops: dict[str, dict] = {}

    def record(op: str, seconds: float, evaluations: int) -> None:
        ops[op] = {
            "seconds": round(seconds, 6),
            "evaluations": evaluations,
            "evals_per_sec": round(evaluations / seconds, 1),
        }

    # --- raw model evaluation ----------------------------------------
    scalar_model = NumaPerformanceModel()

    def scalar_sweep() -> None:
        for alloc in allocations:
            scalar_model.predict(machine, apps, alloc)

    scalar_sweep()  # warm-up (table/import costs out of the timing)
    record(
        "model/scalar",
        _best_seconds(scalar_sweep, repeats),
        len(allocations),
    )

    batched_model = NumaPerformanceModel()
    batched_model.predict_scores(machine, apps, counts[:1])  # warm tables

    def batched_sweep() -> None:
        batched_model.cache.clear()
        batched_model.predict_scores(machine, apps, counts)

    record(
        "model/batched",
        _best_seconds(batched_sweep, repeats),
        len(allocations),
    )

    batched_model.predict_scores(machine, apps, counts)  # fill the cache
    record(
        "model/cached",
        _best_seconds(
            lambda: batched_model.predict_scores(machine, apps, counts),
            repeats,
        ),
        len(allocations),
    )

    # --- end-to-end searches -----------------------------------------
    searches: list[tuple[str, Callable[[bool], object]]] = [
        (
            "exhaustive",
            lambda fast: ExhaustiveSearch(
                NumaPerformanceModel(), use_fast=fast
            ),
        ),
        (
            "greedy",
            lambda fast: GreedySearch(NumaPerformanceModel(), use_fast=fast),
        ),
        (
            "hillclimb",
            lambda fast: HillClimbSearch(
                NumaPerformanceModel(), use_fast=fast
            ),
        ),
        (
            "annealing",
            lambda fast: AnnealingSearch(
                NumaPerformanceModel(), steps=steps, use_fast=fast
            ),
        ),
    ]
    for name, make in searches:
        for fast in (False, True):
            evaluations = 0

            def run_search() -> None:
                nonlocal evaluations
                search = make(fast)
                result = search.search(machine, apps)
                evaluations = result.evaluations

            run_search()  # warm-up
            suffix = "fast" if fast else "scalar"
            record(
                f"search/{name}_{suffix}",
                _best_seconds(run_search, repeats),
                evaluations,
            )

    speedups = {
        op: round(
            ops[op]["evals_per_sec"] / ops[base]["evals_per_sec"], 2
        )
        for op, base in _SPEEDUP_PAIRS.items()
    }

    # --- churn-time re-optimization (delta path) ---------------------
    d_machine, d_apps = delta_workload()
    d_model = NumaPerformanceModel()
    d_full = ExhaustiveSearch(d_model)
    d_search = DeltaSearch(d_model, fallback=d_full)
    delta_ops: dict[str, dict] = {}

    def record_delta(op: str, seconds: float, evaluations: int) -> None:
        delta_ops[op] = {
            "seconds": round(seconds, 6),
            "evaluations": evaluations,
            "evals_per_sec": round(evaluations / seconds, 1),
        }

    base = d_full.search(d_machine, d_apps)  # warm-up (tables + cache)

    def full_cold() -> None:
        d_model.cache.clear()  # a churn event changes the fingerprint
        d_full.search(d_machine, d_apps)

    record_delta(
        "delta/full_cold",
        _best_seconds(full_cold, repeats),
        base.evaluations,
    )
    d_full.search(d_machine, d_apps)  # refill the cache
    record_delta(
        "delta/full_warm",
        _best_seconds(
            lambda: d_full.search(d_machine, d_apps), repeats
        ),
        base.evaluations,
    )

    survivors = d_apps[:-1]
    departed = d_search.search(
        d_machine,
        survivors,
        previous=base.allocation,
        previous_specs=tuple(d_apps),
        previous_score=base.score,
    )
    steady_evals = 0

    def rejoin() -> None:
        nonlocal steady_evals
        d_model.cache.clear()
        res = d_search.search(
            d_machine,
            d_apps,
            previous=departed.allocation,
            previous_specs=tuple(survivors),
            previous_score=departed.score,
        )
        steady_evals = res.result.evaluations

    rejoin()  # warm-up
    steady_seconds = _best_seconds(rejoin, repeats)
    record_delta("delta/steady_state", steady_seconds, steady_evals)

    delta_section = {
        "apps": len(d_apps),
        "candidates": CandidateSpace(
            d_machine, len(d_apps)
        ).symmetric_size(),
        "ops": delta_ops,
        "steady_state_ms": round(steady_seconds * 1e3, 4),
        "speedups": {
            "vs_full_cold": round(
                delta_ops["delta/full_cold"]["seconds"] / steady_seconds, 1
            ),
            "vs_full_warm": round(
                delta_ops["delta/full_warm"]["seconds"] / steady_seconds, 1
            ),
        },
    }

    report = {
        "schema": "repro-bench/1",
        "mode": "smoke" if smoke else "full",
        "machine": machine.name,
        "apps": len(apps),
        "candidates": len(allocations),
        "annealing_steps": steps,
        "ops": ops,
        "speedups": speedups,
        "delta": delta_section,
    }
    if workers is not None and workers >= 1:
        report["parallel"] = _run_parallel_bench(repeats, workers)
    return report


def format_report(report: dict) -> str:
    """Human-readable rendering of a :func:`run_bench` report."""
    lines = [
        f"bench on '{report['machine']}' "
        f"({report['apps']} apps, {report['candidates']} symmetric "
        f"candidates, {report['mode']} mode)",
        "",
        f"{'op':28s} {'evals/sec':>12s} {'seconds':>10s} {'speedup':>8s}",
    ]
    for op, stats in report["ops"].items():
        speedup = report["speedups"].get(op)
        tail = f"{speedup:>7.1f}x" if speedup is not None else f"{'-':>8s}"
        lines.append(
            f"{op:28s} {stats['evals_per_sec']:>12,.1f} "
            f"{stats['seconds']:>10.4f} {tail}"
        )
    delta = report.get("delta")
    if delta:
        lines += [
            "",
            f"churn-time re-optimization ({delta['apps']} apps, "
            f"{delta['candidates']:,} symmetric candidates)",
            f"{'op':28s} {'evaluations':>12s} {'ms':>10s}",
        ]
        for op, stats in delta["ops"].items():
            lines.append(
                f"{op:28s} {stats['evaluations']:>12,d} "
                f"{stats['seconds'] * 1e3:>10.4f}"
            )
        lines.append(
            f"steady-state delta re-optimization: "
            f"{delta['steady_state_ms']:.4f} ms "
            f"({delta['speedups']['vs_full_cold']:.1f}x vs cold full "
            f"re-search, {delta['speedups']['vs_full_warm']:.1f}x vs warm)"
        )
    parallel = report.get("parallel")
    if parallel:
        lines += [
            "",
            f"process-parallel search ({parallel['apps']} apps, "
            f"{parallel['candidates']:,} symmetric candidates, "
            f"{parallel['effective_cpus']} effective CPUs, shared memory "
            f"{'available' if parallel['shared_memory'] else 'UNAVAILABLE'})",
            f"{'op':28s} {'seconds':>10s} {'speedup':>8s} {'identical':>10s}",
        ]
        for op, stats in parallel["serial"].items():
            lines.append(
                f"{op + ' (serial)':28s} {stats['seconds']:>10.4f} "
                f"{'-':>8s} {'-':>10s}"
            )
        for w, entry in parallel["workers"].items():
            for op in ("exhaustive", "hillclimb"):
                stats = entry[op]
                lines.append(
                    f"{op + f' ({w} workers)':28s} "
                    f"{stats['seconds']:>10.4f} "
                    f"{stats['speedup']:>7.2f}x "
                    f"{'yes' if stats['identical'] else 'NO':>10s}"
                )
        if parallel["effective_cpus"] < 2:
            lines.append(
                "note: this host exposes a single CPU to the process — "
                "pooled wall times measure pure coordination overhead; "
                "byte-identity is still fully checked"
            )
    return "\n".join(lines)


def write_report(report: dict, path: str) -> None:
    """Write ``report`` as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
