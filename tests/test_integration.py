"""End-to-end integration tests across the whole stack."""

import pytest

from repro.agent import (
    Agent,
    ModelGuidedStrategy,
    OcrVxEndpoint,
    ProducerConsumerAlignment,
)
from repro.apps import ProducerConsumerScenario, SyntheticApp
from repro.core import AppSpec, NumaPerformanceModel, ThreadAllocation
from repro.machine import model_machine, skylake_4s
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


class TestModelVsSimulator:
    """The executor's steady state must track the analytic model."""

    @pytest.mark.parametrize(
        "threads,expected",
        [
            ([1, 1, 1, 1], None),  # uncontended
            ([8, 8, 8, 8], None),  # saturated
        ],
    )
    def test_memory_bound_agreement(self, threads, expected):
        machine = model_machine()
        spec = AppSpec.memory_bound("m", 0.5)
        alloc = ThreadAllocation.from_mapping({"m": threads})
        analytic = (
            NumaPerformanceModel()
            .predict(machine, [spec], alloc)
            .total_gflops
        )
        ex = ExecutionSimulator(machine)
        rt = OCRVxRuntime("m", ex)
        rt.start(threads)
        app = SyntheticApp(rt, spec, task_flops=0.05)
        app.submit_stream(10**9)
        ex.run(0.3)
        measured = ex.total_gflops(0.3)
        assert measured == pytest.approx(analytic, rel=0.02)

    def test_mixed_workload_agreement(self):
        machine = model_machine()
        specs = [
            AppSpec.memory_bound("m", 0.5),
            AppSpec.compute_bound("c", 10.0),
        ]
        alloc = ThreadAllocation.uniform(["m", "c"], 4, [3, 5])
        analytic = (
            NumaPerformanceModel()
            .predict(machine, specs, alloc)
            .total_gflops
        )
        ex = ExecutionSimulator(machine)
        for spec in specs:
            rt = OCRVxRuntime(spec.name, ex)
            rt.start([int(x) for x in alloc.threads_of(spec.name)])
            SyntheticApp(rt, spec, task_flops=0.05).submit_stream(10**9)
        ex.run(0.3)
        assert ex.total_gflops(0.3) == pytest.approx(analytic, rel=0.02)

    def test_numa_bad_agreement_on_skylake(self):
        machine = skylake_4s()
        spec = AppSpec.numa_bad("b", 1 / 16, home_node=0)
        alloc = ThreadAllocation.uniform(["b"], 4, 5)
        analytic = (
            NumaPerformanceModel()
            .predict(machine, [spec], alloc)
            .total_gflops
        )
        ex = ExecutionSimulator(machine)
        rt = OCRVxRuntime("b", ex)
        rt.start([5, 5, 5, 5])
        SyntheticApp(rt, spec, task_flops=0.005).submit_stream(10**9)
        ex.run(0.3)
        assert ex.total_gflops(0.3) == pytest.approx(analytic, rel=0.03)


class TestAgentEndToEnd:
    def test_alignment_reduces_intermediate_data(self):
        def run(with_agent):
            machine = model_machine()
            ex = ExecutionSimulator(machine)
            prod = OCRVxRuntime("producer", ex)
            cons = OCRVxRuntime("consumer", ex)
            prod.start()
            cons.start()
            sc = ProducerConsumerScenario(
                ex,
                prod,
                cons,
                iterations=30,
                tasks_per_iteration=8,
                producer_flops=0.004,
                consumer_flops=0.012,
            )
            sc.build()
            if with_agent:
                agent = Agent(
                    ex,
                    ProducerConsumerAlignment(
                        "producer", "consumer", max_lead=3, min_lead=1
                    ),
                    period=0.005,
                )
                agent.register(OcrVxEndpoint(prod))
                agent.register(OcrVxEndpoint(cons))
                agent.start()
            end = ex.run_until_condition(
                lambda: sc.finished, max_time=300.0
            )
            return end, sc.max_intermediate_items()

        t_plain, peak_plain = run(False)
        t_agent, peak_agent = run(True)
        # The paper's [10] finding: clear storage benefit...
        assert peak_agent < peak_plain / 1.5
        # ...with only marginal wall-clock impact either way.
        assert abs(t_agent - t_plain) / t_plain < 0.25

    def test_model_guided_agent_improves_throughput(self):
        machine = model_machine()
        specs = [
            AppSpec.memory_bound("mem", 0.5),
            AppSpec.compute_bound("comp", 10.0),
        ]

        def run(with_agent):
            ex = ExecutionSimulator(machine)
            runtimes = {}
            for spec in specs:
                # paper setup: every app starts with one worker per core
                rt = OCRVxRuntime(spec.name, ex)
                rt.start()
                if not with_agent:
                    rt.set_allocation([4, 4, 4, 4])  # static fair share
                SyntheticApp(rt, spec, task_flops=0.02).submit_stream(
                    10**9
                )
                runtimes[spec.name] = rt
            if with_agent:
                agent = Agent(
                    ex, ModelGuidedStrategy(specs), period=0.005
                )
                for rt in runtimes.values():
                    agent.register(OcrVxEndpoint(rt))
                agent.start()
            ex.run(0.3)
            return ex.total_gflops(0.3)

        plain = run(False)
        guided = run(True)
        assert guided > plain * 1.2


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def run():
            machine = model_machine()
            ex = ExecutionSimulator(machine)
            rt = OCRVxRuntime("a", ex, seed=5)
            rt.start([2, 2, 2, 2])
            app = SyntheticApp(rt, AppSpec.memory_bound("a", 0.5))
            app.submit_stream(200)
            end = ex.run_until_idle()
            return end, ex.metrics.integrator("flops/a").total

        assert run() == run()
