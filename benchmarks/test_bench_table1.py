"""Table I: the uneven (1,1,1,5) worked example, 254 GFLOPS total."""

import pytest

from benchmarks.conftest import emit
from repro.analysis import run_table1


def test_bench_table1(benchmark):
    result = benchmark(run_table1)
    emit("Table I - uneven allocation (1,1,1,5)", result.render())
    mem, comp = result.columns
    assert result.total_gflops == pytest.approx(254.0)
    assert result.total_gflops_per_node == pytest.approx(63.5)
    assert mem.gflops_per_thread == pytest.approx(4.5)
    assert comp.gflops_per_application == pytest.approx(50.0)
