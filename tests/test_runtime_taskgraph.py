"""Unit tests for static task-graph analysis."""

import pytest

from repro.apps.workloads import chain, fan, fork_join, random_dag, stencil_1d
from repro.errors import DependencyError
from repro.runtime.task import Task
from repro.runtime.taskgraph import TaskGraph


def mk(name, flops=1.0):
    return Task(name=name, flops=flops, arithmetic_intensity=1.0)


class TestStructure:
    def test_add_idempotent(self):
        g = TaskGraph()
        t = mk("a")
        g.add(t)
        g.add(t)
        assert len(g) == 1

    def test_edges_register_tasks(self):
        g = TaskGraph()
        a, b = mk("a"), mk("b")
        g.add_edge(a, b)
        assert len(g) == 2
        assert len(g.edges) == 1


class TestTopology:
    def test_topological_order(self):
        g = TaskGraph()
        a, b, c = mk("a"), mk("b"), mk("c")
        g.add_edge(a, b)
        g.add_edge(b, c)
        order = [t.name for t in g.topological_order()]
        assert order == ["a", "b", "c"]

    def test_cycle_detection(self):
        # Build a cycle at the graph level (task-level deps would
        # deadlock, but the graph check must still catch it).
        g = TaskGraph()
        a, b = mk("a"), mk("b")
        g.add_edge(a, b)
        # manually register the back edge without touching task state
        g._edges.append((b, a))
        with pytest.raises(DependencyError):
            g.validate()

    def test_empty_graph_valid(self):
        TaskGraph().validate()


class TestMetrics:
    def test_chain_has_no_parallelism(self):
        g = chain(10, flops=1.0)
        assert g.critical_path_flops() == pytest.approx(10.0)
        assert g.parallelism() == pytest.approx(1.0)
        assert g.max_width() == 1

    def test_fan_is_fully_parallel(self):
        g = fan(16, flops=1.0)
        assert g.critical_path_flops() == pytest.approx(1.0)
        assert g.parallelism() == pytest.approx(16.0)
        assert g.max_width() == 16

    def test_fork_join_width(self):
        g = fork_join(3, 8, flops=1.0, join_flops=0.5)
        assert g.max_width() == 8
        # 3 rounds of (1 fan task + join) on the critical path
        assert g.critical_path_flops() == pytest.approx(3 * 1.5)

    def test_stencil_structure(self):
        g = stencil_1d(4, 10, num_nodes=2)
        assert len(g) == 40
        assert g.max_width() == 10
        affs = {t.affinity_node for t in g.tasks}
        assert affs == {0, 1}

    def test_random_dag_is_acyclic(self):
        g = random_dag(50, edge_probability=0.2, seed=42)
        g.validate()
        assert len(g) == 50

    def test_random_dag_deterministic(self):
        a = random_dag(30, seed=7)
        b = random_dag(30, seed=7)
        assert len(a.edges) == len(b.edges)

    def test_total_flops(self):
        g = fan(5, flops=2.0)
        assert g.total_flops() == pytest.approx(10.0)
