"""OCR-style synchronisation events.

The Open Community Runtime expresses all inter-task synchronisation as
*events*: a task's pre-slots are satisfied by events, and a task fires its
output event on completion.  Two event flavours cover the paper's needs:

* :class:`OnceEvent` — fires when satisfied once; the basic dependence.
* :class:`LatchEvent` — a counting event: fires when its counter returns
  to zero (OCR's latch; useful for join patterns and iteration barriers).

Events deliver to *sinks*: callables registered via :meth:`add_dependent`.
The runtime registers task pre-slot decrements as sinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import DependencyError

__all__ = ["Event", "OnceEvent", "LatchEvent"]


class Event:
    """Base event: satisfiable, delivering a payload to dependents."""

    _next_id = 0

    def __init__(self, name: str = "") -> None:
        self.event_id = Event._next_id
        Event._next_id += 1
        self.name = name or f"event-{self.event_id}"
        self._sinks: list[Callable[[Any], None]] = []
        self._fired = False
        self._payload: Any = None

    @property
    def fired(self) -> bool:
        """True once the event has triggered."""
        return self._fired

    @property
    def payload(self) -> Any:
        """The value the event fired with (None before firing)."""
        return self._payload

    def add_dependent(self, sink: Callable[[Any], None]) -> None:
        """Register a sink; fires immediately if the event already did.

        Late registration firing immediately is what makes dynamic task
        creation race-free: a consumer task created after the producer
        finished still sees the dependence satisfied.
        """
        if self._fired:
            sink(self._payload)
        else:
            self._sinks.append(sink)

    def _fire(self, payload: Any) -> None:
        if self._fired:
            raise DependencyError(f"event '{self.name}' fired twice")
        self._fired = True
        self._payload = payload
        sinks, self._sinks = self._sinks, []
        for sink in sinks:
            sink(payload)


class OnceEvent(Event):
    """Fires on the first (and only) :meth:`satisfy`."""

    def satisfy(self, payload: Any = None) -> None:
        """Trigger the event, delivering ``payload`` to all dependents."""
        self._fire(payload)


class LatchEvent(Event):
    """Counting event: fires when its count returns to zero.

    Starts at ``count``; :meth:`count_up` increments, :meth:`count_down`
    decrements.  Reaching zero fires the event (once).
    """

    def __init__(self, count: int, name: str = "") -> None:
        super().__init__(name)
        if count <= 0:
            raise DependencyError(
                f"latch '{self.name}' must start positive, got {count}"
            )
        self._count = count

    @property
    def count(self) -> int:
        """Current counter value."""
        return self._count

    def count_up(self, n: int = 1) -> None:
        """Increment the latch (register more outstanding work)."""
        if self._fired:
            raise DependencyError(
                f"latch '{self.name}' already fired; cannot count up"
            )
        if n <= 0:
            raise DependencyError(f"count_up needs positive n, got {n}")
        self._count += n

    def count_down(self, n: int = 1, payload: Any = None) -> None:
        """Decrement the latch; fires when the counter reaches zero."""
        if self._fired:
            raise DependencyError(
                f"latch '{self.name}' already fired; cannot count down"
            )
        if n <= 0:
            raise DependencyError(f"count_down needs positive n, got {n}")
        if n > self._count:
            raise DependencyError(
                f"latch '{self.name}': count_down({n}) below zero "
                f"(count={self._count})"
            )
        self._count -= n
        if self._count == 0:
            self._fire(payload)
