"""Tests on the heterogeneous (unequal-node) machine extension."""

import numpy as np
import pytest

from repro.core import (
    AppSpec,
    EvenSharePolicy,
    GreedySearch,
    HillClimbSearch,
    NumaPerformanceModel,
    ThreadAllocation,
)
from repro.errors import AllocationError, ModelError
from repro.machine import heterogeneous_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


@pytest.fixture
def machine():
    return heterogeneous_machine()


class TestTopology:
    def test_shape(self, machine):
        assert machine.cores_per_node == (12, 12, 4, 4)
        assert not machine.is_symmetric
        assert machine.total_cores == 32

    def test_per_node_bandwidths(self, machine):
        assert machine.bandwidth(0, 0) == 80.0
        assert machine.bandwidth(2, 2) == 24.0
        assert machine.bandwidth(0, 2) == 12.0


class TestModel:
    def test_memory_bound_per_node_saturation(self, machine):
        spec = AppSpec.memory_bound("m", 0.5)
        alloc = ThreadAllocation.from_mapping({"m": [12, 12, 4, 4]})
        p = NumaPerformanceModel().predict(machine, [spec], alloc)
        # big nodes saturate at 80 GB/s -> 40 GFLOPS each;
        # small nodes: 4 threads x 20 = 80 > 24 -> 12 GFLOPS each
        assert p.app("m").gflops == pytest.approx(2 * 40 + 2 * 12)

    def test_allocation_validation_respects_node_sizes(self, machine):
        alloc = ThreadAllocation.from_mapping({"m": [12, 12, 5, 4]})
        with pytest.raises(AllocationError):
            alloc.validate(machine)

    def test_even_share_per_node(self, machine):
        apps = [AppSpec.memory_bound("a"), AppSpec.memory_bound("b")]
        alloc = EvenSharePolicy().allocate(machine, apps)
        assert alloc.threads_per_node.tolist() == [12, 12, 4, 4]

    def test_symmetric_tooling_rejects(self, machine):
        from repro.core.policies import enumerate_symmetric_allocations
        from repro.core.worked import worked_example

        apps = [AppSpec.memory_bound("m")]
        with pytest.raises(AllocationError):
            list(enumerate_symmetric_allocations(machine, apps))
        with pytest.raises(ModelError):
            worked_example(machine, [(apps[0], 1, 2)])


class TestSearchAndSim:
    def test_hill_climb_handles_asymmetry(self, machine):
        apps = [
            AppSpec.memory_bound("mem", 0.5),
            AppSpec.compute_bound("comp", 10.0),
        ]
        res = HillClimbSearch().search(machine, apps)
        res.allocation.validate(machine)
        assert res.score > 0

    def test_greedy_places_compute_anywhere(self, machine):
        apps = [
            AppSpec.memory_bound("mem", 0.5),
            AppSpec.compute_bound("comp", 10.0),
        ]
        res = GreedySearch().search(machine, apps)
        assert res.allocation.total_threads == machine.total_cores

    def test_executor_runs_on_heterogeneous_machine(self, machine):
        from repro.apps import SyntheticApp

        ex = ExecutionSimulator(machine)
        rt = OCRVxRuntime("m", ex)
        rt.start([12, 12, 4, 4])
        spec = AppSpec.memory_bound("m", 0.5)
        SyntheticApp(rt, spec, task_flops=0.05).submit_stream(10**9)
        ex.run(0.3)
        analytic = (
            NumaPerformanceModel()
            .predict(
                machine,
                [spec],
                ThreadAllocation.from_mapping({"m": [12, 12, 4, 4]}),
            )
            .total_gflops
        )
        assert ex.total_gflops(0.3) == pytest.approx(analytic, rel=0.02)


class TestRooflinePlot:
    def test_renders_for_any_node(self, machine):
        from repro.analysis import render_roofline

        text = render_roofline(
            machine,
            [AppSpec.memory_bound("m", 0.5)],
            node=2,
        )
        assert "node 2" in text
        assert "A = m" in text

    def test_validation(self, machine):
        from repro.analysis import render_roofline
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            render_roofline(machine, width=4)
        with pytest.raises(ConfigurationError):
            render_roofline(machine, ai_range=(1.0, 0.5))
