"""Golden tests: the worked examples reproduce Tables I and II row by row."""

import pytest

from repro.core.spec import AppSpec, Placement
from repro.core.worked import worked_example
from repro.errors import ModelError
from repro.machine import model_machine


@pytest.fixture
def table1():
    return worked_example(
        model_machine(),
        [
            (AppSpec.memory_bound("memory-bound", 0.5), 3, 1),
            (AppSpec.compute_bound("compute-bound", 10.0), 1, 5),
        ],
    )


@pytest.fixture
def table2():
    return worked_example(
        model_machine(),
        [
            (AppSpec.memory_bound("memory-bound", 0.5), 3, 2),
            (AppSpec.compute_bound("compute-bound", 10.0), 1, 2),
        ],
    )


class TestTable1:
    """Every row of Table I."""

    def test_peak_bandwidth_per_thread(self, table1):
        mem, comp = table1.columns
        assert mem.peak_bw_per_thread == pytest.approx(20.0)
        assert comp.peak_bw_per_thread == pytest.approx(1.0)

    def test_peak_bandwidth_per_instance(self, table1):
        mem, comp = table1.columns
        assert mem.peak_bw_per_instance == pytest.approx(20.0)
        assert comp.peak_bw_per_instance == pytest.approx(5.0)

    def test_total_bandwidth_of_all_instances(self, table1):
        mem, comp = table1.columns
        assert mem.total_bw_all_instances == pytest.approx(60.0)
        assert comp.total_bw_all_instances == pytest.approx(5.0)

    def test_total_required_bandwidth(self, table1):
        assert table1.total_required_bandwidth == pytest.approx(65.0)

    def test_baseline(self, table1):
        assert table1.baseline_per_thread == pytest.approx(4.0)

    def test_allocated_baseline(self, table1):
        mem, comp = table1.columns
        assert mem.allocated_baseline_per_thread == pytest.approx(4.0)
        assert comp.allocated_baseline_per_thread == pytest.approx(1.0)

    def test_allocated_node_bandwidth(self, table1):
        assert table1.allocated_node_bandwidth == pytest.approx(17.0)

    def test_remaining_node_bandwidth(self, table1):
        assert table1.remaining_node_bandwidth == pytest.approx(15.0)

    def test_still_required(self, table1):
        mem, comp = table1.columns
        assert mem.still_required_per_thread == pytest.approx(16.0)
        assert comp.still_required_per_thread == pytest.approx(0.0)
        assert table1.still_required_bandwidth == pytest.approx(48.0)

    def test_remainder_given_to_a_thread(self, table1):
        mem, comp = table1.columns
        assert mem.remainder_per_thread == pytest.approx(5.0)
        assert comp.remainder_per_thread == pytest.approx(0.0)

    def test_total_allocated_per_thread(self, table1):
        mem, comp = table1.columns
        assert mem.total_per_thread == pytest.approx(9.0)
        assert comp.total_per_thread == pytest.approx(1.0)

    def test_gflops_per_thread(self, table1):
        mem, comp = table1.columns
        assert mem.gflops_per_thread == pytest.approx(4.5)
        assert comp.gflops_per_thread == pytest.approx(10.0)

    def test_gflops_per_application(self, table1):
        mem, comp = table1.columns
        assert mem.gflops_per_application == pytest.approx(4.5)
        assert comp.gflops_per_application == pytest.approx(50.0)

    def test_totals(self, table1):
        assert table1.total_gflops_per_node == pytest.approx(63.5)
        assert table1.total_gflops == pytest.approx(254.0)

    def test_render_contains_totals(self, table1):
        text = table1.render()
        assert "254" in text
        assert "63.5" in text


class TestTable2:
    """The distinguishing rows of Table II."""

    def test_total_required_bandwidth(self, table2):
        assert table2.total_required_bandwidth == pytest.approx(122.0)

    def test_allocated_node_bandwidth(self, table2):
        assert table2.allocated_node_bandwidth == pytest.approx(26.0)

    def test_remaining(self, table2):
        assert table2.remaining_node_bandwidth == pytest.approx(6.0)

    def test_still_required(self, table2):
        assert table2.still_required_bandwidth == pytest.approx(96.0)

    def test_remainder_per_thread(self, table2):
        mem, comp = table2.columns
        assert mem.remainder_per_thread == pytest.approx(1.0)

    def test_per_thread_allocation(self, table2):
        mem, comp = table2.columns
        assert mem.total_per_thread == pytest.approx(5.0)
        assert mem.gflops_per_thread == pytest.approx(2.5)

    def test_gflops_per_application(self, table2):
        mem, comp = table2.columns
        assert mem.gflops_per_application == pytest.approx(5.0)
        assert comp.gflops_per_application == pytest.approx(20.0)

    def test_totals(self, table2):
        assert table2.total_gflops_per_node == pytest.approx(35.0)
        assert table2.total_gflops == pytest.approx(140.0)


class TestValidation:
    def test_rejects_oversubscription(self):
        with pytest.raises(ModelError):
            worked_example(
                model_machine(),
                [(AppSpec.memory_bound("m", 0.5), 3, 3)],
            )

    def test_rejects_numa_bad_apps(self):
        with pytest.raises(ModelError):
            worked_example(
                model_machine(),
                [(AppSpec.numa_bad("b", 1.0, home_node=0), 1, 2)],
            )

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            worked_example(model_machine(), [])

    def test_cross_check_against_model_runs(self):
        # cross_check=True is the default; reaching here means the two
        # implementations agreed.
        result = worked_example(
            model_machine(),
            [
                (AppSpec.memory_bound("m", 0.25), 2, 3),
                (AppSpec.compute_bound("c", 20.0), 1, 2),
            ],
        )
        assert result.total_gflops > 0
