"""The fast-path benchmark harness and its CLI entry point.

Speedup assertions here are deliberately loose (``> 1``) — CI machines
are noisy; the committed ``BENCH_model.json`` records the real numbers.
"""

import json

import pytest

from repro.__main__ import main
from repro.analysis.bench import (
    bench_workload,
    delta_workload,
    format_report,
    run_bench,
    write_report,
)


@pytest.fixture(scope="module")
def report():
    return run_bench(smoke=True, annealing_steps=50)


class TestRunBench:
    def test_schema_and_ops(self, report):
        assert report["schema"] == "repro-bench/1"
        assert report["mode"] == "smoke"
        assert report["candidates"] == 165
        expected = {
            "model/scalar",
            "model/batched",
            "model/cached",
            "search/exhaustive_scalar",
            "search/exhaustive_fast",
            "search/greedy_scalar",
            "search/greedy_fast",
            "search/hillclimb_scalar",
            "search/hillclimb_fast",
            "search/annealing_scalar",
            "search/annealing_fast",
        }
        assert set(report["ops"]) == expected
        for stats in report["ops"].values():
            assert stats["seconds"] > 0
            assert stats["evals_per_sec"] > 0

    def test_fast_paths_actually_faster(self, report):
        assert report["speedups"]["model/batched"] > 1
        assert report["speedups"]["model/cached"] > 1
        assert report["speedups"]["search/exhaustive_fast"] > 1

    def test_both_exhaustive_paths_count_all_candidates(self, report):
        assert report["ops"]["search/exhaustive_scalar"]["evaluations"] == 165
        assert report["ops"]["search/exhaustive_fast"]["evaluations"] == 165

    def test_format_report(self, report):
        text = format_report(report)
        assert "model/cached" in text
        assert "speedup" in text

    def test_write_report_round_trips(self, report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(report, str(path))
        assert json.loads(path.read_text()) == report

    def test_workload_is_the_paper_machine(self):
        machine, apps = bench_workload()
        assert machine.num_nodes == 4
        assert len(apps) == 4

    def test_delta_section_schema(self, report):
        delta = report["delta"]
        assert delta["apps"] == 10
        assert delta["candidates"] == 24310
        assert set(delta["ops"]) == {
            "delta/full_cold",
            "delta/full_warm",
            "delta/steady_state",
        }
        for stats in delta["ops"].values():
            assert stats["seconds"] > 0
        assert delta["steady_state_ms"] > 0

    def test_delta_beats_full_re_search(self, report):
        # Loose (> 1) on purpose; BENCH_model.json records the real
        # numbers (hundreds of x) and CI gates on steady_state_ms.
        assert report["delta"]["speedups"]["vs_full_cold"] > 1
        assert report["delta"]["speedups"]["vs_full_warm"] > 1

    def test_delta_path_is_sublinear_in_the_space(self, report):
        steady = report["delta"]["ops"]["delta/steady_state"]
        assert steady["evaluations"] < 24310 / 10

    def test_delta_workload_is_ten_apps(self):
        machine, apps = delta_workload()
        assert len(apps) == 10
        assert len({a.name for a in apps}) == 10
        assert machine.name == bench_workload()[0].name

    def test_format_report_includes_delta(self, report):
        text = format_report(report)
        assert "delta/steady_state" in text
        assert "steady-state delta re-optimization" in text


class TestBenchCli:
    def test_json_mode(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            [
                "bench",
                "--smoke",
                "--json",
                "--min-speedup",
                "0",
                "--max-delta-ms",
                "0",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["schema"] == "repro-bench/1"
        assert json.loads(out.read_text()) == printed

    def test_impossible_gate_fails(self, capsys):
        code = main(["bench", "--smoke", "--min-speedup", "1e9"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().err

    def test_impossible_delta_gate_fails(self, capsys):
        code = main(
            [
                "bench",
                "--smoke",
                "--min-speedup",
                "0",
                "--max-delta-ms",
                "1e-9",
            ]
        )
        assert code == 1
        assert "delta" in capsys.readouterr().err

    def test_committed_baseline_is_current_schema(self):
        with open("BENCH_model.json", encoding="utf-8") as fh:
            baseline = json.load(fh)
        assert baseline["schema"] == "repro-bench/1"
        assert baseline["speedups"]["search/exhaustive_fast"] >= 5.0
        assert baseline["delta"]["steady_state_ms"] < 1.0
        assert baseline["delta"]["speedups"]["vs_full_cold"] > 10
