"""Unit tests for the per-node bandwidth arbitration (assumptions 4/5)."""

import numpy as np
import pytest

from repro.core.bwshare import (
    NodeShare,
    RemainderRule,
    share_node_bandwidth,
    share_node_bandwidth_batch,
)
from repro.errors import ModelError


class TestBasics:
    def test_all_satisfied_when_capacity_ample(self):
        share = share_node_bandwidth(100.0, 8, [1.0, 2.0, 3.0])
        assert np.allclose(share.allocated, [1.0, 2.0, 3.0])
        assert share.leftover == pytest.approx(94.0)

    def test_baseline_is_capacity_over_cores(self):
        share = share_node_bandwidth(32.0, 8, [20.0])
        assert share.baseline == 4.0

    def test_table1_node_arithmetic(self):
        # 3 mem threads at 20 GB/s, 5 compute threads at 1 GB/s, 32 GB/s.
        demands = [20.0] * 3 + [1.0] * 5
        share = share_node_bandwidth(32.0, 8, demands)
        # compute threads fully satisfied at 1 each
        assert np.allclose(share.allocated[3:], 1.0)
        # memory threads get baseline 4 + 5 remainder = 9 each
        assert np.allclose(share.allocated[:3], 9.0)
        assert share.consumed == pytest.approx(32.0)

    def test_table2_node_arithmetic(self):
        demands = [20.0] * 6 + [1.0] * 2
        share = share_node_bandwidth(32.0, 8, demands)
        assert np.allclose(share.allocated[:6], 5.0)
        assert np.allclose(share.allocated[6:], 1.0)

    def test_empty_demands(self):
        share = share_node_bandwidth(32.0, 8, [])
        assert share.consumed == 0.0
        assert share.leftover == 32.0

    def test_zero_capacity(self):
        share = share_node_bandwidth(0.0, 8, [5.0, 5.0])
        assert np.allclose(share.allocated, 0.0)


class TestWaterFilling:
    def test_capped_grant_redistributes(self):
        # One thread wants barely above baseline; the freed remainder
        # flows to the hungrier thread in a second pass.
        share = share_node_bandwidth(10.0, 2, [6.0, 100.0])
        # baseline 5 each; thread 0 unmet 1, thread 1 unmet 95.
        # proportional split of the 0 remaining... capacity exhausted by
        # baseline; actually baseline sums to 10, nothing remains.
        assert share.consumed == pytest.approx(10.0)
        assert share.allocated[0] == pytest.approx(5.0)

    def test_redistribution_after_cap(self):
        # capacity 12, 2 cores -> baseline 6.  Demands 7 and 100.
        # Initial: min(7,6)=6, min(100,6)=6 -> remaining 0.
        share = share_node_bandwidth(12.0, 2, [7.0, 100.0])
        assert share.consumed == pytest.approx(12.0)

    def test_idle_core_share_joins_remainder(self):
        # 2 threads on a 4-core node: baseline is capacity/4, but the two
        # idle cores' share must still be handed out.
        share = share_node_bandwidth(40.0, 4, [30.0, 30.0])
        assert share.consumed == pytest.approx(40.0)
        assert np.allclose(share.allocated, 20.0)

    def test_never_exceeds_demand(self):
        share = share_node_bandwidth(100.0, 4, [1.0, 2.0])
        assert np.all(share.allocated <= np.array([1.0, 2.0]) + 1e-12)

    def test_full_consumption_when_over_demanded(self):
        share = share_node_bandwidth(32.0, 8, [10.0] * 8)
        assert share.consumed == pytest.approx(32.0)

    def test_even_vs_proportional_rule(self):
        # Unequal unmet demands distinguish the rules.
        demands = [8.0, 20.0]
        prop = share_node_bandwidth(
            12.0, 2, demands, rule=RemainderRule.PROPORTIONAL
        )
        even = share_node_bandwidth(
            12.0, 2, demands, rule=RemainderRule.EVEN
        )
        # baseline 6 each; nothing remains -> identical here
        assert np.allclose(prop.allocated, even.allocated)
        # now capacity above baseline: 16 total, baseline 8 -> thread 0
        # satisfied at 8... demands [8,20]: alloc [8,8], remaining 0.
        prop2 = share_node_bandwidth(
            18.0, 2, demands, rule=RemainderRule.PROPORTIONAL
        )
        even2 = share_node_bandwidth(
            18.0, 2, demands, rule=RemainderRule.EVEN
        )
        # baseline 9: thread0 capped at 8, thread1 9; remaining 1 goes
        # fully to thread1 under both rules (only unsatisfied thread).
        assert prop2.allocated[1] == pytest.approx(10.0)
        assert even2.allocated[1] == pytest.approx(10.0)

    def test_rules_differ_with_multiple_unsatisfied(self):
        # 3 cores, capacity 30, demands 11, 12, 30.
        # baseline 10: alloc [10+?, 10+?, 10+?]... initial [10,10,10],
        # remaining 0 -> same.  Use capacity 36 instead:
        prop = share_node_bandwidth(
            36.0, 3, [13.0, 14.0, 30.0], rule=RemainderRule.PROPORTIONAL
        )
        even = share_node_bandwidth(
            36.0, 3, [13.0, 14.0, 30.0], rule=RemainderRule.EVEN
        )
        # baseline 12: initial [12,12,12], remaining 0. Capacity 45:
        prop = share_node_bandwidth(
            45.0, 3, [13.0, 14.0, 30.0], rule=RemainderRule.PROPORTIONAL
        )
        even = share_node_bandwidth(
            45.0, 3, [13.0, 14.0, 30.0], rule=RemainderRule.EVEN
        )
        # baseline 15 -> initial [13,14,15], remaining 3, only thread 2
        # unsatisfied under both rules -> both give it all 3.
        assert prop.allocated[2] == pytest.approx(18.0)
        assert even.allocated[2] == pytest.approx(18.0)
        # a case that genuinely differs: baseline small, two unsatisfied
        # with different unmet demand.
        prop = share_node_bandwidth(
            20.0, 2, [11.0, 29.0], rule=RemainderRule.PROPORTIONAL
        )
        even = share_node_bandwidth(
            20.0, 2, [11.0, 29.0], rule=RemainderRule.EVEN
        )
        # baseline 10 -> initial [10,10], remaining 0; same again.
        # Use 1 thread idle: 2 cores, 1 thread.
        prop = share_node_bandwidth(
            20.0, 4, [11.0, 29.0], rule=RemainderRule.PROPORTIONAL
        )
        even = share_node_bandwidth(
            20.0, 4, [11.0, 29.0], rule=RemainderRule.EVEN
        )
        # baseline 5 -> initial [5,5], remaining 10.
        # proportional: unmet 6 and 24 -> +2 and +8 -> [7, 13]
        # even: +5 each -> [10, 10] -> thread0 capped at 11?? no: +5 < 6.
        assert prop.allocated == pytest.approx([7.0, 13.0])
        assert even.allocated == pytest.approx([10.0, 10.0])


class TestValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ModelError):
            share_node_bandwidth(-1.0, 8, [1.0])

    def test_zero_cores_rejected(self):
        with pytest.raises(ModelError):
            share_node_bandwidth(10.0, 0, [1.0])

    def test_negative_demand_rejected(self):
        with pytest.raises(ModelError):
            share_node_bandwidth(10.0, 4, [-1.0])

    def test_oversubscription_rejected(self):
        with pytest.raises(ModelError):
            share_node_bandwidth(10.0, 2, [1.0, 1.0, 1.0])

    def test_2d_demands_rejected(self):
        with pytest.raises(ModelError):
            share_node_bandwidth(10.0, 4, np.ones((2, 2)))


class TestBatch:
    """The closed-form batched water-fill vs the scalar reference."""

    def _scalar_groups(self, capacity, num_cores, demands, counts, rule):
        """Expand groups to threads, run the scalar share, re-fold."""
        per_thread = [
            d for d, c in zip(demands, counts) for _ in range(int(c))
        ]
        if not per_thread:
            return np.zeros(len(demands))
        share = share_node_bandwidth(
            capacity, num_cores, per_thread, rule=rule
        )
        out, i = np.zeros(len(demands)), 0
        for g, c in enumerate(counts):
            out[g] = share.allocated[i : i + int(c)].sum()
            i += int(c)
        return out

    @pytest.mark.parametrize("rule", list(RemainderRule))
    def test_matches_scalar_expansion(self, rule):
        rng = np.random.default_rng(42)
        for _ in range(200):
            num_cores = int(rng.integers(1, 9))
            groups = int(rng.integers(1, 5))
            capacity = np.array([float(rng.uniform(0.0, 64.0))])
            demands = rng.uniform(0.0, 25.0, size=groups)
            counts = np.zeros((1, groups))
            for _ in range(int(rng.integers(num_cores + 1))):
                counts[0, int(rng.integers(groups))] += 1
            batched = share_node_bandwidth_batch(
                capacity, num_cores, demands, counts, rule=rule
            )
            scalar = self._scalar_groups(
                capacity[0], num_cores, demands, counts[0], rule
            )
            assert np.max(np.abs(batched[0] - scalar)) <= 1e-9

    @pytest.mark.parametrize("rule", list(RemainderRule))
    def test_zero_capacity(self, rule):
        out = share_node_bandwidth_batch(
            np.array([0.0]),
            4,
            np.array([5.0, 1.0]),
            np.array([[2.0, 2.0]]),
            rule=rule,
        )
        assert np.allclose(out, 0.0)

    @pytest.mark.parametrize("rule", list(RemainderRule))
    def test_all_zero_demands(self, rule):
        out = share_node_bandwidth_batch(
            np.array([32.0]),
            4,
            np.array([0.0, 0.0]),
            np.array([[2.0, 2.0]]),
            rule=rule,
        )
        assert np.allclose(out, 0.0)

    @pytest.mark.parametrize("rule", list(RemainderRule))
    def test_demands_below_baseline_fully_satisfied(self, rule):
        # baseline 8; every demand under it -> grant = demand * count.
        out = share_node_bandwidth_batch(
            np.array([32.0]),
            4,
            np.array([1.0, 3.0]),
            np.array([[2.0, 2.0]]),
            rule=rule,
        )
        assert np.allclose(out[0], [2.0, 6.0])

    def test_mixed_satisfied_and_unsatisfied(self):
        # baseline 4; group 0 satisfied at 1, group 1 unmet 16 each.
        # remaining = 32 - (5*1 + 3*4) = 15 shared by 3 threads.
        out = share_node_bandwidth_batch(
            np.array([32.0]),
            8,
            np.array([1.0, 20.0]),
            np.array([[5.0, 3.0]]),
            rule=RemainderRule.PROPORTIONAL,
        )
        assert np.allclose(out[0], [5.0, 3 * 9.0])
        even = share_node_bandwidth_batch(
            np.array([32.0]),
            8,
            np.array([1.0, 20.0]),
            np.array([[5.0, 3.0]]),
            rule=RemainderRule.EVEN,
        )
        assert np.allclose(even[0], [5.0, 3 * 9.0])

    def test_batch_rows_are_independent(self):
        out = share_node_bandwidth_batch(
            np.array([32.0, 0.0, 64.0]),
            8,
            np.array([20.0]),
            np.array([[3.0], [3.0], [3.0]]),
            rule=RemainderRule.EVEN,
        )
        assert np.allclose(out[:, 0], [32.0, 0.0, 60.0])

    def test_validation(self):
        cap = np.array([10.0])
        with pytest.raises(ModelError):
            share_node_bandwidth_batch(
                cap, 0, np.array([1.0]), np.array([[1.0]])
            )
        with pytest.raises(ModelError):
            share_node_bandwidth_batch(
                np.array([-1.0]), 4, np.array([1.0]), np.array([[1.0]])
            )
        with pytest.raises(ModelError):
            share_node_bandwidth_batch(
                cap, 4, np.array([-1.0]), np.array([[1.0]])
            )
        with pytest.raises(ModelError):
            share_node_bandwidth_batch(
                cap, 2, np.array([1.0]), np.array([[3.0]])
            )
        with pytest.raises(ModelError):
            share_node_bandwidth_batch(
                cap, 4, np.array([1.0, 2.0]), np.array([[1.0]])
            )
