"""SARIF reporter and baseline-ratchet tests.

The SARIF checks pin the structural subset of SARIF 2.1.0 the reporter
emits (schema reference, driver rule catalogue, result locations); when
``jsonschema`` is installed locally the same document is validated
against a hand-written subset schema of the published standard (the CI
image does not carry jsonschema, so that test skips there).
"""

import argparse
import json
from pathlib import Path

import pytest

from repro.lint.baseline import (
    apply_baseline,
    baseline_key,
    load_baseline,
    write_baseline,
)
from repro.lint.cli import add_check_parser, rule_catalogue, run_check
from repro.lint.engine import Severity, Violation
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    violations_to_sarif,
)
from repro.errors import LintError


def make_violation(
    file="src/repro/x.py",
    line=10,
    rule_id="LOCK001",
    message="something",
    severity=Severity.ERROR,
):
    return Violation(
        file=file,
        line=line,
        rule_id=rule_id,
        message=message,
        severity=severity,
    )


class TestSarif:
    def test_document_structure(self):
        doc = json.loads(
            violations_to_sarif(
                [
                    make_violation(),
                    make_violation(
                        line=20,
                        rule_id="ASYNC001",
                        severity=Severity.ERROR,
                    ),
                    make_violation(
                        line=30,
                        rule_id="OBS003",
                        severity=Severity.WARNING,
                    ),
                ]
            )
        )
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA_URI
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == ["LOCK001", "ASYNC001", "OBS003"]
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error",
                "warning",
            )
        assert len(run["results"]) == 3
        result = run["results"][0]
        assert result["ruleId"] == "LOCK001"
        assert result["level"] == "error"
        assert (
            driver["rules"][result["ruleIndex"]]["id"] == result["ruleId"]
        )
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/repro/x.py"
        assert loc["region"]["startLine"] == 10

    def test_warning_maps_to_warning_level(self):
        doc = json.loads(
            violations_to_sarif(
                [make_violation(severity=Severity.WARNING)]
            )
        )
        assert doc["runs"][0]["results"][0]["level"] == "warning"

    def test_empty_run_still_valid_shape(self):
        doc = json.loads(violations_to_sarif([]))
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []

    def test_validates_against_subset_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        # A hand-written subset of the published SARIF 2.1.0 schema
        # covering every property the reporter emits.
        schema = {
            "type": "object",
            "required": ["$schema", "version", "runs"],
            "properties": {
                "version": {"const": "2.1.0"},
                "runs": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["tool", "results"],
                        "properties": {
                            "tool": {
                                "type": "object",
                                "required": ["driver"],
                                "properties": {
                                    "driver": {
                                        "type": "object",
                                        "required": ["name"],
                                        "properties": {
                                            "rules": {
                                                "type": "array",
                                                "items": {
                                                    "type": "object",
                                                    "required": ["id"],
                                                },
                                            }
                                        },
                                    }
                                },
                            },
                            "results": {
                                "type": "array",
                                "items": {
                                    "type": "object",
                                    "required": ["message"],
                                    "properties": {
                                        "level": {
                                            "enum": [
                                                "none",
                                                "note",
                                                "warning",
                                                "error",
                                            ]
                                        },
                                        "message": {
                                            "type": "object",
                                            "required": ["text"],
                                        },
                                        "locations": {"type": "array"},
                                    },
                                },
                            },
                        },
                    },
                },
            },
        }
        doc = json.loads(
            violations_to_sarif(
                [make_violation(), make_violation(rule_id="DET001")]
            )
        )
        jsonschema.validate(doc, schema)


class TestBaseline:
    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        violations = [
            make_violation(),
            make_violation(line=20),
            make_violation(file="src/y.py", rule_id="DET001"),
        ]
        counts = write_baseline(violations, path)
        assert counts == {
            "src/repro/x.py::LOCK001": 2,
            "src/y.py::DET001": 1,
        }
        assert load_baseline(path) == counts

    def test_apply_suppresses_known_debt(self):
        violations = [make_violation(), make_violation(line=20)]
        baseline = {baseline_key(violations[0]): 2}
        new, suppressed, fixed = apply_baseline(violations, baseline)
        assert new == [] and suppressed == 2 and fixed == []

    def test_apply_reports_growth_beyond_count(self):
        violations = [
            make_violation(),
            make_violation(line=20),
            make_violation(line=30),
        ]
        baseline = {baseline_key(violations[0]): 2}
        new, suppressed, fixed = apply_baseline(violations, baseline)
        assert [v.line for v in new] == [30] and suppressed == 2

    def test_apply_reports_shrunken_keys(self):
        violations = [make_violation()]
        baseline = {
            baseline_key(violations[0]): 2,
            "gone.py::DET001": 1,
        }
        new, suppressed, fixed = apply_baseline(violations, baseline)
        assert new == [] and suppressed == 1
        assert fixed == ["gone.py::DET001", baseline_key(violations[0])]

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("[]")
        with pytest.raises(LintError):
            load_baseline(path)
        with pytest.raises(LintError):
            load_baseline(tmp_path / "missing.json")


def parse_check_args(argv):
    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command")
    add_check_parser(sub)
    return parser.parse_args(["check", *argv])


class TestCheckCommand:
    DIRTY = "def f(x=[]):\n    pass\n"  # one DEF001 error

    def setup_tree(self, tmp_path):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(self.DIRTY)
        return src

    def test_sarif_output_written(self, tmp_path, monkeypatch, capsys):
        src = self.setup_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        args = parse_check_args(
            [str(src), "--sarif", "--no-invariants", "--no-cache"]
        )
        assert run_check(args) == 1
        doc = json.loads((tmp_path / "lint.sarif").read_text())
        assert doc["runs"][0]["results"][0]["ruleId"] == "DEF001"

    def test_update_baseline_then_clean_run(
        self, tmp_path, monkeypatch, capsys
    ):
        src = self.setup_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        update = parse_check_args(
            [str(src), "--update-baseline", "--no-invariants", "--no-cache"]
        )
        assert run_check(update) == 0
        assert (tmp_path / "lint-baseline.json").is_file()

        check = parse_check_args(
            [str(src), "--no-invariants", "--no-cache"]
        )
        assert run_check(check) == 0
        out = capsys.readouterr().out
        assert "baselined finding(s) hidden" in out

    def test_baseline_does_not_hide_growth(
        self, tmp_path, monkeypatch, capsys
    ):
        src = self.setup_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        run_check(
            parse_check_args(
                [str(src), "--update-baseline", "--no-invariants",
                 "--no-cache"]
            )
        )
        (src / "mod.py").write_text(
            self.DIRTY + "def g(y={}):\n    pass\n"
        )
        check = parse_check_args(
            [str(src), "--no-invariants", "--no-cache"]
        )
        assert run_check(check) == 1
        out = capsys.readouterr().out
        assert "DEF001" in out

    def test_no_baseline_flag_reports_everything(
        self, tmp_path, monkeypatch, capsys
    ):
        src = self.setup_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        run_check(
            parse_check_args(
                [str(src), "--update-baseline", "--no-invariants",
                 "--no-cache"]
            )
        )
        check = parse_check_args(
            [str(src), "--no-baseline", "--no-invariants", "--no-cache"]
        )
        assert run_check(check) == 1

    def test_catalogue_contains_project_rules(self):
        ids = {rule_id for rule_id, _, _ in rule_catalogue()}
        assert {
            "ASYNC001",
            "LOCK002",
            "THRD001",
            "DET001",
            "OBS003",
        } <= ids
