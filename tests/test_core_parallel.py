"""Process-parallel scoring: determinism, degradation, pool lifecycle.

The contract under test is byte-identity: for any worker count and any
start method, the pooled scoring path must produce exactly the bytes
the serial kernel produces, and every failure mode must degrade to the
serial path instead of corrupting or crashing a search.
"""

import multiprocessing

import numpy as np
import pytest

from repro.core.candidates import CandidateSpace
from repro.core.fasteval import ModelTables, batched_app_gflops
from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import (
    ExhaustiveSearch,
    GreedySearch,
    HillClimbSearch,
    OptimizerConfig,
)
from repro.core import parallel
from repro.core.parallel import (
    DEFAULT_MIN_BATCH,
    WorkerPool,
    chunk_bounds,
    default_workers,
    get_pool,
    parallel_app_gflops,
    pool_stats,
    release_pool,
    shutdown_pools,
)
from repro.errors import OversubscriptionError, ParallelError
from repro.obs import capture

START_METHODS = [
    m
    for m in ("fork", "spawn")
    if m in multiprocessing.get_all_start_methods()
]


@pytest.fixture(autouse=True)
def _clean_pools():
    """Every test starts and ends with an empty pool registry."""
    shutdown_pools()
    yield
    shutdown_pools()


@pytest.fixture
def workload(paper_machine, paper_apps):
    """Tables plus the full 165-candidate symmetric batch."""
    model = NumaPerformanceModel()
    tables = ModelTables.build(
        paper_machine, paper_apps, model.remainder_rule
    )
    counts = CandidateSpace(
        paper_machine, len(paper_apps)
    ).symmetric_tensor()
    return model, tables, counts


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_earlier_chunks(self):
        bounds = chunk_bounds(10, 4)
        sizes = [hi - lo for lo, hi in bounds]
        assert sizes == [3, 3, 2, 2]

    def test_fewer_items_than_workers(self):
        # N < workers: one item per chunk, no empty chunks.
        assert chunk_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_single_worker_takes_everything(self):
        assert chunk_bounds(7, 1) == [(0, 7)]

    def test_empty_batch(self):
        assert chunk_bounds(0, 4) == []

    @pytest.mark.parametrize("n", [1, 5, 16, 165, 1000])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 7, 16])
    def test_contiguous_ordered_cover(self, n, workers):
        bounds = chunk_bounds(n, workers)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    def test_errors(self):
        with pytest.raises(ParallelError):
            chunk_bounds(-1, 4)
        with pytest.raises(ParallelError):
            chunk_bounds(10, 0)
        with pytest.raises(ParallelError):
            chunk_bounds(10, -2)


class TestDefaultWorkers:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.WORKERS_ENV, raising=False)
        assert default_workers() == 0

    def test_env_sets_count(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "4")
        assert default_workers() == 4

    @pytest.mark.parametrize("value", ["notanint", "-2", ""])
    def test_garbage_is_serial(self, monkeypatch, value):
        monkeypatch.setenv(parallel.WORKERS_ENV, value)
        assert default_workers() == 0

    def test_model_picks_up_env(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "3")
        assert NumaPerformanceModel().workers == 3
        assert NumaPerformanceModel(workers=0).workers == 0


class TestKernelParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_byte_identical_to_serial(self, workload, workers):
        model, tables, counts = workload
        serial = batched_app_gflops(tables, counts, model.remainder_rule)
        pooled = parallel_app_gflops(
            tables, counts, model.remainder_rule, workers
        )
        assert pooled is not None
        assert pooled.tobytes() == serial.tobytes()

    @pytest.mark.parametrize("method", START_METHODS)
    def test_start_methods_byte_identical(self, workload, method):
        model, tables, counts = workload
        serial = batched_app_gflops(tables, counts, model.remainder_rule)
        pool = WorkerPool(2, start_method=method)
        try:
            pooled = pool.score(tables, counts, model.remainder_rule)
        finally:
            pool.close()
        assert pooled.tobytes() == serial.tobytes()

    def test_more_workers_than_candidates(self, workload):
        model, tables, counts = workload
        small = counts[:3]
        serial = batched_app_gflops(tables, small, model.remainder_rule)
        pooled = parallel_app_gflops(
            tables, small, model.remainder_rule, 8
        )
        assert pooled.tobytes() == serial.tobytes()

    def test_uneven_batch_byte_identical(self, workload):
        model, tables, counts = workload
        odd = counts[:7]  # 7 % 4 != 0
        serial = batched_app_gflops(tables, odd, model.remainder_rule)
        pooled = parallel_app_gflops(tables, odd, model.remainder_rule, 4)
        assert pooled.tobytes() == serial.tobytes()

    def test_empty_batch_skips_the_pool(self, workload):
        model, tables, counts = workload
        pool = WorkerPool(2)
        try:
            out = pool.score(
                tables, counts[:0], model.remainder_rule
            )
            assert out.shape == (0, tables.intensity.shape[0])
            # Nothing to score: the pool must not even spawn.
            assert pool.generation == 0
            assert not pool.alive
        finally:
            pool.close()

    def test_oversubscription_raises_like_serial(self, workload):
        model, tables, counts = workload
        bad = counts.copy()
        bad[0, 0, 0] = 100  # node 0 has 8 cores
        pool = WorkerPool(2)
        try:
            with pytest.raises(OversubscriptionError):
                pool.score(tables, bad, model.remainder_rule)
            with pytest.raises(OversubscriptionError):
                batched_app_gflops(tables, bad, model.remainder_rule)
        finally:
            pool.close()

    def test_repeated_calls_reuse_the_processes(self, workload):
        model, tables, counts = workload
        pool = WorkerPool(2)
        try:
            first = pool.score(tables, counts, model.remainder_rule)
            second = pool.score(tables, counts, model.remainder_rule)
            assert pool.generation == 1
            assert pool.calls == 2
            assert first.tobytes() == second.tobytes()
        finally:
            pool.close()


class TestSearchDeterminism:
    @pytest.fixture
    def serial_results(self, paper_machine, paper_apps):
        return {
            name: cls(model=NumaPerformanceModel(workers=0)).search(
                paper_machine, paper_apps
            )
            for name, cls in [
                ("exhaustive", ExhaustiveSearch),
                ("greedy", GreedySearch),
                ("hillclimb", HillClimbSearch),
            ]
        }

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("exhaustive", ExhaustiveSearch),
            ("greedy", GreedySearch),
            ("hillclimb", HillClimbSearch),
        ],
    )
    def test_searches_byte_identical(
        self, paper_machine, paper_apps, serial_results, workers, name, cls
    ):
        model = NumaPerformanceModel(
            workers=workers, parallel_min_batch=1
        )
        res = cls(model=model).search(paper_machine, paper_apps)
        serial = serial_results[name]
        assert res.score == serial.score
        assert (
            res.allocation.counts.tobytes()
            == serial.allocation.counts.tobytes()
        )
        assert res.evaluations == serial.evaluations

    @pytest.mark.parametrize("method", START_METHODS)
    def test_exhaustive_identical_under_both_start_methods(
        self, paper_machine, paper_apps, serial_results, method
    ):
        # Pre-seed the registry so the search routes through a pool
        # using this start method.
        assert get_pool(2, start_method=method) is not None
        model = NumaPerformanceModel(workers=2, parallel_min_batch=1)
        res = ExhaustiveSearch(model=model).search(
            paper_machine, paper_apps
        )
        serial = serial_results["exhaustive"]
        assert res.score == serial.score
        assert (
            res.allocation.counts.tobytes()
            == serial.allocation.counts.tobytes()
        )

    def test_config_plumbs_workers(self, paper_machine, paper_apps):
        cfg = OptimizerConfig(workers=2, parallel_min_batch=1)
        search = ExhaustiveSearch(config=cfg)
        assert search.model.workers == 2
        assert search.model.parallel_min_batch == 1
        res = search.search(paper_machine, paper_apps)
        assert res.evaluations == 165
        assert 2 in pool_stats()

    def test_min_batch_keeps_small_rounds_serial(
        self, paper_machine, paper_apps
    ):
        model = NumaPerformanceModel(workers=2)  # default min batch
        assert model.parallel_min_batch == DEFAULT_MIN_BATCH
        ExhaustiveSearch(model=model).search(paper_machine, paper_apps)
        # 165 candidates < DEFAULT_MIN_BATCH: no pool was ever spawned.
        assert 2 not in pool_stats()

    def test_cache_merges_parallel_rows(self, paper_machine, paper_apps):
        model = NumaPerformanceModel(workers=2, parallel_min_batch=1)
        space = CandidateSpace(paper_machine, len(paper_apps))
        counts = space.symmetric_tensor()
        first = model.predict_scores(paper_machine, paper_apps, counts)
        with capture() as cap:
            second = model.predict_scores(
                paper_machine, paper_apps, counts
            )
        assert first.tobytes() == second.tobytes()
        # Every row the pool scored came back through the memo cache.
        assert cap.metrics.counter("model/cache_hits").value > 0
        assert cap.metrics.counter("model/cache_misses").value == 0


class TestDegradation:
    def test_no_shared_memory_falls_back(self, workload, monkeypatch):
        model, tables, counts = workload
        monkeypatch.setattr(
            parallel, "shared_memory_available", lambda: False
        )
        with capture() as cap:
            pooled = parallel_app_gflops(
                tables, counts, model.remainder_rule, 4
            )
        assert pooled is None
        assert cap.metrics.counter("parallel/fallbacks").value == 1

    def test_search_survives_missing_shared_memory(
        self, paper_machine, paper_apps, monkeypatch
    ):
        serial = ExhaustiveSearch(
            model=NumaPerformanceModel(workers=0)
        ).search(paper_machine, paper_apps)
        monkeypatch.setattr(
            parallel, "shared_memory_available", lambda: False
        )
        model = NumaPerformanceModel(workers=4, parallel_min_batch=1)
        res = ExhaustiveSearch(model=model).search(
            paper_machine, paper_apps
        )
        assert res.score == serial.score
        assert (
            res.allocation.counts.tobytes()
            == serial.allocation.counts.tobytes()
        )

    def test_worker_death_falls_back(self, workload):
        model, tables, counts = workload
        pool = get_pool(2)
        assert (
            pool.score(tables, counts, model.remainder_rule) is not None
        )
        for proc in pool._procs:
            proc.terminate()
            proc.join()
        with capture() as cap:
            pooled = parallel_app_gflops(
                tables, counts, model.remainder_rule, 2
            )
        # get_pool saw the dead pool was not closed yet, handed it out,
        # score() detected the dead workers and the caller fell back.
        assert pooled is None
        assert cap.metrics.counter("parallel/fallbacks").value == 1
        assert pool.closed  # score() closed the broken pool

    def test_registry_replaces_a_crashed_pool(self, workload):
        model, tables, counts = workload
        first = get_pool(2)
        first.score(tables, counts, model.remainder_rule)
        for proc in first._procs:
            proc.terminate()
            proc.join()
        assert parallel_app_gflops(
            tables, counts, model.remainder_rule, 2
        ) is None
        # Next request gets a fresh pool that works again.
        serial = batched_app_gflops(tables, counts, model.remainder_rule)
        pooled = parallel_app_gflops(
            tables, counts, model.remainder_rule, 2
        )
        assert pooled is not None
        assert pooled.tobytes() == serial.tobytes()
        assert get_pool(2) is not first

    def test_closed_pool_refuses_to_score(self, workload):
        model, tables, counts = workload
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(ParallelError):
            pool.score(tables, counts, model.remainder_rule)


class TestPoolRegistry:
    def test_zero_workers_means_no_pool(self):
        assert get_pool(0) is None
        assert get_pool(-1) is None

    def test_pool_is_shared_per_worker_count(self):
        assert get_pool(2) is get_pool(2)
        assert get_pool(2) is not get_pool(3)

    def test_release_closes_and_drops(self, workload):
        model, tables, counts = workload
        pool = get_pool(2)
        pool.score(tables, counts, model.remainder_rule)
        release_pool(2)
        assert pool.closed
        assert 2 not in pool_stats()

    def test_shutdown_closes_everything(self):
        pools = [get_pool(2), get_pool(3)]
        shutdown_pools()
        assert pool_stats() == {}
        assert all(p.closed for p in pools)

    def test_stats_schema(self, workload):
        model, tables, counts = workload
        pool = get_pool(2)
        pool.score(tables, counts, model.remainder_rule)
        stats = pool_stats()[2]
        assert stats == {"generation": 1, "calls": 1, "alive": True}


class TestObservability:
    def test_metrics_and_span(self, workload):
        model, tables, counts = workload
        with capture() as cap:
            pool = get_pool(2)
            pooled = pool.score(tables, counts, model.remainder_rule)
            snap_live = cap.metrics.snapshot()
            release_pool(2)
        assert pooled is not None
        assert snap_live["gauge/parallel/workers"] == 2
        snap = cap.metrics.snapshot()
        assert snap["gauge/parallel/workers"] == 0  # released
        assert snap["counter/parallel/chunks"] == 2
        assert snap["hist/parallel/chunk_ms/count"] == 2
        spans = cap.tracer.filter(name="parallel/search")
        assert len(spans) == 1
        assert spans[0].attrs["workers"] == 2
        assert spans[0].attrs["evaluations"] == len(counts)
        assert spans[0].attrs["chunks"] == 2

    def test_search_span_nests_parallel_span(
        self, paper_machine, paper_apps
    ):
        model = NumaPerformanceModel(workers=2, parallel_min_batch=1)
        with capture() as cap:
            ExhaustiveSearch(model=model).search(
                paper_machine, paper_apps
            )
        assert cap.tracer.filter(name="optimizer/exhaustive")
        assert cap.tracer.filter(name="parallel/search")
