"""General Python-hygiene rules tuned to this codebase's failure modes.

These are the classic bug classes that corrupt *numbers* rather than
crash: a mutable default accumulating state across model evaluations, a
swallowed exception hiding a failed calibration, and wall-clock
``time.time()`` measuring durations that the observability layer
expects on the monotonic ``perf_counter`` clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = [
    "MutableDefaultArgument",
    "BareExcept",
    "SwallowedException",
    "WallClockDuration",
]

#: Constructor names whose call as a default is as mutable as a display.
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict"}


@register
class MutableDefaultArgument(Rule):
    """``def f(x=[])`` — the default is shared across all calls."""

    rule_id = "DEF001"
    severity = Severity.ERROR
    summary = (
        "mutable default argument (list/dict/set) is shared across "
        "calls; default to None and construct inside"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        ctx,
                        default,
                        f"function '{name}' has a mutable default "
                        f"argument; use None and build it in the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _MUTABLE_CALLS
        return False


@register
class BareExcept(Rule):
    """``except:`` catches SystemExit/KeyboardInterrupt too."""

    rule_id = "EXC001"
    severity = Severity.ERROR
    summary = (
        "bare `except:` catches SystemExit and KeyboardInterrupt; "
        "name the exception (ReproError for library failures)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare `except:`; catch a named exception class",
                )


@register
class SwallowedException(Rule):
    """``except ...: pass`` hides the failure entirely."""

    rule_id = "EXC002"
    severity = Severity.WARNING
    summary = (
        "exception handler swallows the error (body is only "
        "pass/...); log, re-raise, or narrow it"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if all(self._is_noop(stmt) for stmt in node.body):
                yield self.violation(
                    ctx,
                    node,
                    "exception caught and discarded; a silent failure "
                    "here corrupts every downstream number",
                )

    @staticmethod
    def _is_noop(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ) and stmt.value.value is Ellipsis


@register
class WallClockDuration(Rule):
    """``time.time()`` — NTP steps make wall-clock deltas lie."""

    rule_id = "TIME001"
    severity = Severity.WARNING
    summary = (
        "time.time() is not monotonic; use time.perf_counter() for "
        "durations (noqa for genuine wall-clock timestamps)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        from_time_import = any(
            isinstance(node, ast.ImportFrom)
            and node.module == "time"
            and any(alias.name == "time" for alias in node.names)
            for node in ctx.walk()
        )
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_attr_form = (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            )
            is_name_form = (
                from_time_import
                and isinstance(func, ast.Name)
                and func.id == "time"
            )
            if is_attr_form or is_name_form:
                yield self.violation(
                    ctx,
                    node,
                    "time.time() used; durations belong on "
                    "time.perf_counter() (the obs tracer's clock)",
                )
