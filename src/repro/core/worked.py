"""Row-by-row worked-example breakdowns in the style of Tables I and II.

Tables I and II of the paper show the model arithmetic step by step for a
single NUMA node of a symmetric scenario (every node runs the same thread
composition of NUMA-perfect applications).  :func:`worked_example`
recomputes exactly those rows, so the reproduction can print a table that
lines up 1:1 with the paper — and the test suite can pin every
intermediate value, not just the total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.allocation import ThreadAllocation
from repro.core.bwshare import RemainderRule
from repro.core.model import NumaPerformanceModel
from repro.core.spec import AppSpec, Placement
from repro.errors import ModelError
from repro.machine.topology import MachineTopology

__all__ = ["AppColumn", "WorkedExample", "worked_example"]


@dataclass(frozen=True, slots=True)
class AppColumn:
    """One application class's column of the worked table."""

    name: str
    arithmetic_intensity: float
    instances: int
    threads_per_node: int
    peak_bw_per_thread: float
    peak_bw_per_instance: float
    total_bw_all_instances: float
    allocated_baseline_per_thread: float
    still_required_per_thread: float
    remainder_per_thread: float
    total_per_thread: float
    gflops_per_thread: float
    gflops_per_application: float


@dataclass(frozen=True)
class WorkedExample:
    """All rows of a Table I/II style breakdown (one NUMA node + totals)."""

    columns: tuple[AppColumn, ...]
    total_required_bandwidth: float
    baseline_per_thread: float
    allocated_node_bandwidth: float
    remaining_node_bandwidth: float
    still_required_bandwidth: float
    total_gflops_per_node: float
    num_nodes: int

    @property
    def total_gflops(self) -> float:
        """Machine-wide GFLOPS (node total times node count)."""
        return self.total_gflops_per_node * self.num_nodes

    def render(self) -> str:
        """Format the breakdown as a text table mirroring the paper."""
        headers = [""] + [c.name for c in self.columns]
        rows: list[tuple[str, list[str]]] = [
            (
                "arithmetic intensity (AI)",
                [f"{c.arithmetic_intensity:g}" for c in self.columns],
            ),
            ("number of instances", [f"{c.instances}" for c in self.columns]),
            (
                "threads per NUMA node",
                [f"{c.threads_per_node}" for c in self.columns],
            ),
            (
                "peak memory bandwidth per thread",
                [f"{c.peak_bw_per_thread:g}" for c in self.columns],
            ),
            (
                "peak memory bandwidth per instance",
                [f"{c.peak_bw_per_instance:g}" for c in self.columns],
            ),
            (
                "total memory bandwidth of all instances",
                [f"{c.total_bw_all_instances:g}" for c in self.columns],
            ),
            (
                "total required bandwidth",
                [f"{self.total_required_bandwidth:g}"]
                + [""] * (len(self.columns) - 1),
            ),
            (
                "baseline GB/s per thread",
                [f"{self.baseline_per_thread:g}"]
                + [""] * (len(self.columns) - 1),
            ),
            (
                "allocated baseline per thread",
                [
                    f"{c.allocated_baseline_per_thread:g}"
                    for c in self.columns
                ],
            ),
            (
                "allocated node GB/s",
                [f"{self.allocated_node_bandwidth:g}"]
                + [""] * (len(self.columns) - 1),
            ),
            (
                "remaining node GB/s",
                [f"{self.remaining_node_bandwidth:g}"]
                + [""] * (len(self.columns) - 1),
            ),
            (
                "still required GB/s per thread",
                [f"{c.still_required_per_thread:g}" for c in self.columns],
            ),
            (
                "still required GB/s",
                [f"{self.still_required_bandwidth:g}"]
                + [""] * (len(self.columns) - 1),
            ),
            (
                "remainder given to a thread",
                [f"{c.remainder_per_thread:g}" for c in self.columns],
            ),
            (
                "total allocated to each thread",
                [f"{c.total_per_thread:g}" for c in self.columns],
            ),
            (
                "GFLOPS per thread",
                [f"{c.gflops_per_thread:g}" for c in self.columns],
            ),
            (
                "GFLOPS per application",
                [f"{c.gflops_per_application:g}" for c in self.columns],
            ),
            (
                "total GFLOPS per node",
                [f"{self.total_gflops_per_node:g}"]
                + [""] * (len(self.columns) - 1),
            ),
            (
                "total GFLOPS",
                [f"{self.total_gflops:g}"] + [""] * (len(self.columns) - 1),
            ),
        ]
        width0 = max(len(r[0]) for r in rows)
        widths = [
            max(len(headers[i + 1]), max(len(r[1][i]) for r in rows))
            for i in range(len(self.columns))
        ]
        out = [
            " | ".join(
                [" " * width0]
                + [h.rjust(w) for h, w in zip(headers[1:], widths)]
            )
        ]
        out.append("-" * len(out[0]))
        for label, cells in rows:
            out.append(
                " | ".join(
                    [label.ljust(width0)]
                    + [c.rjust(w) for c, w in zip(cells, widths)]
                )
            )
        return "\n".join(out)


def worked_example(
    machine: MachineTopology,
    app_classes: Sequence[tuple[AppSpec, int, int]],
    *,
    cross_check: bool = True,
) -> WorkedExample:
    """Compute a Table I/II style breakdown.

    Parameters
    ----------
    machine:
        A symmetric machine (same cores and bandwidth on every node).
    app_classes:
        ``(spec, instances, threads_per_node)`` triples: ``instances``
        identical applications, each running ``threads_per_node`` threads
        on every node.  All specs must be NUMA-perfect — that is the only
        regime the paper's tables cover (remote traffic breaks the
        node-symmetric shortcut).
    cross_check:
        Also run the full :class:`NumaPerformanceModel` on the expanded
        workload and verify the totals agree (guards the two code paths
        against drifting apart).

    Notes
    -----
    Follows the paper's exact sequence: peak demand per thread/instance,
    total required bandwidth, baseline, allocated baseline, remainder split
    evenly over unsatisfied threads, per-thread GFLOPS, and the node and
    machine totals.  The even split matches Tables I/II where every
    unsatisfied thread has the same unmet demand; for heterogeneous unmet
    demands the breakdown applies the even rule per the tables' arithmetic
    and may differ from the proportional-rule model — use the model
    directly for such scenarios.
    """
    if not app_classes:
        raise ModelError("need at least one application class")
    if not machine.is_symmetric:
        raise ModelError("worked examples require a symmetric machine")
    for spec, _, _ in app_classes:
        if spec.placement is not Placement.NUMA_PERFECT:
            raise ModelError(
                f"worked examples cover NUMA-perfect apps only; "
                f"'{spec.name}' has placement {spec.placement.value}"
            )
    node = machine.nodes[0]
    core_peak = node.cores[0].peak_gflops
    node_bw = node.local_bandwidth
    cores = node.num_cores

    total_threads = sum(
        inst * threads for _, inst, threads in app_classes
    )
    if total_threads > cores:
        raise ModelError(
            f"{total_threads} threads per node exceed {cores} cores"
        )

    peak_per_thread = [
        spec.demand_per_thread(core_peak) for spec, _, _ in app_classes
    ]
    peak_per_instance = [
        p * threads
        for p, (_, _, threads) in zip(peak_per_thread, app_classes)
    ]
    total_all_instances = [
        p * inst for p, (_, inst, _) in zip(peak_per_instance, app_classes)
    ]
    total_required = float(sum(total_all_instances))
    baseline = node_bw / cores
    alloc_baseline = [min(p, baseline) for p in peak_per_thread]
    allocated_node = float(
        sum(
            ab * inst * threads
            for ab, (_, inst, threads) in zip(alloc_baseline, app_classes)
        )
    )
    remaining = node_bw - allocated_node
    still_per_thread = [
        p - ab for p, ab in zip(peak_per_thread, alloc_baseline)
    ]
    still_required = float(
        sum(
            sp * inst * threads
            for sp, (_, inst, threads) in zip(still_per_thread, app_classes)
        )
    )
    # Even split of the remainder over unsatisfied threads, iterated so a
    # thread whose unmet demand is smaller than its even share frees the
    # difference for the others (the paper's single pass is the common case
    # where no cap binds; iterating keeps this breakdown exactly equal to
    # the model under RemainderRule.EVEN for every input).
    remainder_per_thread = [0.0 for _ in app_classes]
    pool = remaining
    while pool > 1e-12:
        unmet = [
            sp - r for sp, r in zip(still_per_thread, remainder_per_thread)
        ]
        open_threads = sum(
            inst * threads
            for u, (_, inst, threads) in zip(unmet, app_classes)
            if u > 1e-12
        )
        if open_threads == 0:
            break
        share = pool / open_threads
        handed = 0.0
        for i, (u, (_, inst, threads)) in enumerate(
            zip(unmet, app_classes)
        ):
            if u <= 1e-12:
                continue
            give = min(share, u)
            remainder_per_thread[i] += give
            handed += give * inst * threads
        if handed <= 1e-12:
            break
        pool -= handed
    total_per_thread = [
        ab + r for ab, r in zip(alloc_baseline, remainder_per_thread)
    ]
    gflops_per_thread = [
        min(t * spec.arithmetic_intensity, spec.peak_gflops(core_peak))
        for t, (spec, _, _) in zip(total_per_thread, app_classes)
    ]
    gflops_per_app = [
        g * threads
        for g, (_, _, threads) in zip(gflops_per_thread, app_classes)
    ]
    node_total = float(
        sum(
            g * inst
            for g, (_, inst, _) in zip(gflops_per_app, app_classes)
        )
    )

    columns = tuple(
        AppColumn(
            name=spec.name,
            arithmetic_intensity=spec.arithmetic_intensity,
            instances=inst,
            threads_per_node=threads,
            peak_bw_per_thread=peak_per_thread[i],
            peak_bw_per_instance=peak_per_instance[i],
            total_bw_all_instances=total_all_instances[i],
            allocated_baseline_per_thread=alloc_baseline[i],
            still_required_per_thread=still_per_thread[i],
            remainder_per_thread=remainder_per_thread[i],
            total_per_thread=total_per_thread[i],
            gflops_per_thread=gflops_per_thread[i],
            gflops_per_application=gflops_per_app[i],
        )
        for i, (spec, inst, threads) in enumerate(app_classes)
    )
    result = WorkedExample(
        columns=columns,
        total_required_bandwidth=total_required,
        baseline_per_thread=baseline,
        allocated_node_bandwidth=allocated_node,
        remaining_node_bandwidth=remaining,
        still_required_bandwidth=still_required,
        total_gflops_per_node=node_total,
        num_nodes=machine.num_nodes,
    )

    if cross_check:
        specs: list[AppSpec] = []
        threads: list[int] = []
        for spec, inst, per_node in app_classes:
            for k in range(inst):
                name = spec.name if inst == 1 else f"{spec.name}#{k}"
                specs.append(
                    AppSpec(
                        name=name,
                        arithmetic_intensity=spec.arithmetic_intensity,
                        placement=spec.placement,
                        home_node=spec.home_node,
                        peak_gflops_per_thread=spec.peak_gflops_per_thread,
                    )
                )
                threads.append(per_node)
        alloc = ThreadAllocation.uniform(
            [s.name for s in specs], machine.num_nodes, threads
        )
        model = NumaPerformanceModel(remainder_rule=RemainderRule.EVEN)
        predicted = model.predict(machine, specs, alloc).total_gflops
        if not np.isclose(predicted, result.total_gflops, rtol=1e-9):
            raise ModelError(
                f"worked example ({result.total_gflops}) disagrees with "
                f"model ({predicted}); the two implementations diverged"
            )
    return result
