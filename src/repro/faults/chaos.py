"""Probabilistic (but seeded, hence reproducible) fault injection.

Where a :class:`~repro.faults.plan.FaultPlan` scripts *specific*
failures at *specific* times, a :class:`ChaosConfig` describes ambient
unreliability: every report and command rolls against per-event
probabilities.  The RNG stream is derived from ``(seed, target name)``
with :mod:`random`'s deterministic string seeding, so

* two runs with the same seed inject *identical* fault sequences, and
* each wrapped endpoint draws from its own stream — adding a proxy for
  one runtime never shifts the faults another one sees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import FaultError

__all__ = ["ChaosConfig"]


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Per-event injection probabilities for an :class:`InjectionProxy`.

    Attributes
    ----------
    report_failure:
        Probability a report raises (lost request or reply).
    report_stale:
        Probability a report replays the previous cached report instead
        of a fresh one (an overloaded runtime answering late).
    report_corrupt:
        Probability a report arrives mangled (the agent's plausibility
        gate should reject it).
    command_drop:
        Probability a command is silently lost.
    command_delay:
        Probability a command applies ``delay`` seconds late.
    delay:
        The added latency for delayed commands.
    seed:
        Base seed of the per-target RNG streams.
    """

    report_failure: float = 0.0
    report_stale: float = 0.0
    report_corrupt: float = 0.0
    command_drop: float = 0.0
    command_delay: float = 0.0
    delay: float = 0.005
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "report_failure",
            "report_stale",
            "report_corrupt",
            "command_drop",
            "command_delay",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultError(
                    f"{name} must be a probability in [0, 1], got {p}"
                )
        if self.delay < 0:
            raise FaultError(f"delay must be >= 0, got {self.delay}")

    def rng_for(self, target: str) -> random.Random:
        """The deterministic RNG stream for one endpoint."""
        return random.Random(f"chaos:{self.seed}:{target}")

    @property
    def any_report_fault(self) -> bool:
        """Whether any report-path probability is non-zero."""
        return (
            self.report_failure > 0
            or self.report_stale > 0
            or self.report_corrupt > 0
        )

    @property
    def any_command_fault(self) -> bool:
        """Whether any command-path probability is non-zero."""
        return self.command_drop > 0 or self.command_delay > 0
