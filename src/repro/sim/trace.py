"""Structured execution traces.

The runtime and scheduler layers emit typed trace records (task started,
thread blocked, command received...).  Tests assert on traces instead of
poking internals; the analysis layer renders them into timelines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceKind", "TraceEvent", "Tracer"]


class TraceKind(enum.Enum):
    """Category of a trace record."""

    TASK_CREATED = "task-created"
    TASK_READY = "task-ready"
    TASK_STARTED = "task-started"
    TASK_FINISHED = "task-finished"
    THREAD_BLOCKED = "thread-blocked"
    THREAD_UNBLOCKED = "thread-unblocked"
    THREAD_IDLE = "thread-idle"
    THREAD_MIGRATED = "thread-migrated"
    COMMAND = "command"
    REPORT = "report"
    MESSAGE = "message"
    CUSTOM = "custom"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One trace record."""

    time: float
    kind: TraceKind
    subject: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.6f}] {self.kind.value:16s} {self.subject} {parts}"


class Tracer:
    """Collects :class:`TraceEvent` records.

    Tracing can be disabled wholesale (``enabled=False``) for long
    benchmark runs; the emit path then costs one attribute check.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TraceEvent] = []

    def emit(
        self,
        time: float,
        kind: TraceKind,
        subject: str,
        **detail: Any,
    ) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(time=time, kind=kind, subject=subject, detail=detail)
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """All recorded events in emission order."""
        return tuple(self._events)

    def filter(
        self,
        kind: TraceKind | None = None,
        subject: str | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Events matching all the given criteria."""
        out = []
        for e in self._events:
            if kind is not None and e.kind is not kind:
                continue
            if subject is not None and e.subject != subject:
                continue
            if predicate is not None and not predicate(e):
                continue
            out.append(e)
        return out

    def count(self, kind: TraceKind) -> int:
        """Number of events of the given kind."""
        return sum(1 for e in self._events if e.kind is kind)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def render(self, *, limit: int | None = None) -> str:
        """Human-readable dump of (up to ``limit``) events."""
        events = self._events if limit is None else self._events[:limit]
        lines = [str(e) for e in events]
        if limit is not None and len(self._events) > limit:
            lines.append(f"... {len(self._events) - limit} more")
        return "\n".join(lines)
