"""Deprecated location of the metric primitives.

The simulator-local registry grew into the process-wide observability
layer: :class:`Counter`, :class:`TimeSeries`, :class:`RateIntegrator`
and :class:`MetricSet` now live in :mod:`repro.obs.metrics` (alongside
the new :class:`~repro.obs.metrics.Gauge`,
:class:`~repro.obs.metrics.Histogram` and
:class:`~repro.obs.metrics.MetricsRegistry`).

This module remains as a compatibility shim so existing imports
(``from repro.sim.metrics import MetricSet``) keep working — the classes
are the same objects, not copies.  New code should import from
:mod:`repro.obs` directly; this shim will stay until every in-tree
caller has moved.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    MetricSet,
    MetricsRegistry,
    RateIntegrator,
    TimeSeries,
)

__all__ = [
    "Counter",
    "TimeSeries",
    "RateIntegrator",
    "MetricSet",
    "MetricsRegistry",
]
