"""Full experiment report generation.

``python -m repro report`` (or :func:`full_report`) regenerates every
table and figure of the paper and formats a single text report with the
paper's values alongside — the command-line counterpart of
EXPERIMENTS.md.  Individual experiments can be run by id, matching the
index in DESIGN.md.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.experiments import (
    run_adaptive_agent,
    run_cache_handoff,
    run_calibration,
    run_distributed,
    run_dvfs_ablation,
    run_fig1_agent,
    run_fig2,
    run_fig3,
    run_library_shift,
    run_mixed_runtimes,
    run_model_validation,
    run_oversub_benefit,
    run_oversubscription,
    run_sublinear,
    run_table1,
    run_table2,
    run_table3_model,
    run_table3_real,
    run_thread_control_options,
)
from repro.analysis.tablefmt import render_table
from repro.errors import ConfigurationError

__all__ = ["EXPERIMENTS", "run_experiment", "full_report"]


def _table1() -> str:
    return run_table1().render()


def _table2() -> str:
    return run_table2().render()


def _fig2() -> str:
    return render_table(
        ["scenario", "GFLOPS (ours)", "GFLOPS (paper)"],
        [[r.name, r.gflops, r.paper_gflops] for r in run_fig2()],
    )


def _fig3() -> str:
    return render_table(
        ["allocation", "GFLOPS (ours)", "GFLOPS (paper)"],
        [[r.name, r.gflops, r.paper_gflops] for r in run_fig3()],
    )


def _table3(fast: bool = False) -> str:
    rows = run_table3_model() if fast else run_table3_real()
    headers = ["scenario", "model (ours)"]
    if not fast:
        headers.append("real (ours)")
    headers += ["model (paper)", "real (paper)"]
    body = []
    for r in rows:
        row = [r.name, r.our_model]
        if not fast:
            row.append(r.our_real)
        row += [r.paper_model, r.paper_real]
        body.append(row)
    return render_table(headers, body)


def _fig1() -> str:
    res = run_fig1_agent()
    return render_table(
        ["configuration", "time [s]", "peak intermediate items"],
        [
            [
                "no agent",
                res.time_without_agent,
                res.peak_items_without_agent,
            ],
            ["with agent", res.time_with_agent, res.peak_items_with_agent],
        ],
    )


def _oversub() -> str:
    res = run_oversubscription()
    return render_table(
        ["configuration", "GFLOPS"],
        [
            ["2x over-subscribed", res.oversubscribed_gflops],
            ["fair share", res.fair_share_gflops],
        ],
    ) + f"\nimprovement: {res.improvement * 100:.1f}%"


def _sublinear() -> str:
    res = run_sublinear()
    return render_table(
        ["allocation", "GFLOPS"],
        [
            ["fair share", res.fair_gflops],
            ["optimal (searched)", res.optimal_gflops],
        ],
    ) + f"\noptimal: {res.optimal_allocation}"


def _library() -> str:
    res = run_library_shift()
    return render_table(
        ["core policy", "time [s]"],
        [
            ["static split", res.static_split_time],
            ["static generous-library", res.static_generous_time],
            ["dynamic shifting", res.dynamic_shift_time],
        ],
    ) + f"\ndynamic speedup: {res.speedup:.2f}x"


def _distributed() -> str:
    res = run_distributed()
    return render_table(
        ["partition", "workload", "makespan [s]"],
        [[p, w, t] for (p, w), t in sorted(res.runs.items())],
    )


def _calibration() -> str:
    res = run_calibration()
    return render_table(
        ["parameter", "true", "estimated"],
        [
            ["peak GFLOPS/thread", res.true_peak, res.est_peak],
            ["node bandwidth GB/s", res.true_bandwidth, res.est_bandwidth],
        ],
    )


def _thread_control() -> str:
    res = run_thread_control_options()
    return render_table(
        ["configuration", "time [s]"],
        [
            ["full machine (80 threads)", res.full_machine],
            ["option 1: total=40", res.option1_total],
            ["option 3: even (10,10,10,10)", res.option3_even],
            ["option 3: packed (20,20,0,0)", res.option3_packed],
            ["option 2: block nodes 2+3", res.option2_two_nodes],
        ],
    )


def _adaptive() -> str:
    res = run_adaptive_agent()
    return render_table(
        ["policy", "GFLOPS"],
        [
            ["static fair share", res.static_gflops],
            ["adaptive (no specs)", res.adaptive_gflops],
            ["model-guided (oracle)", res.model_guided_gflops],
        ],
    )


def _oversub_benefit() -> str:
    res = run_oversub_benefit()
    return render_table(
        ["threads", "GFLOPS"],
        [[t, g] for t, g in sorted(res.gflops_by_threads.items())],
    )


def _dvfs() -> str:
    res = run_dvfs_ablation()
    return render_table(
        ["placement", "no DVFS", "with DVFS"],
        [
            ["packed (8 on node 0)", res.packed_no_dvfs, res.packed_dvfs],
            ["spread (2 per node)", res.spread_no_dvfs, res.spread_dvfs],
        ],
    )


def _cache() -> str:
    res = run_cache_handoff()
    return render_table(
        ["configuration", "time [s]"],
        [
            ["handoff (co-located + warm LLC)", res.handoff_time],
            ["co-located, cache off", res.colocated_no_cache_time],
            ["separate nodes", res.separate_nodes_time],
        ],
    )


def _mixed() -> str:
    res = run_mixed_runtimes()
    return render_table(
        ["coordination", "GFLOPS"],
        [
            ["none", res.uncoordinated_gflops],
            ["agent fair share", res.fair_share_gflops],
            ["agent adaptive", res.adaptive_gflops],
        ],
    )


def _validation() -> str:
    res = run_model_validation()
    return render_table(
        ["metric", "value [%]"],
        [
            ["max |relative error|", res.max_error * 100],
            ["mean |relative error|", res.mean_error * 100],
        ],
    )


#: Experiment id -> (title, renderer).  Ids match DESIGN.md Section 5.
EXPERIMENTS: dict[str, tuple[str, Callable[[], str]]] = {
    "table1": ("Table I - uneven allocation worked example", _table1),
    "table2": ("Table II - even allocation worked example", _table2),
    "fig2": ("Figure 2 - three allocation scenarios", _fig2),
    "fig3": ("Figure 3 - NUMA-bad example", _fig3),
    "table3": ("Table III - model vs synthetic benchmark", _table3),
    "fig1": ("Figure 1 - agent architecture", _fig1),
    "oversub": ("Section II - over-subscription cost", _oversub),
    "sublinear": ("Section II - sub-linear reallocation", _sublinear),
    "library": ("Section II - library-call shifting", _library),
    "distributed": ("Section V - distributed partitioning", _distributed),
    "calibration": ("Section III-B - machine calibration", _calibration),
    "threadcontrol": (
        "Section III - thread-control options on a NUMA-aware app",
        _thread_control,
    ),
    "adaptive": (
        "Extension - observation-only adaptive agent",
        _adaptive,
    ),
    "oversub-benefit": (
        "Section II - beneficial over-subscription (I/O)",
        _oversub_benefit,
    ),
    "dvfs": ("Extension - DVFS ablation (assumption 2)", _dvfs),
    "cache": (
        "Section II - producer->consumer cache handoff",
        _cache,
    ),
    "mixed": (
        "Future work - OCR-Vx + TBB cooperative management",
        _mixed,
    ),
    "validation": (
        "Extension - model vs simulator cross-validation",
        _validation,
    ),
}


def run_experiment(exp_id: str) -> str:
    """Run one experiment by id, returning its formatted block."""
    if exp_id not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment '{exp_id}'; "
            f"known: {', '.join(sorted(EXPERIMENTS))}"
        )
    title, fn = EXPERIMENTS[exp_id]
    bar = "=" * 72
    return f"{bar}\n{title}\n{bar}\n{fn()}\n"


def full_report() -> str:
    """Run every experiment and concatenate the blocks."""
    return "\n".join(run_experiment(e) for e in EXPERIMENTS)
