"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``report``
    Regenerate every paper table/figure and print the full report.
``run <experiment-id>``
    Run one experiment (ids: ``table1 table2 fig1 fig2 fig3 table3
    oversub sublinear library distributed calibration``).
``list``
    List experiment ids with their titles.
``describe <preset>``
    Print a machine preset (``model``, ``skylake``, ``numa-bad``,
    ``knl-flat``, ``knl-snc4``) in the parseable topology format.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import EXPERIMENTS, full_report, run_experiment
from repro.machine import (
    knl_flat,
    knl_snc4,
    model_machine,
    numa_bad_example_machine,
    skylake_4s,
)
from repro.machine.parser import format_topology

_PRESETS = {
    "model": model_machine,
    "skylake": skylake_4s,
    "numa-bad": numa_bad_example_machine,
    "knl-flat": knl_flat,
    "knl-snc4": knl_snc4,
}


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'NUMA-aware CPU core allocation in "
        "cooperating dynamic applications' (IPPS 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("report", help="run every experiment")
    runp = sub.add_parser("run", help="run one experiment by id")
    runp.add_argument("experiment", choices=sorted(EXPERIMENTS))
    sub.add_parser("list", help="list experiment ids")
    sub.add_parser("api", help="print the public API reference")
    desc = sub.add_parser("describe", help="print a machine preset")
    desc.add_argument("preset", choices=sorted(_PRESETS))
    args = parser.parse_args(argv)

    if args.command == "report":
        print(full_report())
    elif args.command == "run":
        print(run_experiment(args.experiment))
    elif args.command == "list":
        for exp_id, (title, _) in EXPERIMENTS.items():
            print(f"{exp_id:12s} {title}")
    elif args.command == "api":
        from repro.analysis.apidoc import api_summary

        print(api_summary())
    elif args.command == "describe":
        print(format_topology(_PRESETS[args.preset]()), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
