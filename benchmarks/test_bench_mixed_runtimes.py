"""The conclusion's future work, implemented and measured.

"In the first iteration, we plan to continue with our work on OCR-Vx,
but also incorporate TBB, allowing TBB and OCR-Vx applications to
cooperatively manage CPU cores."

An OCR-Vx memory-bound application and a TBB compute-bound application
(arena-per-node, Section II's recipe) share the model machine under
three coordination regimes.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_mixed_runtimes


def test_bench_mixed_runtimes(benchmark):
    res = benchmark.pedantic(
        run_mixed_runtimes, kwargs={"duration": 0.4}, rounds=1,
        iterations=1,
    )
    emit(
        "OCR-Vx + TBB cooperative core management (future work, built)",
        render_table(
            ["coordination", "GFLOPS"],
            [
                ["none (both sized to full machine)", res.uncoordinated_gflops],
                ["agent fair share", res.fair_share_gflops],
                ["agent adaptive (observation-only)", res.adaptive_gflops],
            ],
        )
        + f"\nadaptive gain over uncoordinated: {res.adaptive_gain:.2f}x",
    )
    assert res.fair_share_gflops > res.uncoordinated_gflops
    assert res.adaptive_gflops > res.fair_share_gflops
    assert res.adaptive_gain > 1.5
