"""The standard rule pack; importing this package registers every rule.

Rules are grouped by theme:

* :mod:`repro.lint.rules.concurrency` — LOCK001, OBS001, OBS002
* :mod:`repro.lint.rules.pyhygiene` — DEF001, EXC001, EXC002, TIME001
* :mod:`repro.lint.rules.floats` — FLT001
* :mod:`repro.lint.rules.units` — UNIT001
* :mod:`repro.lint.rules.api` — API001
* :mod:`repro.lint.rules.docs` — DOC001
* :mod:`repro.lint.rules.retry` — RETRY001
* :mod:`repro.lint.rules.perf` — PERF001, PERF002, PERF003
* :mod:`repro.lint.rules.io` — IO001
* :mod:`repro.lint.rules.project_rules` — ASYNC001, LOCK002, THRD001,
  DET001, OBS003 (whole-program; see :mod:`repro.lint.project`)

See ``docs/STATIC_ANALYSIS.md`` for the full catalogue with rationale
and examples, and :mod:`repro.lint.engine` for how to add a rule.
"""

from __future__ import annotations

from repro.lint.rules.api import ApiDocDrift
from repro.lint.rules.docs import UndocumentedPublicName
from repro.lint.rules.concurrency import (
    BareLockAcquire,
    SpanWithoutWith,
    StartWithoutFinish,
)
from repro.lint.rules.floats import FloatEquality
from repro.lint.rules.pyhygiene import (
    BareExcept,
    MutableDefaultArgument,
    SwallowedException,
    WallClockDuration,
)
from repro.lint.rules.io import NonAtomicDurableWrite
from repro.lint.rules.perf import (
    FullSearchInChurnPath,
    MetricLookupInLoop,
    PoolConstructionInLoop,
)
from repro.lint.rules.project_rules import (
    BlockingCallInAsyncPath,
    MetricNamespaceDrift,
    NondeterminismInReplayPath,
    SyncLockAcrossAwait,
    UnlockedCrossContextMutation,
)
from repro.lint.rules.retry import UnboundedRetryLoop
from repro.lint.rules.units import CrossUnitArithmetic

__all__ = [
    "BareLockAcquire",
    "SpanWithoutWith",
    "StartWithoutFinish",
    "MutableDefaultArgument",
    "BareExcept",
    "SwallowedException",
    "WallClockDuration",
    "FloatEquality",
    "CrossUnitArithmetic",
    "UnboundedRetryLoop",
    "ApiDocDrift",
    "UndocumentedPublicName",
    "MetricLookupInLoop",
    "FullSearchInChurnPath",
    "PoolConstructionInLoop",
    "NonAtomicDurableWrite",
    "BlockingCallInAsyncPath",
    "SyncLockAcrossAwait",
    "UnlockedCrossContextMutation",
    "NondeterminismInReplayPath",
    "MetricNamespaceDrift",
]
