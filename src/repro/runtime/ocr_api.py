"""A C-flavoured OCR API facade over :class:`OCRVxRuntime`.

The Open Community Runtime specification [1], [9] expresses everything
through GUIDs and a small C API.  This module mirrors the subset the
paper's applications use, so OCR example codes port almost line by line:

=====================================  ===================================
OCR C API                              here
=====================================  ===================================
``ocrEdtTemplateCreate``               :func:`ocr_edt_template_create`
``ocrEdtCreate``                       :func:`ocr_edt_create`
``ocrDbCreate``                        :func:`ocr_db_create`
``ocrDbDestroy``                       :func:`ocr_db_destroy`
``ocrEventCreate`` (ONCE / LATCH)      :func:`ocr_event_create`
``ocrEventSatisfy``                    :func:`ocr_event_satisfy`
``ocrAddDependence``                   :func:`ocr_add_dependence`
=====================================  ===================================

EDTs are created with ``depc`` pre-declared dependence slots; a slot is
either satisfied at creation (an entry in ``depv``) or connected later
with :func:`ocr_add_dependence` — including with the ``UNINITIALIZED``
placeholder followed by a later connection, the OCR idiom for cyclic
creation orders.  All functions operate on opaque integer GUIDs held by
an :class:`OcrContext`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import RuntimeSystemError
from repro.runtime.datablock import Datablock
from repro.runtime.events import Event, LatchEvent, OnceEvent
from repro.runtime.runtime import OCRVxRuntime
from repro.runtime.task import Task

__all__ = [
    "UNINITIALIZED",
    "OcrEventKind",
    "OcrContext",
    "ocr_edt_template_create",
    "ocr_edt_create",
    "ocr_db_create",
    "ocr_db_destroy",
    "ocr_event_create",
    "ocr_event_satisfy",
    "ocr_add_dependence",
]

#: Placeholder for a dependence slot to be connected later
#: (``UNINITIALIZED_GUID`` in the OCR spec).
UNINITIALIZED: int = -1


class OcrEventKind(enum.Enum):
    """Event flavours of ``ocrEventCreate``."""

    ONCE = "once"
    LATCH = "latch"


@dataclass
class _Template:
    name: str
    flops: float
    arithmetic_intensity: float
    instances: int = 0


class OcrContext:
    """GUID table tied to one hosting runtime."""

    def __init__(self, runtime: OCRVxRuntime) -> None:
        self.runtime = runtime
        self._objects: dict[int, Any] = {}
        self._next_guid = 1
        #: EDT guid -> list of per-slot events (None = satisfied slot)
        self._edt_slots: dict[int, list[OnceEvent | None]] = {}

    def _register(self, obj: Any) -> int:
        guid = self._next_guid
        self._next_guid += 1
        self._objects[guid] = obj
        return guid

    def get(self, guid: int) -> Any:
        """Resolve a GUID (raises on unknown/stale guids)."""
        if guid not in self._objects:
            raise RuntimeSystemError(f"unknown GUID {guid}")
        return self._objects[guid]

    def task_of(self, edt_guid: int) -> Task:
        """The :class:`Task` behind an EDT guid."""
        obj = self.get(edt_guid)
        if not isinstance(obj, Task):
            raise RuntimeSystemError(f"GUID {edt_guid} is not an EDT")
        return obj


# ----------------------------------------------------------------------
def ocr_edt_template_create(
    ctx: OcrContext,
    name: str,
    flops: float,
    arithmetic_intensity: float,
) -> int:
    """``ocrEdtTemplateCreate``: register an EDT kind, returns its GUID."""
    if flops <= 0 or arithmetic_intensity <= 0:
        raise RuntimeSystemError(
            f"template '{name}': flops and AI must be positive"
        )
    return ctx._register(
        _Template(
            name=name, flops=flops, arithmetic_intensity=arithmetic_intensity
        )
    )


def ocr_edt_create(
    ctx: OcrContext,
    template_guid: int,
    depv: list[int] | None = None,
    *,
    affinity_node: int | None = None,
) -> tuple[int, int]:
    """``ocrEdtCreate``: instantiate an EDT from a template.

    ``depv`` lists one GUID per dependence slot: an event or datablock
    GUID satisfies the slot immediately (datablocks count as
    pre-satisfied data dependences, as in OCR), ``UNINITIALIZED`` leaves
    it open for :func:`ocr_add_dependence`.  Returns
    ``(edt_guid, output_event_guid)``.
    """
    template = ctx.get(template_guid)
    if not isinstance(template, _Template):
        raise RuntimeSystemError(
            f"GUID {template_guid} is not an EDT template"
        )
    template.instances += 1
    depv = list(depv or [])
    datablocks: list[Datablock] = []
    slot_sources: list[Any] = []
    for guid in depv:
        if guid == UNINITIALIZED:
            slot_sources.append(None)
            continue
        obj = ctx.get(guid)
        if isinstance(obj, Datablock):
            datablocks.append(obj)
            slot_sources.append("db")
        elif isinstance(obj, Event):
            slot_sources.append(obj)
        elif isinstance(obj, Task):
            slot_sources.append(obj.output_event)
        else:
            raise RuntimeSystemError(
                f"GUID {guid} cannot satisfy a dependence slot"
            )

    # Each open or event-connected slot gets its own relay event; the
    # task depends on all of them, so late ocr_add_dependence connections
    # are race-free.
    slots: list[OnceEvent | None] = []
    deps: list[Event] = []
    for i, source in enumerate(slot_sources):
        if source == "db":
            slots.append(None)  # satisfied by the datablock itself
            continue
        relay = OnceEvent(f"{template.name}.slot{i}")
        slots.append(relay)
        deps.append(relay)
        if isinstance(source, Event):
            source.add_dependent(relay.satisfy)

    task = ctx.runtime.create_task(
        f"{template.name}#{template.instances}",
        flops=template.flops,
        arithmetic_intensity=template.arithmetic_intensity,
        depends_on=deps,
        datablocks=datablocks,
        affinity_node=affinity_node,
    )
    edt_guid = ctx._register(task)
    ctx._edt_slots[edt_guid] = slots
    out_guid = ctx._register(task.output_event)
    return edt_guid, out_guid


def ocr_db_create(
    ctx: OcrContext, size_bytes: float, home_node: int, name: str = ""
) -> int:
    """``ocrDbCreate``: allocate a datablock, returns its GUID."""
    db = ctx.runtime.create_datablock(size_bytes, home_node, name=name)
    return ctx._register(db)


def ocr_db_destroy(ctx: OcrContext, db_guid: int) -> None:
    """``ocrDbDestroy``: free a datablock (GUID becomes stale)."""
    db = ctx.get(db_guid)
    if not isinstance(db, Datablock):
        raise RuntimeSystemError(f"GUID {db_guid} is not a datablock")
    db.destroy()
    del ctx._objects[db_guid]


def ocr_event_create(
    ctx: OcrContext,
    kind: OcrEventKind = OcrEventKind.ONCE,
    *,
    latch_count: int = 1,
    name: str = "",
) -> int:
    """``ocrEventCreate``: create a ONCE or LATCH event."""
    if kind is OcrEventKind.ONCE:
        return ctx._register(OnceEvent(name))
    return ctx._register(LatchEvent(latch_count, name))


def ocr_event_satisfy(
    ctx: OcrContext, event_guid: int, payload: Any = None
) -> None:
    """``ocrEventSatisfy``: trigger a ONCE event / count down a latch."""
    obj = ctx.get(event_guid)
    if isinstance(obj, LatchEvent):
        obj.count_down(payload=payload)
    elif isinstance(obj, OnceEvent):
        obj.satisfy(payload)
    else:
        raise RuntimeSystemError(f"GUID {event_guid} is not an event")


def ocr_add_dependence(
    ctx: OcrContext, source_guid: int, dest_edt_guid: int, slot: int
) -> None:
    """``ocrAddDependence``: connect ``source`` to an EDT's open slot."""
    slots = ctx._edt_slots.get(dest_edt_guid)
    if slots is None:
        raise RuntimeSystemError(f"GUID {dest_edt_guid} is not an EDT")
    if not 0 <= slot < len(slots):
        raise RuntimeSystemError(
            f"slot {slot} out of range (EDT has {len(slots)} slots)"
        )
    relay = slots[slot]
    if relay is None:
        raise RuntimeSystemError(
            f"slot {slot} was satisfied at creation"
        )
    if relay.fired:
        raise RuntimeSystemError(f"slot {slot} already connected")
    source = ctx.get(source_guid)
    if isinstance(source, Task):
        source = source.output_event
    if isinstance(source, Event):
        source.add_dependent(relay.satisfy)
    elif isinstance(source, Datablock):
        relay.satisfy(source)  # data dependence: immediately available
    else:
        raise RuntimeSystemError(
            f"GUID {source_guid} cannot be a dependence source"
        )
