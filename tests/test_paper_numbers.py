"""Golden tests pinning every number the paper publishes.

If any of these fail, the reproduction no longer reproduces the paper:

* Table I: uneven allocation -> 63.5 GFLOPS/node, 254 total.
* Table II: even allocation -> 35 GFLOPS/node, 140 total.
* Figure 2 c): node-exclusive -> 128 total.
* Figure 3 example: even 138 (exactly 138.75 under the recovered
  machine), node-exclusive 150.
* Table III model column: 23.20 / 18.12 / 15.18 / 13.98 / 15.18.
"""

import pytest

from repro.analysis import (
    run_fig2,
    run_fig3,
    run_table1,
    run_table2,
    run_table3_model,
)


class TestTablesIandII:
    def test_table1_total(self):
        assert run_table1().total_gflops == pytest.approx(254.0)

    def test_table2_total(self):
        assert run_table2().total_gflops == pytest.approx(140.0)


class TestFig2:
    def test_all_three_scenarios(self):
        results = {r.name: r for r in run_fig2()}
        assert results["a) uneven (1,1,1,5)"].gflops == pytest.approx(254.0)
        assert results["b) even (2,2,2,2)"].gflops == pytest.approx(140.0)
        assert results["c) node-exclusive"].gflops == pytest.approx(128.0)

    def test_ordering_matches_paper(self):
        g = [r.gflops for r in run_fig2()]
        # uneven > even > exclusive for the all-NUMA-perfect workload
        assert g[0] > g[1] > g[2]


class TestFig3:
    def test_values(self):
        results = {r.name.split(" ")[0]: r for r in run_fig3()}
        assert results["even"].gflops == pytest.approx(138.75)
        assert results["node-exclusive"].gflops == pytest.approx(150.0)

    def test_ordering_flips_with_numa_bad_app(self):
        even, exclusive = run_fig3()
        # Opposite of Fig 2: exclusive wins once a NUMA-bad app exists.
        assert exclusive.gflops > even.gflops

    def test_within_one_percent_of_paper(self):
        for r in run_fig3():
            assert abs(r.relative_error) < 0.01


class TestTable3Model:
    EXPECTED = {
        "uneven (1,1,1,17)": 23.20,
        "even (5,5,5,5)": 18.12,
        "node-exclusive": 15.18,
        "NUMA-bad cross-node (even)": 13.98,
        "NUMA-bad on-node (exclusive)": 15.18,
    }

    def test_model_column_to_printed_precision(self):
        for row in run_table3_model():
            assert row.our_model == pytest.approx(
                self.EXPECTED[row.name], abs=0.005
            ), row.name

    def test_paper_reference_values_recorded(self):
        rows = {r.name: r for r in run_table3_model()}
        assert rows["even (5,5,5,5)"].paper_real == pytest.approx(18.14)
        assert rows["NUMA-bad cross-node (even)"].paper_real == pytest.approx(
            13.25
        )

    def test_scenario_ordering(self):
        rows = [r.our_model for r in run_table3_model()]
        # uneven > even > exclusive; cross-node is the worst overall.
        assert rows[0] > rows[1] > rows[2]
        assert rows[3] == min(rows)
        # on-node NUMA-bad recovers to the exclusive level
        assert rows[4] == pytest.approx(rows[2], abs=0.005)
