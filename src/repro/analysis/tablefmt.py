"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table.

    Floats are shown with two decimals (the paper's precision in
    Table III).
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append(
            " | ".join(c.rjust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)
