"""An MPI-flavoured communication model for the Section V experiments.

Most large scientific applications are "usually ... MPI" (Section V), so
the distributed layer needs communication costs, not just compute rates.
:class:`NetworkModel` prices the three operations the experiments use —
point-to-point transfers, barriers, and allreduces — with the standard
latency/bandwidth (alpha-beta) model and logarithmic trees for the
collectives.

:class:`BspProgram` combines communication with the per-rank compute-rate
profiles of :mod:`repro.distributed.partition` into a bulk-synchronous
iteration model with three synchronisation disciplines:

* ``GLOBAL`` — a barrier/allreduce after every iteration (the paper's
  tightly synchronised case);
* ``NEIGHBOR`` — halo exchange with nearest neighbours only (the common
  stencil pattern: looser than a barrier, skew propagates at one rank
  per iteration);
* ``NONE`` — independent ranks (the fully loose limit).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.distributed.rates import PeriodicRate
from repro.errors import DistributedError

__all__ = ["NetworkModel", "SyncKind", "BspResult", "BspProgram"]


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta network cost model.

    Attributes
    ----------
    latency:
        Per-message latency (seconds) — the alpha term.
    bandwidth:
        Link bandwidth in GB/s — the beta term's inverse.
    """

    latency: float = 2e-6
    bandwidth: float = 10.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise DistributedError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise DistributedError("bandwidth must be positive")

    def transfer_time(self, size_bytes: float) -> float:
        """Point-to-point message time."""
        if size_bytes < 0:
            raise DistributedError("size must be non-negative")
        return self.latency + size_bytes / (self.bandwidth * 1e9)

    def barrier_time(self, num_ranks: int) -> float:
        """Dissemination barrier: ceil(log2(n)) rounds of tiny messages."""
        if num_ranks <= 0:
            raise DistributedError("num_ranks must be positive")
        if num_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        return rounds * self.transfer_time(8)

    def allreduce_time(self, size_bytes: float, num_ranks: int) -> float:
        """Recursive-doubling allreduce: log2(n) rounds of full payload."""
        if num_ranks <= 0:
            raise DistributedError("num_ranks must be positive")
        if num_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        return rounds * self.transfer_time(size_bytes)


class SyncKind(enum.Enum):
    """How iterations are synchronised across ranks."""

    GLOBAL = "global"  #: barrier/allreduce each iteration
    NEIGHBOR = "neighbor"  #: halo exchange with rank +-1
    NONE = "none"  #: no cross-rank synchronisation


@dataclass(frozen=True)
class BspResult:
    """Outcome of a BSP run."""

    makespan: float
    compute_time: tuple[float, ...]
    wait_time: tuple[float, ...]
    comm_time: float

    @property
    def mean_wait_fraction(self) -> float:
        """Average fraction of the makespan ranks spend waiting."""
        if self.makespan <= 0:
            return 0.0
        return float(np.mean(self.wait_time)) / self.makespan


class BspProgram:
    """Iterative bulk-synchronous program over per-rank rate profiles.

    Parameters
    ----------
    iterations:
        Number of outer iterations.
    work_per_rank:
        GFLOP each rank computes per iteration.
    message_bytes:
        Halo / reduction payload per iteration.
    sync:
        Synchronisation discipline, see :class:`SyncKind`.
    network:
        Cost model for the communication.
    """

    def __init__(
        self,
        *,
        iterations: int,
        work_per_rank: float,
        message_bytes: float = 1e6,
        sync: SyncKind = SyncKind.GLOBAL,
        network: NetworkModel | None = None,
    ) -> None:
        if iterations <= 0:
            raise DistributedError("iterations must be positive")
        if work_per_rank <= 0:
            raise DistributedError("work_per_rank must be positive")
        if message_bytes < 0:
            raise DistributedError("message_bytes must be non-negative")
        self.iterations = iterations
        self.work_per_rank = work_per_rank
        self.message_bytes = message_bytes
        self.sync = sync
        self.network = network or NetworkModel()

    def run(self, profiles: list[PeriodicRate]) -> BspResult:
        """Simulate the program; returns per-rank time breakdowns."""
        if not profiles:
            raise DistributedError("need at least one rank")
        n = len(profiles)
        ready = np.zeros(n)  # when each rank may start the next compute
        compute = np.zeros(n)
        wait = np.zeros(n)
        comm_total = 0.0
        for _ in range(self.iterations):
            finish = np.array(
                [
                    p.finish_time(self.work_per_rank, t)
                    for p, t in zip(profiles, ready)
                ]
            )
            compute += finish - ready
            if self.sync is SyncKind.GLOBAL:
                sync_cost = self.network.allreduce_time(
                    self.message_bytes, n
                )
                t_next = finish.max() + sync_cost
                wait += t_next - finish
                comm_total += sync_cost
                ready = np.full(n, t_next)
            elif self.sync is SyncKind.NEIGHBOR:
                xfer = self.network.transfer_time(self.message_bytes)
                nxt = np.array(finish)
                for r in range(n):
                    neighbours = [finish[r]]
                    if r > 0:
                        neighbours.append(finish[r - 1])
                    if r < n - 1:
                        neighbours.append(finish[r + 1])
                    nxt[r] = max(neighbours) + xfer
                wait += nxt - finish - xfer
                comm_total += xfer
                ready = nxt
            else:  # NONE
                ready = finish
        makespan = float(ready.max())
        return BspResult(
            makespan=makespan,
            compute_time=tuple(float(c) for c in compute),
            wait_time=tuple(float(w) for w in wait),
            comm_time=comm_total,
        )
