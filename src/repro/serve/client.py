"""In-process client for :class:`~repro.serve.service.AllocationService`.

:class:`ServiceClient` is the loopback transport: it talks to a service
instance living in the same process, but every message still round-trips
through :func:`~repro.serve.protocol.encode_message` /
:func:`~repro.serve.protocol.decode_message`, so tests and examples that
use it exercise the *exact* wire representation the socket server does —
a doc example that works against the client works against the daemon.

Pushed messages (unsolicited :class:`~repro.serve.protocol
.AllocationUpdate`\\ s and the final :class:`~repro.serve.protocol
.ShutdownNotice`) land in the client's :attr:`inbox` in arrival order;
:meth:`drain` empties it.  See ``docs/TUTORIAL.md`` for a worked
session.
"""

from __future__ import annotations

from repro.core.spec import AppSpec
from repro.errors import ServiceError
from repro.serve.protocol import (
    Ack,
    AllocationUpdate,
    Deregister,
    ErrorReply,
    ProgressReport,
    QueryAllocation,
    Register,
    decode_message,
    encode_message,
)
from repro.serve.service import AllocationService

__all__ = ["ServiceClient"]


class ServiceClient:
    """One application's in-process connection to the service.

    Parameters
    ----------
    service:
        The service instance to attach to.
    name:
        The application (session) name this client speaks for.
    raise_errors:
        When True (default) an :class:`~repro.serve.protocol.ErrorReply`
        is raised as :class:`~repro.errors.ServiceError`; when False it
        is returned like any other reply, which is handy for protocol
        tests.
    """

    def __init__(
        self,
        service: AllocationService,
        name: str,
        *,
        raise_errors: bool = True,
    ) -> None:
        self.service = service
        self.name = name
        self.raise_errors = raise_errors
        #: pushed messages, oldest first.
        self.inbox: list = []

    # -- plumbing -------------------------------------------------------

    def _roundtrip(self, message):
        """Send one request over the loopback wire, return the reply.

        Both the request and the reply pass through the NDJSON codec,
        so a message the codec would reject on a socket is rejected
        here too.
        """
        reply = self.service.handle(decode_message(encode_message(message)))
        reply = decode_message(encode_message(reply))
        if self.raise_errors and isinstance(reply, ErrorReply):
            raise ServiceError(reply.error)
        return reply

    def _deliver(self, message) -> None:
        self.inbox.append(decode_message(encode_message(message)))

    # -- the four requests ----------------------------------------------

    def register(self, app: AppSpec) -> Ack:
        """Join the live workload and subscribe to pushed updates."""
        if app.name != self.name:
            raise ServiceError(
                f"client '{self.name}' cannot register app '{app.name}'"
            )
        reply = self._roundtrip(Register(name=app.name, app=app))
        if isinstance(reply, Ack):
            self.service.subscribe(self.name, self._deliver)
        return reply

    def deregister(self) -> Ack:
        """Leave the live workload (also detaches the push stream)."""
        return self._roundtrip(Deregister(name=self.name))

    def report(
        self,
        time: float,
        progress: dict[str, float] | None = None,
        cpu_load: float = 0.0,
        acked_epoch: int | None = None,
    ) -> Ack:
        """Send one progress heartbeat.

        Pass ``acked_epoch`` (normally :meth:`last_epoch`) so the
        service's at-least-once loop knows which allocation this
        runtime actually applied.
        """
        return self._roundtrip(
            ProgressReport(
                name=self.name,
                time=time,
                progress=progress or {},
                cpu_load=cpu_load,
                acked_epoch=acked_epoch,
            )
        )

    def query_allocation(self) -> AllocationUpdate:
        """Pull the session's current per-node thread counts."""
        return self._roundtrip(QueryAllocation(name=self.name))

    # -- inbox helpers --------------------------------------------------

    def drain(self) -> list:
        """Remove and return all pushed messages received so far."""
        messages, self.inbox = self.inbox, []
        return messages

    def last_allocation(self) -> AllocationUpdate | None:
        """The newest pushed allocation still in the inbox, or None."""
        for message in reversed(self.inbox):
            if isinstance(message, AllocationUpdate):
                return message
        return None

    def last_epoch(self) -> int | None:
        """Epoch of the newest pushed allocation in the inbox, or None."""
        update = self.last_allocation()
        return None if update is None else update.epoch
