"""Whole-program layer tests: summaries, call graph, incremental cache.

The call-graph cases pin the resolution idioms the cross-module rules
rely on — aliased imports, ``self`` methods through base classes,
decorators, nested defs and lambdas, constructor-typed attributes and
re-export chains — and the cache cases pin the incremental contract:
hit on unchanged content, invalidation on edit, silent discard of
stale-version or corrupt cache files.
"""

import ast
import json

from repro.lint.engine import FileContext, LintEngine
from repro.lint.project.cache import (
    CACHE_FILENAME,
    CACHE_VERSION,
    LintCache,
)
from repro.lint.project.graph import ProjectContext
from repro.lint.project.summary import (
    MODULE_BODY,
    CallSite,
    ModuleSummary,
    summarize_module,
)


def summarize(source: str, path: str = "mod.py", module: str | None = None):
    ctx = FileContext(path, source)
    return summarize_module(path, module, ctx.tree, source)


def project(*sources: tuple[str, str]) -> ProjectContext:
    """Build a ProjectContext from ``(module_name, source)`` pairs."""
    summaries = [
        summarize(src, path=f"{mod.replace('.', '/')}.py", module=mod)
        for mod, src in sources
    ]
    return ProjectContext(summaries)


def edges_of(ctx: ProjectContext, key: str):
    return ctx.edges()[key]


class TestSummaries:
    def test_functions_and_asyncness(self):
        s = summarize(
            "async def handler():\n    pass\n\ndef plain():\n    pass\n"
        )
        assert s.functions["handler"].is_async
        assert not s.functions["plain"].is_async
        assert MODULE_BODY in s.functions

    def test_imports_record_aliases(self):
        s = summarize(
            "import numpy as np\n"
            "from repro.core.model import NumaPerformanceModel as Model\n"
        )
        assert s.imports["np"] == "numpy"
        assert (
            s.imports["Model"] == "repro.core.model.NumaPerformanceModel"
        )

    def test_metric_literals_and_fstring_collapse(self):
        s = summarize(
            "def f(m, name):\n"
            "    m.metrics.counter('a/b').add()\n"
            "    m.metrics.gauge(f'runtime/{name}/queue').set(1)\n"
        )
        names = {(u.name, u.kind, u.dynamic) for u in s.metrics}
        assert ("a/b", "counter", False) in names
        assert ("runtime/<?>/queue", "gauge", True) in names

    def test_lock_across_await_recorded_sync_only(self):
        s = summarize(
            "async def f(lock, alock):\n"
            "    with lock:\n"
            "        await g()\n"
            "    async with alock:\n"
            "        await g()\n"
        )
        assert len(s.functions["f"].lock_awaits) == 1
        with_line, name, await_line = s.functions["f"].lock_awaits[0]
        assert (with_line, name, await_line) == (2, "lock", 3)

    def test_mutations_and_locked_flag(self):
        s = summarize(
            "class C:\n"
            "    def locked(self, lock):\n"
            "        with lock:\n"
            "            self.x = 1\n"
            "    def bare(self):\n"
            "        self.x = 2\n"
        )
        muts = {
            (m.target, m.locked)
            for f in s.functions.values()
            for m in f.mutations
        }
        assert ("C.x", True) in muts
        assert ("C.x", False) in muts

    def test_thread_targets(self):
        s = summarize(
            "import threading\n"
            "def spawn(loop, fn):\n"
            "    threading.Thread(target=worker).start()\n"
            "    loop.run_in_executor(None, blocking)\n"
        )
        targets = {name for name, _ in s.thread_targets}
        assert targets == {"worker", "blocking"}

    def test_round_trips_through_json(self):
        s = summarize(
            "import threading\n"
            "class C:\n"
            "    def m(self, lock):\n"
            "        with lock:\n"
            "            self.x = 1\n"
            "async def f(m):\n"
            "    m.metrics.counter('a/b').add()  # repro: noqa[OBS003]\n"
        )
        clone = ModuleSummary.from_dict(
            json.loads(json.dumps(s.to_dict()))
        )
        assert clone.to_dict() == s.to_dict()
        assert clone.suppressed(7, "OBS003")
        assert not clone.suppressed(7, "DET001")


class TestCallGraph:
    def test_bare_name_to_module_function(self):
        ctx = project(("m", "def f():\n    g()\n\ndef g():\n    pass\n"))
        (edge,) = edges_of(ctx, "m:f")
        assert edge.target == "m:g"

    def test_aliased_import_resolves_cross_module(self):
        ctx = project(
            ("pkg.a", "def helper():\n    pass\n"),
            (
                "pkg.b",
                "from pkg.a import helper as h\n"
                "def caller():\n    h()\n",
            ),
        )
        (edge,) = edges_of(ctx, "pkg.b:caller")
        assert edge.target == "pkg.a:helper"

    def test_module_alias_import(self):
        ctx = project(
            ("pkg.a", "def helper():\n    pass\n"),
            (
                "pkg.b",
                "import pkg.a as alias\n"
                "def caller():\n    alias.helper()\n",
            ),
        )
        (edge,) = edges_of(ctx, "pkg.b:caller")
        assert edge.target == "pkg.a:helper"

    def test_self_method_and_base_class(self):
        ctx = project(
            (
                "m",
                "class Base:\n"
                "    def shared(self):\n"
                "        pass\n"
                "class Child(Base):\n"
                "    def run(self):\n"
                "        self.shared()\n",
            )
        )
        (edge,) = edges_of(ctx, "m:Child.run")
        assert edge.target == "m:Base.shared"

    def test_attr_type_from_constructor_assignment(self):
        ctx = project(
            ("svc", "class Service:\n    def handle(self):\n        pass\n"),
            (
                "srv",
                "from svc import Service\n"
                "class Server:\n"
                "    def start(self):\n"
                "        self.service = Service()\n"
                "    def on_conn(self):\n"
                "        self.service.handle()\n",
            ),
        )
        edges = {e.raw: e.target for e in edges_of(ctx, "srv:Server.on_conn")}
        assert edges["self.service.handle"] == "svc:Service.handle"

    def test_local_variable_typed_by_constructor(self):
        ctx = project(
            (
                "m",
                "class Widget:\n"
                "    def ping(self):\n"
                "        pass\n"
                "def use():\n"
                "    w = Widget()\n"
                "    w.ping()\n",
            )
        )
        by_raw = {e.raw: e for e in edges_of(ctx, "m:use")}
        assert by_raw["w.ping"].target == "m:Widget.ping"
        assert by_raw["Widget"].target is None  # no __init__ defined

    def test_decorator_creates_edge(self):
        ctx = project(
            (
                "m",
                "def deco(fn):\n"
                "    return fn\n"
                "@deco\n"
                "def decorated():\n"
                "    pass\n",
            )
        )
        raws = {e.raw: e.target for e in edges_of(ctx, f"m:{MODULE_BODY}")}
        assert raws["deco"] == "m:deco"

    def test_nested_def_and_lambda(self):
        ctx = project(
            (
                "m",
                "def outer():\n"
                "    def inner():\n"
                "        pass\n"
                "    fn = lambda: inner()\n"
                "    inner()\n"
                "    fn()\n",
            )
        )
        by_raw = {e.raw: e.target for e in edges_of(ctx, "m:outer")}
        assert by_raw["inner"] == "m:outer.<locals>.inner"
        assert by_raw["fn"] == "m:outer.<locals>.<lambda@4>"
        lam_edges = edges_of(ctx, "m:outer.<locals>.<lambda@4>")
        assert lam_edges[0].target == "m:outer.<locals>.inner"

    def test_reexport_chain_through_package_init(self):
        ctx = project(
            ("pkg.impl", "def api():\n    pass\n"),
            ("pkg", "from pkg.impl import api\n"),
            (
                "user",
                "from pkg import api\n"
                "def go():\n    api()\n",
            ),
        )
        (edge,) = edges_of(ctx, "user:go")
        assert edge.target == "pkg.impl:api"

    def test_external_call_expands_alias(self):
        ctx = project(
            ("m", "import time as t\ndef f():\n    t.sleep(1)\n")
        )
        (edge,) = edges_of(ctx, "m:f")
        assert edge.target is None
        assert edge.external == "time.sleep"

    def test_unique_method_heuristic(self):
        ctx = project(
            (
                "m",
                "class Only:\n"
                "    def very_unique_name(self):\n"
                "        pass\n"
                "def f(x):\n"
                "    x.very_unique_name()\n",
            )
        )
        (edge,) = edges_of(ctx, "m:f")
        assert edge.target == "m:Only.very_unique_name"

    def test_reachability_and_chain(self):
        ctx = project(
            (
                "m",
                "def a():\n    b()\n"
                "def b():\n    c()\n"
                "def c():\n    pass\n"
                "def unrelated():\n    pass\n",
            )
        )
        reachable = ctx.reachable_from(["m:a"])
        assert "m:c" in reachable and "m:unrelated" not in reachable
        assert ctx.chain(reachable, "m:c") == ["m:a", "m:b", "m:c"]

    def test_constructor_call_links_to_init(self):
        ctx = project(
            (
                "m",
                "class Box:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
                "def make():\n"
                "    return Box()\n",
            )
        )
        (edge,) = edges_of(ctx, "m:make")
        assert edge.target == "m:Box.__init__"


class TestIncrementalCache:
    def tree(self, tmp_path, source="def f():\n    pass\n"):
        src = tmp_path / "src" / "pkg"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(source)
        return src / "mod.py"

    def engine(self, tmp_path, cache=None):
        return LintEngine(project_root=tmp_path, cache=cache)

    def test_warm_run_hits_and_skips_parsing(self, tmp_path):
        path = self.tree(tmp_path)
        cache = LintCache(tmp_path)
        cache.load()
        eng = self.engine(tmp_path, cache)
        cold = eng.check_paths([path])
        assert eng.stats == {"files": 1, "parsed": 1, "cache_hits": 0}
        assert (tmp_path / CACHE_FILENAME).is_file()

        cache2 = LintCache(tmp_path)
        cache2.load()
        eng2 = self.engine(tmp_path, cache2)
        warm = eng2.check_paths([path])
        assert eng2.stats == {"files": 1, "parsed": 0, "cache_hits": 1}
        assert warm == cold

    def test_edited_file_reparsed_others_cached(self, tmp_path):
        path = self.tree(tmp_path)
        other = path.with_name("other.py")
        other.write_text("def g():\n    pass\n")
        cache = LintCache(tmp_path)
        cache.load()
        eng = self.engine(tmp_path, cache)
        eng.check_paths([path.parent])
        assert eng.stats["parsed"] == 2

        path.write_text("def f():\n    return 1\n")
        cache2 = LintCache(tmp_path)
        cache2.load()
        eng2 = self.engine(tmp_path, cache2)
        eng2.check_paths([path.parent])
        assert eng2.stats == {"files": 2, "parsed": 1, "cache_hits": 1}

    def test_stale_version_discarded(self, tmp_path):
        path = self.tree(tmp_path)
        cache = LintCache(tmp_path)
        cache.load()
        self.engine(tmp_path, cache).check_paths([path])

        raw = json.loads((tmp_path / CACHE_FILENAME).read_text())
        raw["version"] = CACHE_VERSION + 1
        (tmp_path / CACHE_FILENAME).write_text(json.dumps(raw))
        cache2 = LintCache(tmp_path)
        cache2.load()
        eng = self.engine(tmp_path, cache2)
        eng.check_paths([path])
        assert eng.stats["cache_hits"] == 0 and eng.stats["parsed"] == 1

    def test_environment_doc_edit_invalidates(self, tmp_path):
        path = self.tree(tmp_path)
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "OBSERVABILITY.md").write_text("| `a/b` | counter | x |\n")
        cache = LintCache(tmp_path)
        cache.load()
        self.engine(tmp_path, cache).check_paths([path])

        (docs / "OBSERVABILITY.md").write_text("| `a/c` | counter | x |\n")
        cache2 = LintCache(tmp_path)
        cache2.load()
        eng = self.engine(tmp_path, cache2)
        eng.check_paths([path])
        assert eng.stats["cache_hits"] == 0

    def test_corrupt_cache_discarded(self, tmp_path):
        path = self.tree(tmp_path)
        (tmp_path / CACHE_FILENAME).write_text("{not json")
        cache = LintCache(tmp_path)
        cache.load()
        eng = self.engine(tmp_path, cache)
        eng.check_paths([path])
        assert eng.stats["parsed"] == 1

    def test_rule_subset_semantics(self, tmp_path):
        path = self.tree(tmp_path)
        cache = LintCache(tmp_path)
        cache.load()
        narrow = LintEngine(
            rules=["DEF001"], project_root=tmp_path, cache=cache
        )
        narrow.check_paths([path])

        # a broader selection cannot reuse the narrow entry...
        cache2 = LintCache(tmp_path)
        cache2.load()
        broad = self.engine(tmp_path, cache2)
        broad.check_paths([path])
        assert broad.stats["cache_hits"] == 0
        # ...but the narrow selection can reuse the broad entry.
        cache3 = LintCache(tmp_path)
        cache3.load()
        narrow2 = LintEngine(
            rules=["DEF001"], project_root=tmp_path, cache=cache3
        )
        narrow2.check_paths([path])
        assert narrow2.stats["cache_hits"] == 1

    def test_cached_violations_replayed(self, tmp_path):
        source = "def f(x=[]):\n    pass\n"  # DEF001
        path = self.tree(tmp_path, source)
        cache = LintCache(tmp_path)
        cache.load()
        eng = self.engine(tmp_path, cache)
        cold = eng.check_paths([path])
        assert any(v.rule_id == "DEF001" for v in cold)

        cache2 = LintCache(tmp_path)
        cache2.load()
        eng2 = self.engine(tmp_path, cache2)
        warm = eng2.check_paths([path])
        assert eng2.stats["cache_hits"] == 1
        assert warm == cold


class TestModuleNames:
    def test_src_relative_module_names(self, tmp_path):
        src = tmp_path / "src" / "pkg" / "sub"
        src.mkdir(parents=True)
        (src / "mod.py").write_text("x = 1\n")
        (src / "__init__.py").write_text("")
        eng = LintEngine(project_root=tmp_path)
        assert eng._module_name(src / "mod.py") == "pkg.sub.mod"
        assert eng._module_name(src / "__init__.py") == "pkg.sub"

    def test_outside_src_is_none(self, tmp_path):
        other = tmp_path / "scripts"
        other.mkdir()
        (other / "x.py").write_text("x = 1\n")
        eng = LintEngine(project_root=tmp_path)
        assert eng._module_name(other / "x.py") is None


class TestModuleLevelNoqa:
    def test_module_noqa_silences_listed_rule_everywhere(self):
        eng = LintEngine(rules=["DEF001"])
        src = (
            "# repro: noqa-module[DEF001]\n"
            "def f(x=[]):\n    pass\n"
            "def g(y={}):\n    pass\n"
        )
        assert eng.check_source(src) == []

    def test_module_noqa_only_silences_listed_ids(self):
        eng = LintEngine(rules=["DEF001", "FLT001"])
        src = (
            "# repro: noqa-module[FLT001]\n"
            "def f(x=[]):\n    return x == 0.1\n"
        )
        found = {v.rule_id for v in eng.check_source(src)}
        assert found == {"DEF001"}

    def test_inline_multi_id_noqa(self):
        eng = LintEngine(rules=["DEF001", "FLT001"])
        src = "def f(x=[], y=0.1):  # repro: noqa[DEF001,FLT001]\n    pass\n"
        assert eng.check_source(src) == []

    def test_summary_module_noqa_suppresses_project_rule(self):
        eng = LintEngine(rules=["LOCK002"])
        src = (
            "# repro: noqa-module[LOCK002]\n"
            "async def f(lock):\n"
            "    with lock:\n"
            "        await g()\n"
        )
        assert eng.check_source(src) == []
