"""Machine presets used throughout the paper and its reproduction.

Three machines appear in the paper:

* :func:`model_machine` — the didactic machine of Section III-A's worked
  examples (Tables I and II, Figure 2): 4 NUMA nodes, 8 cores each, 10
  GFLOPS per core, 32 GB/s of memory bandwidth per node.

  .. note::
     The captions of Tables I and II say "40 GB/s bandwidth per NUMA node",
     but every number inside those tables is computed with 32 GB/s (the
     baseline is ``32/8 = 4`` GB/s and the body text states "The memory
     bandwidth is 32 GB/s per NUMA node").  We follow the arithmetic, not
     the caption.

* :func:`numa_bad_example_machine` — the machine implied by the NUMA-bad
  example (Figure 3; "even = 138 GFLOPS, node-exclusive = 150 GFLOPS").
  The paper never states this machine's bandwidths.  Working the model
  backwards, the 32 GB/s machine cannot produce 150 GFLOPS for any
  allocation of those applications (total machine bandwidth caps the
  configuration at 80 GFLOPS); local 60 GB/s with 10 GB/s inter-node links
  reproduces both published numbers (138.75 and 150.0).  See DESIGN.md
  Section 3.

* :func:`skylake_4s` — the experimental platform of Section III-B: a
  four-socket Intel Xeon Gold 6138 server, 4 NUMA nodes x 20 cores.  The
  paper estimates "100 GB/s memory bandwidth and 0.29 peak GFLOPS per
  thread" from the calibration run; the 10 GB/s link bandwidth is our
  recovery from Table III's cross-node rows (it reproduces the published
  13.98 GFLOPS exactly).

:func:`knl_flat` is provided as an extra: the Knights Landing machine from
the authors' earlier work [11], where NUMA (SNC-4 clustering) is optional —
useful for NUMA-aware-vs-oblivious comparisons.
"""

from __future__ import annotations

from repro.machine.topology import MachineTopology

__all__ = [
    "model_machine",
    "numa_bad_example_machine",
    "skylake_4s",
    "knl_flat",
    "knl_snc4",
    "uma_machine",
    "heterogeneous_machine",
]

#: Inter-node link bandwidth (GB/s) recovered from Table III (see module doc).
SKYLAKE_LINK_BANDWIDTH_GBS = 10.0

#: Peak per-thread GFLOPS estimated by the paper's calibration (Sec. III-B).
SKYLAKE_PEAK_GFLOPS_PER_THREAD = 0.29

#: Per-node memory bandwidth estimated by the paper's calibration (GB/s).
SKYLAKE_NODE_BANDWIDTH_GBS = 100.0


def model_machine() -> MachineTopology:
    """The worked-example machine of Tables I/II and Figure 2.

    4 NUMA nodes x 8 cores, 10 GFLOPS/core, 32 GB/s per node.  Inter-node
    links are set to 10 GB/s; the Tables I/II scenarios never exercise them
    because every application there is NUMA-perfect.
    """
    return MachineTopology.homogeneous(
        num_nodes=4,
        cores_per_node=8,
        peak_gflops_per_core=10.0,
        local_bandwidth=32.0,
        remote_bandwidth=10.0,
        name="paper-model-4x8",
    )


def numa_bad_example_machine() -> MachineTopology:
    """The machine implied by the Figure 3 NUMA-bad example.

    Local bandwidth 60 GB/s, links 10 GB/s (recovered, not stated in the
    paper — see module docstring).  With the paper's applications this
    yields 138.75 GFLOPS for the even allocation (paper prints 138) and
    exactly 150.0 GFLOPS for the node-exclusive allocation.
    """
    return MachineTopology.homogeneous(
        num_nodes=4,
        cores_per_node=8,
        peak_gflops_per_core=10.0,
        local_bandwidth=60.0,
        remote_bandwidth=10.0,
        name="paper-numa-bad-4x8",
    )


def skylake_4s() -> MachineTopology:
    """The calibrated four-socket Skylake server of Section III-B.

    4 NUMA nodes x 20 cores (Xeon Gold 6138), 0.29 GFLOPS per thread and
    100 GB/s per node as calibrated by the paper, 10 GB/s links as
    recovered from Table III.
    """
    return MachineTopology.homogeneous(
        num_nodes=4,
        cores_per_node=20,
        peak_gflops_per_core=SKYLAKE_PEAK_GFLOPS_PER_THREAD,
        local_bandwidth=SKYLAKE_NODE_BANDWIDTH_GBS,
        remote_bandwidth=SKYLAKE_LINK_BANDWIDTH_GBS,
        name="skylake-gold6138-4s",
    )


def knl_flat() -> MachineTopology:
    """A Knights Landing node with NUMA clustering switched off.

    Modelled as a single NUMA node with 64 cores.  Bandwidth reflects
    DDR4-only (flat) mode at roughly 90 GB/s; per-core peak is scaled so
    aggregate peak compute matches the SNC-4 variant.
    """
    return MachineTopology.homogeneous(
        num_nodes=1,
        cores_per_node=64,
        peak_gflops_per_core=0.7,
        local_bandwidth=90.0,
        name="knl-flat",
    )


def knl_snc4() -> MachineTopology:
    """A Knights Landing node in SNC-4 mode: 4 clusters x 16 cores."""
    return MachineTopology.homogeneous(
        num_nodes=4,
        cores_per_node=16,
        peak_gflops_per_core=0.7,
        local_bandwidth=22.5,
        remote_bandwidth=11.0,
        name="knl-snc4",
    )


def uma_machine(
    *, cores: int = 8, peak_gflops_per_core: float = 10.0, bandwidth: float = 32.0
) -> MachineTopology:
    """A single-node (UMA) machine, handy for model unit tests."""
    return MachineTopology.homogeneous(
        num_nodes=1,
        cores_per_node=cores,
        peak_gflops_per_core=peak_gflops_per_core,
        local_bandwidth=bandwidth,
        name=f"uma-{cores}c",
    )


def heterogeneous_machine() -> MachineTopology:
    """A machine with unequal NUMA nodes (extension).

    Two "big" nodes (12 cores, 80 GB/s) and two "small" ones (4 cores,
    24 GB/s) — the shape of a CPU+HBM or big.LITTLE-ish server.  The
    model and simulator handle per-node core counts and bandwidths; the
    symmetric-only tooling (worked examples, symmetric enumeration)
    rejects it, which the tests pin.
    """
    from repro.machine.topology import Core, NumaNode
    import numpy as np

    nodes = []
    gid = 0
    shapes = [(12, 80.0), (12, 80.0), (4, 24.0), (4, 24.0)]
    for node_id, (cores, bw) in enumerate(shapes):
        node_cores = tuple(
            Core(
                global_id=gid + i,
                node_id=node_id,
                local_id=i,
                peak_gflops=10.0,
            )
            for i in range(cores)
        )
        gid += cores
        nodes.append(
            NumaNode(
                node_id=node_id, cores=node_cores, local_bandwidth=bw
            )
        )
    links = np.full((4, 4), 12.0)
    for i, (_, bw) in enumerate(shapes):
        links[i, i] = bw
    return MachineTopology(
        nodes=tuple(nodes), link_bandwidth=links, name="hetero-2big-2small"
    )
