"""The paper's central Section III argument, measured end to end.

"Allocating cores to such [NUMA-aware] applications by specifying the
total number of worker threads could be very inefficient ... we believe
... it would be better to use option 3 ... and instruct the runtime
systems how many threads to use on the different NUMA nodes."

A NUMA-aware stencil is reduced from 80 to 40 threads under each
thread-control option on the Skylake machine.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_thread_control_options


def test_bench_thread_control_options(benchmark):
    res = benchmark.pedantic(
        run_thread_control_options, rounds=1, iterations=1
    )
    emit(
        "Thread-control options on a NUMA-aware stencil (80 -> 40 threads)",
        render_table(
            ["configuration", "completion time [s]"],
            [
                ["full machine (80 threads)", res.full_machine],
                ["option 1: total=40 (runtime picks)", res.option1_total],
                ["option 3: even (10,10,10,10)", res.option3_even],
                ["option 3: packed (20,20,0,0)", res.option3_packed],
                ["option 2: block nodes 2+3", res.option2_two_nodes],
            ],
        ),
    )
    # The paper's claim: option 3 (even) is the right way to shrink a
    # NUMA-aware application; node-agnostic shrinking pays dearly.
    assert res.option3_even < res.option1_total / 2
    assert res.option3_even < res.option3_packed / 2
    # The packed option-3 allocation matches the explicit-block worst
    # case: the damage is entirely about *which* nodes keep workers.
    assert res.option3_packed == pytest.approx(
        res.option2_two_nodes, rel=0.05
    )
    # Emergent extra: the full machine also loses to the even reduction
    # because surplus workers steal remote blocks over the links.
    assert res.option3_even < res.full_machine
