"""Node partitioning strategies for co-located components (Section V).

A distributed application's main component shares every node with a
second, bursty component (think in-situ analytics, a coupled solver, or
the paper's "library").  Three ways to split each node:

* :class:`StaticExclusivePartition` — "allocating nodes to the different
  components exclusively": on ``main_fraction`` of the ranks the main
  component owns the whole node; on the rest it gets nothing (those ranks
  contribute no main-component work — the comparison is made at equal
  total node count).
* :class:`StaticSplitPartition` — "splitting each node into several parts
  and giving each part to a component": the main component permanently
  owns a fixed fraction of each node's cores.
* :class:`DynamicSharingPartition` — the paper's proposal: components run
  on the same nodes and cores shift with demand.  While the co-located
  component is idle (its duty cycle's off phase), the main component gets
  (almost) the whole node; while it is active, the main component falls
  back to its split share.  The reallocation penalty models the shifting
  cost (thread wake-up, cache refill).

Every strategy turns a per-node performance figure into one
:class:`~repro.distributed.rates.PeriodicRate` per rank.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.allocation import ThreadAllocation
from repro.core.model import NumaPerformanceModel
from repro.core.spec import AppSpec
from repro.distributed.rates import PeriodicRate, RatePhase
from repro.errors import DistributedError
from repro.machine.topology import MachineTopology

__all__ = [
    "NodePerformance",
    "Partition",
    "StaticExclusivePartition",
    "StaticSplitPartition",
    "DynamicSharingPartition",
]


class NodePerformance:
    """Model-backed GFLOPS of the main component at a given core share.

    Evaluates the Section III model for the main component receiving
    ``share`` of every NUMA node's cores (the co-located component gets
    the rest), so the distributed layer inherits the on-node NUMA
    behaviour instead of assuming linear scaling.
    """

    def __init__(
        self,
        machine: MachineTopology,
        main: AppSpec,
        colocated: AppSpec,
        *,
        model: NumaPerformanceModel | None = None,
    ) -> None:
        self.machine = machine
        self.main = main
        self.colocated = colocated
        self.model = model or NumaPerformanceModel()
        self._cache: dict[tuple[int, bool], float] = {}

    def main_gflops(self, share: float, *, colocated_active: bool) -> float:
        """Main component's node GFLOPS at a core ``share`` in [0, 1]."""
        if not 0 <= share <= 1:
            raise DistributedError(f"share must be in [0,1], got {share}")
        per_node = [
            int(round(share * n.num_cores)) for n in self.machine.nodes
        ]
        key = (tuple(per_node), colocated_active)
        if key in self._cache:
            return self._cache[key]
        rest = [
            n.num_cores - p
            for n, p in zip(self.machine.nodes, per_node)
        ]
        if sum(per_node) == 0:
            self._cache[key] = 0.0
            return 0.0
        apps = [self.main]
        counts = [per_node]
        if colocated_active and sum(rest) > 0:
            apps.append(self.colocated)
            counts.append(rest)
        alloc = ThreadAllocation(
            app_names=tuple(a.name for a in apps),
            counts=np.array(counts, dtype=np.int64),
        )
        pred = self.model.predict(self.machine, apps, alloc)
        out = pred.app(self.main.name).gflops
        self._cache[key] = out
        return out


class Partition(ABC):
    """Strategy interface: rank -> main-component rate profile."""

    @abstractmethod
    def rank_profile(self, rank: int, num_ranks: int) -> PeriodicRate:
        """The main component's compute-rate profile on ``rank``."""

    def participating_ranks(self, num_ranks: int) -> list[int]:
        """Ranks hosting the main component (all, unless exclusive)."""
        return list(range(num_ranks))


@dataclass
class StaticExclusivePartition(Partition):
    """Whole nodes go to one component or the other.

    The main component only exists on ``main_fraction`` of the ranks, so
    at the same global problem size each of its ranks carries
    proportionally more work (the workload models rescale accordingly).
    """

    perf: NodePerformance
    main_fraction: float = 0.5

    def participating_ranks(self, num_ranks: int) -> list[int]:
        """The ranks hosting the main component."""
        main_ranks = max(1, int(round(self.main_fraction * num_ranks)))
        return list(range(main_ranks))

    def rank_profile(self, rank: int, num_ranks: int) -> PeriodicRate:
        """The main component's constant rate on one of its ranks."""
        if rank not in self.participating_ranks(num_ranks):
            raise DistributedError(
                f"rank {rank} does not host the main component"
            )
        g = self.perf.main_gflops(1.0, colocated_active=False)
        return PeriodicRate.constant(g)


@dataclass
class StaticSplitPartition(Partition):
    """Each node permanently split between the components."""

    perf: NodePerformance
    main_share: float = 0.5
    colocated_duty_cycle: float = 0.5
    colocated_period: float = 1.0
    stagger: bool = True

    def rank_profile(self, rank: int, num_ranks: int) -> PeriodicRate:
        """Per-rank rate alternating with the colocated duty cycle."""
        on = self.colocated_duty_cycle * self.colocated_period
        off = self.colocated_period - on
        busy = self.perf.main_gflops(
            self.main_share, colocated_active=True
        )
        quiet = self.perf.main_gflops(
            self.main_share, colocated_active=False
        )
        phases = []
        if on > 0:
            phases.append(RatePhase(on, busy))
        if off > 0:
            phases.append(RatePhase(off, quiet))
        offset = (
            rank * self.colocated_period / max(num_ranks, 1)
            if self.stagger
            else 0.0
        )
        return PeriodicRate(phases, offset=offset)


@dataclass
class DynamicSharingPartition(Partition):
    """Cores shift to the main component whenever the co-runner idles.

    ``reallocation_penalty`` is the fraction of each phase lost to the
    shift itself (waking threads, command latency, cache refill); the
    paper's mechanism makes this small, and the ``oversub`` benchmarks
    measure how large it may grow before dynamic sharing loses.
    """

    perf: NodePerformance
    main_share_busy: float = 0.5
    main_share_quiet: float = 1.0
    colocated_duty_cycle: float = 0.5
    colocated_period: float = 1.0
    reallocation_penalty: float = 0.02
    stagger: bool = True

    def rank_profile(self, rank: int, num_ranks: int) -> PeriodicRate:
        """Per-rank rate as cores shift with the co-runner's phases."""
        if not 0 <= self.reallocation_penalty < 1:
            raise DistributedError(
                "reallocation_penalty must be in [0,1)"
            )
        on = self.colocated_duty_cycle * self.colocated_period
        off = self.colocated_period - on
        eff = 1.0 - self.reallocation_penalty
        busy = self.perf.main_gflops(
            self.main_share_busy, colocated_active=True
        )
        quiet = self.perf.main_gflops(
            self.main_share_quiet, colocated_active=False
        )
        phases = []
        if on > 0:
            phases.append(RatePhase(on, busy * eff))
        if off > 0:
            phases.append(RatePhase(off, quiet * eff))
        offset = (
            rank * self.colocated_period / max(num_ranks, 1)
            if self.stagger
            else 0.0
        )
        return PeriodicRate(phases, offset=offset)
