"""NUMA machine descriptions: topology objects, presets, calibration.

Calibration and STREAM symbols are loaded lazily (PEP 562): they sit on
top of :mod:`repro.core` and :mod:`repro.sim`, which themselves build on
this package — importing them eagerly here would close an import cycle.
"""

from repro.machine.presets import (
    heterogeneous_machine,
    knl_flat,
    knl_snc4,
    model_machine,
    numa_bad_example_machine,
    skylake_4s,
    uma_machine,
)
from repro.machine.parser import format_topology, parse_topology
from repro.machine.topology import Core, MachineTopology, NumaNode

__all__ = [
    "Core",
    "NumaNode",
    "MachineTopology",
    "model_machine",
    "numa_bad_example_machine",
    "skylake_4s",
    "knl_flat",
    "knl_snc4",
    "uma_machine",
    "heterogeneous_machine",
    "parse_topology",
    "format_topology",
    "CalibratedParameters",
    "calibrate_from_even_run",
    "Scenario",
    "LeastSquaresCalibrator",
    "measure_pair_bandwidth",
    "measure_link_matrix",
]

_LAZY = {
    "CalibratedParameters": "repro.machine.calibration",
    "calibrate_from_even_run": "repro.machine.calibration",
    "Scenario": "repro.machine.calibration",
    "LeastSquaresCalibrator": "repro.machine.calibration",
    "measure_pair_bandwidth": "repro.machine.stream",
    "measure_link_matrix": "repro.machine.stream",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.machine' has no attribute '{name}'")
