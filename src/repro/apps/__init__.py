"""Synthetic applications and composition scenarios."""

from repro.apps.composed import ComposedAppScenario
from repro.apps.nonworker import ComputeThread, IoThread
from repro.apps.producer_consumer import ProducerConsumerScenario
from repro.apps.stencil import StencilApp
from repro.apps.synthetic import SyntheticApp
from repro.apps.workloads import chain, fan, fork_join, random_dag, stencil_1d

__all__ = [
    "SyntheticApp",
    "StencilApp",
    "ProducerConsumerScenario",
    "ComposedAppScenario",
    "IoThread",
    "ComputeThread",
    "fan",
    "chain",
    "fork_join",
    "stencil_1d",
    "random_dag",
]
