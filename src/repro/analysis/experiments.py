"""One driver per paper table/figure (the experiment index of DESIGN.md).

Each function is self-contained, deterministic, and returns a small result
object carrying both the paper's published values and this reproduction's
values, so benchmarks, tests and EXPERIMENTS.md all consume the same code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.agent import (
    Agent,
    LibraryShiftStrategy,
    OcrVxEndpoint,
    ProducerConsumerAlignment,
)
from repro.apps import ComposedAppScenario, ProducerConsumerScenario, SyntheticApp
from repro.core import (
    AppSpec,
    EvenSharePolicy,
    ExhaustiveSearch,
    NodeExclusivePolicy,
    NumaPerformanceModel,
    Placement,
    ThreadAllocation,
    UnevenSharePolicy,
    worked_example,
)
from repro.distributed import (
    ClusterExperiment,
    DynamicSharingPartition,
    NodePerformance,
    StaticExclusivePartition,
    StaticSplitPartition,
)
from repro.machine import (
    model_machine,
    numa_bad_example_machine,
    skylake_4s,
)
from repro.machine.calibration import calibrate_from_even_run
from repro.runtime import OCRVxRuntime
from repro.sim import CfsScheduler, ExecutionSimulator

__all__ = [
    "ScenarioResult",
    "Table3Row",
    "run_table1",
    "run_table2",
    "run_fig2",
    "run_fig3",
    "table3_scenarios",
    "run_table3_model",
    "run_table3_real",
    "run_fig1_agent",
    "run_oversubscription",
    "run_sublinear",
    "run_library_shift",
    "run_distributed",
    "run_calibration",
    "OversubBenefitResult",
    "run_oversub_benefit",
    "DvfsResult",
    "run_dvfs_ablation",
    "ValidationResult",
    "run_model_validation",
    "AdaptiveResult",
    "run_adaptive_agent",
    "ThreadControlResult",
    "run_thread_control_options",
    "CacheHandoffResult",
    "run_cache_handoff",
    "MixedRuntimesResult",
    "run_mixed_runtimes",
]


@dataclass(frozen=True)
class ScenarioResult:
    """A named scenario's predicted-vs-paper GFLOPS."""

    name: str
    gflops: float
    paper_gflops: float | None = None

    @property
    def relative_error(self) -> float | None:
        """Signed relative deviation from the paper's value."""
        if self.paper_gflops is None:
            return None
        return (self.gflops - self.paper_gflops) / self.paper_gflops


# ----------------------------------------------------------------------
# Tables I / II and Figure 2 (the worked model examples)
# ----------------------------------------------------------------------
def _model_apps() -> list[AppSpec]:
    return [
        AppSpec.memory_bound("mem0", 0.5),
        AppSpec.memory_bound("mem1", 0.5),
        AppSpec.memory_bound("mem2", 0.5),
        AppSpec.compute_bound("comp", 10.0),
    ]


def run_table1():
    """Table I: uneven allocation (1,1,1,5) on the model machine."""
    machine = model_machine()
    return worked_example(
        machine,
        [
            (AppSpec.memory_bound("memory-bound", 0.5), 3, 1),
            (AppSpec.compute_bound("compute-bound", 10.0), 1, 5),
        ],
    )


def run_table2():
    """Table II: even allocation (2,2,2,2) on the model machine."""
    machine = model_machine()
    return worked_example(
        machine,
        [
            (AppSpec.memory_bound("memory-bound", 0.5), 3, 2),
            (AppSpec.compute_bound("compute-bound", 10.0), 1, 2),
        ],
    )


def run_fig2() -> list[ScenarioResult]:
    """Figure 2: the three allocation scenarios (254 / 140 / 128)."""
    machine = model_machine()
    apps = _model_apps()
    model = NumaPerformanceModel()
    uneven = UnevenSharePolicy(
        {"mem0": 1, "mem1": 1, "mem2": 1, "comp": 5}
    ).allocate(machine, apps)
    even = EvenSharePolicy().allocate(machine, apps)
    exclusive = NodeExclusivePolicy().allocate(machine, apps)
    return [
        ScenarioResult(
            "a) uneven (1,1,1,5)",
            model.predict(machine, apps, uneven).total_gflops,
            254.0,
        ),
        ScenarioResult(
            "b) even (2,2,2,2)",
            model.predict(machine, apps, even).total_gflops,
            140.0,
        ),
        ScenarioResult(
            "c) node-exclusive",
            model.predict(machine, apps, exclusive).total_gflops,
            128.0,
        ),
    ]


def run_fig3() -> list[ScenarioResult]:
    """Figure 3: NUMA-bad example (even 138 vs node-exclusive 150).

    Machine bandwidths recovered as 60 GB/s local + 10 GB/s links (see
    DESIGN.md Section 3); 138.75 reproduces the paper's printed 138.
    """
    machine = numa_bad_example_machine()
    apps = [
        AppSpec.memory_bound("mem0", 0.5),
        AppSpec.memory_bound("mem1", 0.5),
        AppSpec.memory_bound("mem2", 0.5),
        AppSpec.numa_bad("bad", 1.0, home_node=3),
    ]
    model = NumaPerformanceModel()
    even = EvenSharePolicy().allocate(machine, apps)
    exclusive = NodeExclusivePolicy(data_affine=True).allocate(machine, apps)
    return [
        ScenarioResult(
            "even (2,2,2,2)",
            model.predict(machine, apps, even).total_gflops,
            138.0,
        ),
        ScenarioResult(
            "node-exclusive (data-affine)",
            model.predict(machine, apps, exclusive).total_gflops,
            150.0,
        ),
    ]


# ----------------------------------------------------------------------
# Table III (model vs "real" synthetic benchmark on the Skylake server)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table3Row:
    """One Table III scenario: paper's model/real vs ours."""

    name: str
    paper_model: float
    paper_real: float
    our_model: float
    our_real: float | None = None


def _skylake_apps_basic() -> list[AppSpec]:
    return [
        AppSpec.memory_bound("mem0", 1 / 32),
        AppSpec.memory_bound("mem1", 1 / 32),
        AppSpec.memory_bound("mem2", 1 / 32),
        AppSpec.compute_bound("comp", 1.0),
    ]


def _skylake_apps_numabad() -> list[AppSpec]:
    return [
        AppSpec.memory_bound("mem0", 1 / 32),
        AppSpec.memory_bound("mem1", 1 / 32),
        AppSpec.memory_bound("mem2", 1 / 32),
        AppSpec.numa_bad("bad", 1 / 16, home_node=0),
    ]


def table3_scenarios() -> list[
    tuple[str, list[AppSpec], ThreadAllocation, float, float]
]:
    """The five Table III scenarios: (name, apps, allocation, paper model,
    paper real)."""
    machine = skylake_4s()
    basic = _skylake_apps_basic()
    bad = _skylake_apps_numabad()
    names_basic = [a.name for a in basic]
    names_bad = [a.name for a in bad]
    return [
        (
            "uneven (1,1,1,17)",
            basic,
            ThreadAllocation.uniform(names_basic, 4, [1, 1, 1, 17]),
            23.20,
            22.82,
        ),
        (
            "even (5,5,5,5)",
            basic,
            ThreadAllocation.uniform(names_basic, 4, 5),
            18.12,
            18.14,
        ),
        (
            "node-exclusive",
            basic,
            ThreadAllocation.node_exclusive(names_basic, machine),
            15.18,
            15.28,
        ),
        (
            "NUMA-bad cross-node (even)",
            bad,
            ThreadAllocation.uniform(names_bad, 4, 5),
            13.98,
            13.25,
        ),
        (
            "NUMA-bad on-node (exclusive)",
            bad,
            ThreadAllocation.node_exclusive(
                names_bad,
                machine,
                assignment={"bad": 0, "mem0": 1, "mem1": 2, "mem2": 3},
            ),
            15.18,
            14.52,
        ),
    ]


def run_table3_model() -> list[Table3Row]:
    """Table III, model column only (fast, exact)."""
    machine = skylake_4s()
    model = NumaPerformanceModel()
    rows = []
    for name, apps, alloc, paper_model, paper_real in table3_scenarios():
        ours = model.predict(machine, apps, alloc).total_gflops
        rows.append(
            Table3Row(
                name=name,
                paper_model=paper_model,
                paper_real=paper_real,
                our_model=ours,
            )
        )
    return rows


def _run_real_scenario(
    apps: Sequence[AppSpec],
    allocation: ThreadAllocation,
    *,
    duration: float = 0.5,
    task_flops: float | None = None,
    noise: float = 0.0,
    noise_seed: int = 0,
) -> float:
    """Measure a Table III scenario on the full runtime+simulator stack."""
    machine = skylake_4s()
    ex = ExecutionSimulator(machine, noise=noise, noise_seed=noise_seed)
    streams = []
    for app in apps:
        rt = OCRVxRuntime(app.name, ex)
        rt.start([int(x) for x in allocation.threads_of(app.name)])
        flops = task_flops
        if flops is None:
            # ~10 slices per task at this app's peak rate.
            core_peak = machine.nodes[0].cores[0].peak_gflops
            flops = core_peak * ex.slice_seconds * 10
        sapp = SyntheticApp(rt, app, task_flops=flops)
        sapp.submit_stream(10**9)
        streams.append(sapp)
    ex.run(duration)
    return ex.total_gflops(duration)


def run_table3_real(
    *, duration: float = 0.5, noise: float = 0.0, noise_seed: int = 0
) -> list[Table3Row]:
    """Table III, both columns: model (analytic) and real (simulated
    synthetic benchmark through the OCR-Vx runtime stack).

    ``noise`` adds seeded per-slice rate jitter, reproducing the
    few-percent model-vs-real deviations the paper's hardware showed.
    """
    rows = []
    machine = skylake_4s()
    model = NumaPerformanceModel()
    for name, apps, alloc, paper_model, paper_real in table3_scenarios():
        ours_model = model.predict(machine, apps, alloc).total_gflops
        ours_real = _run_real_scenario(
            apps,
            alloc,
            duration=duration,
            noise=noise,
            noise_seed=noise_seed,
        )
        rows.append(
            Table3Row(
                name=name,
                paper_model=paper_model,
                paper_real=paper_real,
                our_model=ours_model,
                our_real=ours_real,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 1: the agent architecture (producer-consumer alignment)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig1Result:
    """Producer-consumer outcome with and without the agent."""

    time_without_agent: float
    time_with_agent: float
    peak_items_without_agent: int
    peak_items_with_agent: int
    agent_rounds: int
    agent_commands: int


def run_fig1_agent(
    *,
    iterations: int = 40,
    producer_flops: float = 0.004,
    consumer_flops: float = 0.012,
    max_lead: float = 3.0,
) -> Fig1Result:
    """Reproduce the Figure 1 architecture experiment.

    Both applications start with a full set of worker threads (one per
    core, heavily over-subscribing the machine); the agent aligns their
    progress, which should cut the intermediate-data high-water mark
    sharply while changing wall-clock only marginally (the paper's [10]
    finding)."""

    def _run(with_agent: bool):
        machine = model_machine()
        ex = ExecutionSimulator(machine)
        prod = OCRVxRuntime("producer", ex)
        cons = OCRVxRuntime("consumer", ex)
        prod.start()
        cons.start()
        scenario = ProducerConsumerScenario(
            ex,
            prod,
            cons,
            iterations=iterations,
            tasks_per_iteration=8,
            producer_flops=producer_flops,
            consumer_flops=consumer_flops,
        )
        scenario.build()
        agent = None
        if with_agent:
            agent = Agent(
                ex,
                ProducerConsumerAlignment(
                    "producer", "consumer", max_lead=max_lead, min_lead=1.0
                ),
                period=0.005,
            )
            agent.register(OcrVxEndpoint(prod))
            agent.register(OcrVxEndpoint(cons))
            agent.start()
        end = ex.run_until_condition(
            lambda: scenario.finished, max_time=600.0
        )
        return end, scenario.max_intermediate_items(), agent

    t0, peak0, _ = _run(False)
    t1, peak1, agent = _run(True)
    return Fig1Result(
        time_without_agent=t0,
        time_with_agent=t1,
        peak_items_without_agent=peak0,
        peak_items_with_agent=peak1,
        agent_rounds=agent.rounds,
        agent_commands=agent.commands_issued(),
    )


# ----------------------------------------------------------------------
# Section II claims: over-subscription and sub-linear scaling
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OversubResult:
    """Over-subscribed vs fair-share co-execution."""

    oversubscribed_gflops: float
    fair_share_gflops: float

    @property
    def improvement(self) -> float:
        """Relative gain of fair share over over-subscription."""
        return (
            self.fair_share_gflops - self.oversubscribed_gflops
        ) / self.oversubscribed_gflops


def run_oversubscription(
    *,
    context_switch_penalty: float = 0.03,
    duration: float = 0.3,
    arithmetic_intensity: float = 4.0,
) -> OversubResult:
    """Two apps, each with a full thread set, vs agent-style fair share.

    The paper: over-subscription "forces the operating system to
    constantly switch between threads ... leading to extra overhead", yet
    measured benefits of avoiding it were "only marginal (a few percent)".
    """

    def _run(fair: bool) -> float:
        machine = model_machine()
        ex = ExecutionSimulator(
            machine,
            scheduler=CfsScheduler(
                context_switch_penalty=context_switch_penalty
            ),
        )
        spec_a = AppSpec("appA", arithmetic_intensity)
        spec_b = AppSpec("appB", arithmetic_intensity)
        for spec in (spec_a, spec_b):
            rt = OCRVxRuntime(spec.name, ex)
            rt.start()  # full thread set: 2x over-subscription
            if fair:
                half = [n.num_cores // 2 for n in machine.nodes]
                rt.set_allocation(half)
            app = SyntheticApp(rt, spec)
            app.submit_stream(10**9)
        ex.run(duration)
        return ex.total_gflops(duration)

    return OversubResult(
        oversubscribed_gflops=_run(False),
        fair_share_gflops=_run(True),
    )


@dataclass(frozen=True)
class SublinearResult:
    """Fair share vs model-optimal allocation for a sub-linear app mix."""

    fair_gflops: float
    optimal_gflops: float
    optimal_allocation: ThreadAllocation

    @property
    def speedup(self) -> float:
        """optimal / fair."""
        return self.optimal_gflops / self.fair_gflops


def run_sublinear() -> SublinearResult:
    """Section II: when an app scales sub-linearly (memory bound), give
    its cores to an app that can use them.

    The Tables I/II workload *is* the example: the memory-bound apps stop
    scaling once the node bandwidth saturates, so the optimizer moves
    cores to the compute-bound app (the 254 vs 140 GFLOPS gap)."""
    machine = model_machine()
    apps = _model_apps()
    model = NumaPerformanceModel()
    fair = EvenSharePolicy().allocate(machine, apps)
    fair_g = model.predict(machine, apps, fair).total_gflops
    # Search with a 1-thread-per-app floor so nobody is starved outright.
    best = None
    from repro.core.policies import enumerate_symmetric_allocations

    for alloc in enumerate_symmetric_allocations(machine, apps):
        if np.any(alloc.counts.min(axis=1) < 1):
            continue
        g = model.predict(machine, apps, alloc).total_gflops
        if best is None or g > best[0]:
            best = (g, alloc)
    assert best is not None
    return SublinearResult(
        fair_gflops=fair_g,
        optimal_gflops=best[0],
        optimal_allocation=best[1],
    )


# ----------------------------------------------------------------------
# Tight integration: the library-call scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LibraryResult:
    """Composed main+library app under three core policies."""

    static_split_time: float
    dynamic_shift_time: float
    static_generous_time: float

    @property
    def speedup(self) -> float:
        """static split / dynamic shifting."""
        return self.static_split_time / self.dynamic_shift_time


def run_library_shift(
    *,
    phases: int = 12,
    main_tasks: int = 24,
    library_tasks: int = 48,
) -> LibraryResult:
    """The paper's 'use the other application like a library' scenario.

    Compared policies: a static half/half split, agent-driven dynamic
    shifting (LibraryShiftStrategy), and a static generous-library split.
    Dynamic shifting should beat both statics because main and library
    phases alternate and never overlap."""

    def _run(mode: str) -> float:
        machine = model_machine()
        ex = ExecutionSimulator(machine)
        main = OCRVxRuntime("main", ex)
        lib = OCRVxRuntime("library", ex)
        main.start()
        lib.start()
        scenario = ComposedAppScenario(
            ex,
            main,
            lib,
            phases=phases,
            main_tasks=main_tasks,
            library_tasks=library_tasks,
        )
        if mode == "static-split":
            main.set_allocation([4, 4, 4, 4])
            lib.set_allocation([4, 4, 4, 4])
        elif mode == "static-generous":
            main.set_allocation([2, 2, 2, 2])
            lib.set_allocation([6, 6, 6, 6])
        else:
            agent = Agent(
                ex,
                LibraryShiftStrategy("main", "library", library_share=0.75),
                period=0.002,
            )
            agent.register(OcrVxEndpoint(main))
            agent.register(OcrVxEndpoint(lib))
            agent.start()
        scenario.build()
        return ex.run_until_condition(
            lambda: scenario.finished, max_time=600.0
        )

    return LibraryResult(
        static_split_time=_run("static-split"),
        dynamic_shift_time=_run("dynamic"),
        static_generous_time=_run("static-generous"),
    )


# ----------------------------------------------------------------------
# Section V: distributed
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DistributedResult:
    """Makespans per (partition, synchronisation) combination."""

    runs: dict[tuple[str, str], float]

    def makespan(self, partition: str, workload: str) -> float:
        """Makespan of one combination."""
        return self.runs[(partition, workload)]


def run_distributed(
    *, num_ranks: int = 8, iterations: int = 30
) -> DistributedResult:
    """Section V: static vs dynamic partitioning under barrier vs
    task-bag synchronisation."""
    machine = model_machine()
    main = AppSpec("main", 2.0)
    colocated = AppSpec("colocated", 2.0)
    perf = NodePerformance(machine, main, colocated)
    partitions = {
        "static-exclusive": StaticExclusivePartition(
            perf, main_fraction=0.5
        ),
        "static-split": StaticSplitPartition(
            perf, main_share=0.5, colocated_duty_cycle=0.5
        ),
        "dynamic": DynamicSharingPartition(
            perf,
            main_share_busy=0.5,
            main_share_quiet=1.0,
            colocated_duty_cycle=0.5,
            reallocation_penalty=0.02,
        ),
    }
    exp = ClusterExperiment(
        num_ranks=num_ranks,
        iterations=iterations,
        work_per_iteration=20.0,
    )
    runs = {}
    for run in exp.compare(partitions):
        runs[(run.partition_name, run.workload_name)] = run.makespan
    return DistributedResult(runs=runs)


# ----------------------------------------------------------------------
# Section III-B: calibration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CalibrationResult:
    """Recovered vs true machine parameters."""

    true_peak: float
    true_bandwidth: float
    est_peak: float
    est_bandwidth: float

    @property
    def peak_error(self) -> float:
        """Relative error of the peak estimate."""
        return abs(self.est_peak - self.true_peak) / self.true_peak

    @property
    def bandwidth_error(self) -> float:
        """Relative error of the bandwidth estimate."""
        return abs(self.est_bandwidth - self.true_bandwidth) / (
            self.true_bandwidth
        )


def run_calibration(*, duration: float = 0.5) -> CalibrationResult:
    """Run the paper's calibration procedure against the simulator.

    Executes the even scenario on the 'real' (simulated) Skylake machine,
    measures per-app throughput, applies the closed-form estimator, and
    reports how well the true parameters are recovered."""
    machine = skylake_4s()
    apps = _skylake_apps_basic()
    names = [a.name for a in apps]
    alloc = ThreadAllocation.uniform(names, 4, 5)
    ex = ExecutionSimulator(machine)
    for app in apps:
        rt = OCRVxRuntime(app.name, ex)
        rt.start([int(x) for x in alloc.threads_of(app.name)])
        core_peak = machine.nodes[0].cores[0].peak_gflops
        sapp = SyntheticApp(
            rt, app, task_flops=core_peak * ex.slice_seconds * 10
        )
        sapp.submit_stream(10**9)
    ex.run(duration)
    per_node = machine.num_nodes
    comp = ex.achieved_gflops("comp", duration) / per_node
    mems = [
        ex.achieved_gflops(f"mem{i}", duration) / per_node for i in range(3)
    ]
    est = calibrate_from_even_run(
        compute_app_gflops_per_node=comp,
        compute_app_threads_per_node=5,
        per_app_gflops_per_node=mems + [comp],
        per_app_ai=[1 / 32] * 3 + [1.0],
    )
    return CalibrationResult(
        true_peak=machine.nodes[0].cores[0].peak_gflops,
        true_bandwidth=machine.nodes[0].local_bandwidth,
        est_peak=est.peak_gflops_per_thread,
        est_bandwidth=est.node_bandwidth,
    )


# ----------------------------------------------------------------------
# Section II: over-subscription that HELPS (I/O-blocked threads)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OversubBenefitResult:
    """Throughput vs thread count for an I/O-heavy workload."""

    gflops_by_threads: dict[int, float]

    @property
    def best_thread_count(self) -> int:
        """Thread count with the highest throughput."""
        return max(
            self.gflops_by_threads, key=self.gflops_by_threads.get
        )


def run_oversub_benefit(
    *,
    thread_counts: Sequence[int] = (8, 12, 16, 24),
    io_fraction: float = 0.5,
    duration: float = 0.3,
) -> OversubBenefitResult:
    """Section II: "some over-subscription might be beneficial. If some
    tasks are unable to fully utilize the available cores, for example by
    being blocked in I/O operations, it might be beneficial if there are
    other threads available that could be scheduled to such cores."

    An application whose threads alternate compute bursts with I/O waits
    runs on one 8-core node with varying thread counts; the sweep shows
    throughput climbing past 8 threads (the over-subscribed configurations
    fill the I/O gaps) before the context-switch penalty flattens it.
    """
    from repro.apps.nonworker import IoThread
    from repro.machine import uma_machine
    from repro.sim.cpu import Binding

    out: dict[int, float] = {}
    for n in thread_counts:
        machine = uma_machine(cores=8)
        ex = ExecutionSimulator(machine)
        burst = 0.002  # 2 ms of compute per burst
        wait = burst * io_fraction / (1 - io_fraction)
        period = burst + wait
        core_peak = machine.nodes[0].cores[0].peak_gflops
        for i in range(n):
            io = IoThread(
                ex,
                burst_flops=core_peak * burst,
                wait_seconds=wait,
                arithmetic_intensity=8.0,
                # stagger the threads so their I/O windows interleave
                initial_delay=(i * period / n),
            )
            ex.add_thread(
                f"io{i}", Binding.to_node(0), io, app_name="io-app"
            )
        ex.run(duration)
        out[n] = ex.achieved_gflops("io-app", duration)
    return OversubBenefitResult(gflops_by_threads=out)


# ----------------------------------------------------------------------
# DVFS ablation: relaxing model assumption 2
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DvfsResult:
    """Packed vs spread placement, with and without DVFS."""

    packed_no_dvfs: float
    spread_no_dvfs: float
    packed_dvfs: float
    spread_dvfs: float


def run_dvfs_ablation(
    *, max_boost: float = 0.3, duration: float = 0.3
) -> DvfsResult:
    """Quantify what the paper's no-DVFS assumption (assumption 2) hides.

    A compute-bound application with 8 threads on the model machine,
    placed either packed (all on one node) or spread (2 per node).
    Without DVFS the two placements are identical for a compute-bound
    code; with turbo boost the spread placement runs each core faster
    (fewer active cores per node), so placement starts to matter even
    for compute-bound applications — a consideration the paper's model
    cannot see."""
    from repro.machine import model_machine
    from repro.runtime import OCRVxRuntime
    from repro.sim.dvfs import DvfsModel

    def measure(spread: bool, dvfs: bool) -> float:
        machine = model_machine()
        ex = ExecutionSimulator(
            machine,
            dvfs=DvfsModel(max_boost=max_boost) if dvfs else None,
        )
        rt = OCRVxRuntime("comp", ex)
        rt.start([2, 2, 2, 2] if spread else [8, 0, 0, 0])
        app = SyntheticApp(
            rt, AppSpec.compute_bound("comp", 10.0), task_flops=0.05
        )
        app.submit_stream(10**9)
        ex.run(duration)
        return ex.total_gflops(duration)

    return DvfsResult(
        packed_no_dvfs=measure(spread=False, dvfs=False),
        spread_no_dvfs=measure(spread=True, dvfs=False),
        packed_dvfs=measure(spread=False, dvfs=True),
        spread_dvfs=measure(spread=True, dvfs=True),
    )


# ----------------------------------------------------------------------
# Model validation sweep: analytic model vs executor on random workloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ValidationResult:
    """Model-vs-simulator agreement over random workloads."""

    relative_errors: tuple[float, ...]

    @property
    def max_error(self) -> float:
        """Largest |relative error| observed."""
        return max(abs(e) for e in self.relative_errors)

    @property
    def mean_error(self) -> float:
        """Mean |relative error|."""
        return float(
            np.mean([abs(e) for e in self.relative_errors])
        )


def run_model_validation(
    *, scenarios: int = 10, seed: int = 0, duration: float = 0.25
) -> ValidationResult:
    """Cross-validate the analytic model against the execution simulator
    on randomly generated workloads (random AIs, placements and
    allocations on the model machine).  This is the reproduction's
    counterpart of the paper's Table III exercise, run at scale."""
    from repro.machine import model_machine
    from repro.runtime import OCRVxRuntime

    rng = np.random.default_rng(seed)
    machine = model_machine()
    model = NumaPerformanceModel()
    errors = []
    for s in range(scenarios):
        n_apps = int(rng.integers(1, 4))
        specs = []
        counts = np.zeros((n_apps, machine.num_nodes), dtype=np.int64)
        free = np.array([n.num_cores for n in machine.nodes])
        for a in range(n_apps):
            ai = float(rng.choice([0.25, 0.5, 1.0, 4.0, 10.0]))
            if rng.random() < 0.3:
                specs.append(
                    AppSpec.numa_bad(
                        f"s{s}a{a}",
                        ai,
                        home_node=int(rng.integers(machine.num_nodes)),
                    )
                )
            else:
                specs.append(AppSpec(f"s{s}a{a}", ai))
            for n in range(machine.num_nodes):
                take = int(rng.integers(0, free[n] + 1))
                counts[a, n] = take
                free[n] -= take
        if counts.sum() == 0:
            counts[0, 0] = 1
        alloc = ThreadAllocation(
            app_names=tuple(sp.name for sp in specs), counts=counts
        )
        analytic = model.predict(machine, specs, alloc).total_gflops
        if analytic <= 0:
            continue
        ex = ExecutionSimulator(machine)
        for spec in specs:
            rt = OCRVxRuntime(spec.name, ex)
            rt.start([int(x) for x in alloc.threads_of(spec.name)])
            if alloc.threads_of(spec.name).sum() == 0:
                continue
            SyntheticApp(rt, spec, task_flops=0.05).submit_stream(10**9)
        ex.run(duration)
        measured = ex.total_gflops(duration)
        errors.append((measured - analytic) / analytic)
    return ValidationResult(relative_errors=tuple(errors))


# ----------------------------------------------------------------------
# Adaptive agent: learn the allocation from observations alone
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveResult:
    """Static fair share vs feedback hill-climbing vs model-guided."""

    static_gflops: float
    adaptive_gflops: float
    model_guided_gflops: float
    adaptive_final_split: dict[str, list[int]]
    moves_kept: int
    moves_reverted: int

    @property
    def adaptive_vs_static(self) -> float:
        """Adaptive throughput relative to the static fair share."""
        return self.adaptive_gflops / self.static_gflops

    @property
    def adaptive_vs_oracle(self) -> float:
        """Fraction of the model-guided (spec-aware) throughput that the
        spec-free adaptive agent achieves."""
        return self.adaptive_gflops / self.model_guided_gflops


def run_adaptive_agent(*, duration: float = 0.6) -> AdaptiveResult:
    """Compare three agent policies on the memory+compute mix.

    The paper's agent only observes runtime behaviour; this experiment
    shows an observation-only hill climber recovering most of the gain a
    model-guided (spec-aware) agent achieves over static fair share."""
    from repro.agent import Agent, FeedbackHillClimb, ModelGuidedStrategy, OcrVxEndpoint

    specs = [
        AppSpec.memory_bound("mem", 0.5),
        AppSpec.compute_bound("comp", 10.0),
    ]

    def run(mode: str):
        machine = model_machine()
        ex = ExecutionSimulator(machine)
        runtimes = []
        for spec in specs:
            rt = OCRVxRuntime(spec.name, ex)
            rt.start()
            if mode == "static":
                rt.set_allocation([4, 4, 4, 4])
            SyntheticApp(rt, spec, task_flops=0.02).submit_stream(10**9)
            runtimes.append(rt)
        strategy = None
        if mode == "adaptive":
            strategy = FeedbackHillClimb([s.name for s in specs])
        elif mode == "model":
            strategy = ModelGuidedStrategy(specs)
        if strategy is not None:
            agent = Agent(ex, strategy, period=0.01)
            for rt in runtimes:
                agent.register(OcrVxEndpoint(rt))
            agent.start()
        ex.run(duration)
        return ex.total_gflops(duration), strategy

    static, _ = run("static")
    adaptive, strat = run("adaptive")
    guided, _ = run("model")
    return AdaptiveResult(
        static_gflops=static,
        adaptive_gflops=adaptive,
        model_guided_gflops=guided,
        adaptive_final_split={
            k: list(v) for k, v in strat._split.items()
        },
        moves_kept=strat.moves_kept,
        moves_reverted=strat.moves_reverted,
    )


# ----------------------------------------------------------------------
# Thread-control options: the paper's central Section III argument
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ThreadControlResult:
    """Completion time of a NUMA-aware app under each control option."""

    full_machine: float
    option1_total: float
    option3_even: float
    option3_packed: float
    option2_two_nodes: float

    @property
    def option1_penalty(self) -> float:
        """Option 1 time relative to option 3 (the paper predicts > 1)."""
        return self.option1_total / self.option3_even


def run_thread_control_options(
    *,
    blocks: int = 64,
    iterations: int = 10,
    arithmetic_intensity: float = 1 / 16,
    seed: int = 3,
) -> ThreadControlResult:
    """Section III: "Allocating cores to such [NUMA-aware] applications
    by specifying the total number of worker threads could be very
    inefficient, unless the runtime systems ... can make good decisions
    about which threads to block ... it would be better to use the
    option 3."

    A NUMA-aware stencil on the Skylake machine is reduced from 80 to 40
    threads in four ways:

    * option 1 (total count): the runtime blocks whichever workers go
      idle first — the survivors are unevenly spread over the nodes, so
      part of the data loses its local workers;
    * option 3 (even per node): 10 threads per node — locality preserved;
    * option 3 (packed): 20 threads on each of two nodes — half the
      blocks are remote (a deliberately bad but *controlled* choice);
    * option 2 (explicit): block every worker of nodes 2 and 3 — the
      worst case of node-agnostic blocking, for reference.

    Two findings beyond the paper's prediction: (a) under this runtime's
    option 1, the workers that happen to poll first block first, which
    strands *entire nodes* — the exact coordination failure the paper
    warns about; and (b) even the un-reduced full machine loses to the
    even option-3 allocation, because surplus workers steal remote
    blocks across the slow links and stretch every sweep's critical
    path.
    """
    from repro.apps.stencil import StencilApp
    from repro.machine import skylake_4s

    def run(mode: str) -> float:
        machine = skylake_4s()
        ex = ExecutionSimulator(machine)
        rt = OCRVxRuntime("stencil", ex, seed=seed)
        rt.start()
        if mode == "option1":
            rt.set_total_threads(40)
        elif mode == "option3-even":
            rt.set_allocation([10, 10, 10, 10])
        elif mode == "option3-packed":
            rt.set_allocation([20, 20, 0, 0])
        elif mode == "option2-two-nodes":
            rt.block_workers(
                [w.name for w in rt.workers if w.node in (2, 3)]
            )
        app = StencilApp(
            rt,
            blocks=blocks,
            iterations=iterations,
            numa_aware=True,
            flops_per_block=0.02,
            arithmetic_intensity=arithmetic_intensity,
        )
        app.build()
        return ex.run_until_condition(lambda: app.finished, max_time=600)

    return ThreadControlResult(
        full_machine=run("full"),
        option1_total=run("option1"),
        option3_even=run("option3-even"),
        option3_packed=run("option3-packed"),
        option2_two_nodes=run("option2-two-nodes"),
    )


# ----------------------------------------------------------------------
# Cache handoff: the tightest integration level of Section II
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheHandoffResult:
    """Producer->consumer handoff under three placement regimes."""

    handoff_time: float
    colocated_no_cache_time: float
    separate_nodes_time: float
    cache_hit_rate: float

    @property
    def cache_speedup(self) -> float:
        """Gain attributable to cache reuse alone (same placement)."""
        return self.colocated_no_cache_time / self.handoff_time

    @property
    def total_speedup(self) -> float:
        """Gain of full handoff over the separate-nodes layout."""
        return self.separate_nodes_time / self.handoff_time


def run_cache_handoff(
    *,
    items: int = 60,
    item_flops: float = 0.02,
    arithmetic_intensity: float = 0.4,
    item_bytes: float = 4 * 2**20,
) -> CacheHandoffResult:
    """Section II's tightest integration: "make sure that the core that
    wrote the data ... also starts processing the data inside the other
    application, enabling cache reuse."

    A producer application writes one datablock per item on node 0; a
    consumer application processes each item as it appears.  Three
    configurations:

    * **handoff** — consumer workers co-located on node 0 and the LLC
      model enabled: consumer tasks find their input warm;
    * **co-located, no cache** — same placement, cache model off:
      isolates the NUMA-locality part of the gain;
    * **separate nodes** — consumer on node 1, reading node 0's memory
      over the link: the loose-integration baseline.
    """
    from repro.sim.cache import CacheModel

    def run(consumer_node: int, with_cache: bool):
        machine = model_machine()
        cache = CacheModel() if with_cache else None
        ex = ExecutionSimulator(machine, cache=cache)
        prod = OCRVxRuntime("producer", ex)
        cons = OCRVxRuntime("consumer", ex)
        prod.start([4, 0, 0, 0])
        cons.start(
            [4, 0, 0, 0] if consumer_node == 0 else [0, 4, 0, 0]
        )
        done = [0]
        for i in range(items):
            db = prod.create_datablock(
                item_bytes, 0, name=f"item{i}"
            )
            ptask = prod.create_task(
                f"write{i}",
                flops=item_flops,
                arithmetic_intensity=arithmetic_intensity,
                datablocks=[db],
                affinity_node=0,
            )
            cons.create_task(
                f"read{i}",
                flops=item_flops,
                arithmetic_intensity=arithmetic_intensity,
                depends_on=[ptask],
                datablocks=[db],
                affinity_node=consumer_node,
                on_finish=lambda _t: done.__setitem__(0, done[0] + 1),
            )
        end = ex.run_until_condition(
            lambda: done[0] == items, max_time=600
        )
        hit_rate = cache.hit_rate if cache else 0.0
        return end, hit_rate

    handoff, hit_rate = run(consumer_node=0, with_cache=True)
    colocated, _ = run(consumer_node=0, with_cache=False)
    separate, _ = run(consumer_node=1, with_cache=False)
    return CacheHandoffResult(
        handoff_time=handoff,
        colocated_no_cache_time=colocated,
        separate_nodes_time=separate,
        cache_hit_rate=hit_rate,
    )


# ----------------------------------------------------------------------
# Mixed runtimes: the paper's stated future work, implemented
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MixedRuntimesResult:
    """OCR-Vx + TBB coordinated by one agent."""

    uncoordinated_gflops: float
    fair_share_gflops: float
    adaptive_gflops: float

    @property
    def adaptive_gain(self) -> float:
        """Adaptive coordination relative to no coordination."""
        return self.adaptive_gflops / self.uncoordinated_gflops


def run_mixed_runtimes(*, duration: float = 0.5) -> MixedRuntimesResult:
    """The conclusion's next step, implemented: "incorporate TBB,
    allowing TBB and OCR-Vx applications to cooperatively manage CPU
    cores."

    An OCR-Vx application (memory-bound) and a TBB application
    (compute-bound, arena-per-node as Section II prescribes) share the
    model machine under three regimes: uncoordinated (both sized to the
    full machine), agent fair share, and the observation-only adaptive
    agent — which, exactly as in the single-runtime case, discovers that
    the compute-bound TBB code should receive most of the cores."""
    from repro.agent import (
        Agent,
        FairShareStrategy,
        FeedbackHillClimb,
        OcrVxEndpoint,
        TbbEndpoint,
    )
    from repro.runtime.task import Task
    from repro.runtime.tbb import TbbRuntime

    def run(mode: str) -> float:
        machine = model_machine()
        ex = ExecutionSimulator(machine)
        ocr = OCRVxRuntime("ocr-app", ex)
        ocr.start()
        SyntheticApp(
            ocr, AppSpec.memory_bound("ocr-app", 0.5), task_flops=0.02
        ).submit_stream(10**9)
        tbb = TbbRuntime("tbb-app", ex, num_threads=32)
        ep = TbbEndpoint(tbb)

        class _TbbFeeder:
            """Keeps every arena's queue topped up."""

            def __init__(self) -> None:
                self.count = 0
                self._refill()
                ex.sim.schedule(0.002, self._tick)

            def _refill(self) -> None:
                for node in range(machine.num_nodes):
                    arena = ep.arena_for(node)
                    while arena.pending < 16:
                        self.count += 1
                        arena.enqueue(
                            Task(
                                f"tbb{self.count}",
                                flops=0.02,
                                arithmetic_intensity=10.0,
                            )
                        )

            def _tick(self) -> None:
                self._refill()
                ex.sim.schedule(0.002, self._tick)

        _TbbFeeder()
        if mode != "uncoordinated":
            strategy = (
                FairShareStrategy()
                if mode == "fair"
                else FeedbackHillClimb(["ocr-app", "tbb-app"])
            )
            agent = Agent(ex, strategy, period=0.01)
            agent.register(OcrVxEndpoint(ocr))
            agent.register(ep)
            agent.start()
        ex.run(duration)
        return ex.total_gflops(duration)

    return MixedRuntimesResult(
        uncoordinated_gflops=run("uncoordinated"),
        fair_share_gflops=run("fair"),
        adaptive_gflops=run("adaptive"),
    )
