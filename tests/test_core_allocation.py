"""Unit tests for ThreadAllocation."""

import numpy as np
import pytest

from repro.core.allocation import ThreadAllocation
from repro.errors import AllocationError, OversubscriptionError


class TestConstruction:
    def test_from_mapping(self):
        a = ThreadAllocation.from_mapping({"x": [1, 2], "y": [3, 0]})
        assert a.num_apps == 2
        assert a.num_nodes == 2
        assert a.threads_of("x").tolist() == [1, 2]

    def test_from_mapping_rejects_ragged(self):
        with pytest.raises(AllocationError):
            ThreadAllocation.from_mapping({"x": [1, 2], "y": [3]})

    def test_from_mapping_rejects_empty(self):
        with pytest.raises(AllocationError):
            ThreadAllocation.from_mapping({})

    def test_uniform_scalar(self):
        a = ThreadAllocation.uniform(["a", "b"], 4, 2)
        assert a.counts.shape == (2, 4)
        assert a.total_threads == 16

    def test_uniform_per_app(self):
        a = ThreadAllocation.uniform(["a", "b"], 4, [1, 5])
        assert a.threads_of("a").tolist() == [1, 1, 1, 1]
        assert a.threads_of("b").tolist() == [5, 5, 5, 5]

    def test_uniform_wrong_count(self):
        with pytest.raises(AllocationError):
            ThreadAllocation.uniform(["a", "b"], 4, [1, 2, 3])

    def test_duplicate_names_rejected(self):
        with pytest.raises(AllocationError):
            ThreadAllocation(
                app_names=("a", "a"), counts=np.ones((2, 2), dtype=int)
            )

    def test_negative_counts_rejected(self):
        with pytest.raises(AllocationError):
            ThreadAllocation(
                app_names=("a",), counts=np.array([[-1, 0]])
            )

    def test_non_integer_counts_rejected(self):
        with pytest.raises(AllocationError):
            ThreadAllocation(
                app_names=("a",), counts=np.array([[1.5, 0.0]])
            )

    def test_float_integral_counts_accepted(self):
        a = ThreadAllocation(
            app_names=("a",), counts=np.array([[2.0, 3.0]])
        )
        assert a.counts.dtype == np.int64

    def test_node_exclusive(self, paper_machine):
        a = ThreadAllocation.node_exclusive(
            ["a", "b", "c", "d"], paper_machine
        )
        assert a.threads_per_node.tolist() == [8, 8, 8, 8]
        assert a.threads_of("a").tolist() == [8, 0, 0, 0]

    def test_node_exclusive_with_assignment(self, paper_machine):
        a = ThreadAllocation.node_exclusive(
            ["a", "b", "c", "d"],
            paper_machine,
            assignment={"a": 3, "b": 2, "c": 1, "d": 0},
        )
        assert a.threads_of("a").tolist() == [0, 0, 0, 8]

    def test_node_exclusive_wrong_app_count(self, paper_machine):
        with pytest.raises(AllocationError):
            ThreadAllocation.node_exclusive(["a", "b"], paper_machine)

    def test_node_exclusive_bad_assignment(self, paper_machine):
        with pytest.raises(AllocationError):
            ThreadAllocation.node_exclusive(
                ["a", "b", "c", "d"],
                paper_machine,
                assignment={"a": 0, "b": 0, "c": 1, "d": 2},
            )


class TestValidation:
    def test_validate_accepts_fitting(self, paper_machine):
        ThreadAllocation.uniform(["a", "b"], 4, [4, 4]).validate(
            paper_machine
        )

    def test_oversubscription_rejected(self, paper_machine):
        a = ThreadAllocation.uniform(["a", "b"], 4, [5, 4])
        with pytest.raises(OversubscriptionError):
            a.validate(paper_machine)
        assert not a.fits(paper_machine)

    def test_wrong_node_count_rejected(self, paper_machine):
        a = ThreadAllocation.uniform(["a"], 3, 1)
        with pytest.raises(AllocationError):
            a.validate(paper_machine)

    def test_utilization(self, paper_machine):
        a = ThreadAllocation.uniform(["a"], 4, 4)
        assert a.utilization(paper_machine) == pytest.approx(0.5)


class TestAlgebra:
    def test_move_thread(self):
        a = ThreadAllocation.uniform(["x", "y"], 2, [2, 2])
        b = a.move_thread("x", "y", 0)
        assert b.threads_of("x").tolist() == [1, 2]
        assert b.threads_of("y").tolist() == [3, 2]
        # original untouched
        assert a.threads_of("x").tolist() == [2, 2]

    def test_move_from_empty_rejected(self):
        a = ThreadAllocation.from_mapping({"x": [0], "y": [1]})
        with pytest.raises(AllocationError):
            a.move_thread("x", "y", 0)

    def test_move_bad_node_rejected(self):
        a = ThreadAllocation.uniform(["x", "y"], 2, 1)
        with pytest.raises(AllocationError):
            a.move_thread("x", "y", 5)

    def test_with_counts(self):
        a = ThreadAllocation.uniform(["x"], 3, 1)
        b = a.with_counts("x", [0, 2, 1])
        assert b.threads_of("x").tolist() == [0, 2, 1]

    def test_unknown_app_rejected(self):
        a = ThreadAllocation.uniform(["x"], 2, 1)
        with pytest.raises(AllocationError):
            a.threads_of("nope")

    def test_round_trip_mapping(self):
        m = {"x": [1, 2], "y": [0, 3]}
        assert ThreadAllocation.from_mapping(m).as_mapping() == m

    def test_counts_immutable(self):
        a = ThreadAllocation.uniform(["x"], 2, 1)
        with pytest.raises(ValueError):
            a.counts[0, 0] = 5

    def test_counts_are_copied_from_caller_array(self):
        """Regression: the constructor must snapshot the caller's array —
        search loops reuse their scratch buffers after building results."""
        scratch = np.array([[2, 0], [0, 2]])
        a = ThreadAllocation(app_names=("x", "y"), counts=scratch)
        scratch[0, 0] = 99
        assert a.threads_of("x").tolist() == [2, 0]

    def test_float_counts_are_copied_too(self):
        scratch = np.array([[1.0, 1.0]])
        a = ThreadAllocation(app_names=("x",), counts=scratch)
        scratch[0, 0] = 7.0
        assert a.threads_of("x").tolist() == [1, 1]
