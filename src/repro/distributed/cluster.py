"""Cluster experiment driver: partition strategies x synchronisation kinds.

Glues the Section V pieces together: build per-rank rate profiles from a
:class:`~repro.distributed.partition.Partition` and run both workload
models, producing the comparison the paper's discussion predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.partition import Partition
from repro.distributed.rates import PeriodicRate
from repro.distributed.workload import (
    BarrierIterativeWorkload,
    TaskBagWorkload,
    WorkloadResult,
)
from repro.errors import DistributedError

__all__ = ["ClusterRun", "ClusterExperiment"]


@dataclass(frozen=True)
class ClusterRun:
    """Result of one (partition, workload) combination."""

    partition_name: str
    workload_name: str
    result: WorkloadResult

    @property
    def makespan(self) -> float:
        """Completion time of the run."""
        return self.result.makespan


class ClusterExperiment:
    """Run a set of partitions against both synchronisation models.

    Parameters
    ----------
    num_ranks:
        Number of compute nodes the main component spans.
    iterations / work_per_iteration:
        The barrier workload: each rank computes ``work_per_iteration``
        GFLOP per iteration.
    num_tasks / work_per_task:
        The task-bag workload (sized to the same total work by default).
    """

    def __init__(
        self,
        *,
        num_ranks: int,
        iterations: int = 50,
        work_per_iteration: float = 10.0,
        num_tasks: int | None = None,
        work_per_task: float | None = None,
    ) -> None:
        if num_ranks <= 0:
            raise DistributedError("num_ranks must be positive")
        self.num_ranks = num_ranks
        self.iterations = iterations
        self.work_per_iteration = work_per_iteration
        total = iterations * work_per_iteration * num_ranks
        self.work_per_task = work_per_task or work_per_iteration
        self.num_tasks = num_tasks or int(round(total / self.work_per_task))

    def profiles(self, partition: Partition) -> list[PeriodicRate]:
        """Profiles for the ranks that host the main component."""
        return [
            partition.rank_profile(r, self.num_ranks)
            for r in partition.participating_ranks(self.num_ranks)
        ]

    def run_barrier(
        self, name: str, partition: Partition
    ) -> ClusterRun:
        """Run the barrier-synchronised workload under ``partition``.

        The global problem size is fixed at ``num_ranks *
        work_per_iteration`` per iteration; a partition hosting the main
        component on fewer ranks gives each of them a larger share.
        """
        profiles = self.profiles(partition)
        per_rank = (
            self.work_per_iteration * self.num_ranks / len(profiles)
        )
        wl = BarrierIterativeWorkload(
            iterations=self.iterations,
            work_per_rank=per_rank,
        )
        return ClusterRun(
            partition_name=name,
            workload_name="barrier",
            result=wl.run(profiles),
        )

    def run_taskbag(
        self, name: str, partition: Partition
    ) -> ClusterRun:
        """Run the loosely synchronised workload under ``partition``."""
        wl = TaskBagWorkload(
            num_tasks=self.num_tasks, work_per_task=self.work_per_task
        )
        return ClusterRun(
            partition_name=name,
            workload_name="taskbag",
            result=wl.run(self.profiles(partition)),
        )

    def compare(
        self, partitions: dict[str, Partition]
    ) -> list[ClusterRun]:
        """Run every partition under both workloads."""
        out: list[ClusterRun] = []
        for name, p in partitions.items():
            out.append(self.run_barrier(name, p))
            out.append(self.run_taskbag(name, p))
        return out
