"""Optional DVFS (turbo-frequency) model for the execution simulator.

The paper's model assumption 2 states "for the purposes of computation,
the CPU cores are completely independent (e.g., there is no DVFS)".  Real
multi-socket Xeons violate this: with few active cores per socket, the
active ones boost their frequency.  :class:`DvfsModel` lets experiments
*relax* that assumption and quantify its cost — an ablation the paper
implies but does not run.

The frequency factor for a node with ``active`` busy cores out of
``total``:

    f = 1 + max_boost * (1 - (active - 1) / (total - 1))    (total > 1)

i.e. a single active core gains the full ``max_boost``, a fully busy node
runs at base frequency, and the scaling in between is linear (a
reasonable fit to published Xeon turbo tables).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["DvfsModel"]


@dataclass(frozen=True)
class DvfsModel:
    """Linear per-node turbo model.

    Attributes
    ----------
    max_boost:
        Fractional frequency gain of a single active core (e.g. 0.3 for
        a 3.7 GHz turbo on a 2.85 GHz base — roughly the Xeon Gold 6138).
    """

    max_boost: float = 0.3

    def __post_init__(self) -> None:
        if self.max_boost < 0:
            raise ConfigurationError("max_boost must be non-negative")

    def frequency_factor(self, active: int, total: int) -> float:
        """Frequency multiplier for a node with ``active``/``total`` busy
        cores."""
        if total <= 0:
            raise ConfigurationError("total cores must be positive")
        if active < 0 or active > total:
            raise ConfigurationError(
                f"active={active} outside [0, {total}]"
            )
        if active == 0:
            return 1.0 + self.max_boost  # next core to wake gets full boost
        if total == 1:
            return 1.0 + self.max_boost
        idle_fraction = 1.0 - (active - 1) / (total - 1)
        return 1.0 + self.max_boost * idle_fraction
