"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.allocation import ThreadAllocation
from repro.core.bwshare import RemainderRule, share_node_bandwidth
from repro.core.model import NumaPerformanceModel
from repro.core.roofline import Roofline
from repro.core.spec import AppSpec, Placement
from repro.distributed.rates import PeriodicRate, RatePhase
from repro.machine import MachineTopology
from repro.sim.engine import Simulator

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
demands_st = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    min_size=0,
    max_size=16,
)
capacity_st = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
rule_st = st.sampled_from(list(RemainderRule))


@st.composite
def machines(draw):
    nodes = draw(st.integers(min_value=1, max_value=4))
    cores = draw(st.integers(min_value=1, max_value=8))
    peak = draw(st.floats(min_value=0.1, max_value=100.0))
    local = draw(st.floats(min_value=1.0, max_value=500.0))
    remote = draw(st.floats(min_value=0.5, max_value=500.0))
    return MachineTopology.homogeneous(
        num_nodes=nodes,
        cores_per_node=cores,
        peak_gflops_per_core=peak,
        local_bandwidth=local,
        remote_bandwidth=min(remote, local),
    )


@st.composite
def workloads(draw, machine):
    n_apps = draw(st.integers(min_value=1, max_value=4))
    apps = []
    counts = np.zeros((n_apps, machine.num_nodes), dtype=np.int64)
    free = np.array([n.num_cores for n in machine.nodes])
    for a in range(n_apps):
        ai = draw(st.floats(min_value=0.01, max_value=100.0))
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 1:
            home = draw(
                st.integers(min_value=0, max_value=machine.num_nodes - 1)
            )
            apps.append(AppSpec.numa_bad(f"a{a}", ai, home_node=home))
        elif kind == 2:
            apps.append(
                AppSpec(f"a{a}", ai, placement=Placement.INTERLEAVED)
            )
        else:
            apps.append(AppSpec(f"a{a}", ai))
        for n in range(machine.num_nodes):
            take = draw(st.integers(min_value=0, max_value=int(free[n])))
            counts[a, n] = take
            free[n] -= take
    alloc = ThreadAllocation(
        app_names=tuple(f"a{a}" for a in range(n_apps)), counts=counts
    )
    return apps, alloc


# ----------------------------------------------------------------------
# Bandwidth sharing invariants (assumptions 4/5)
# ----------------------------------------------------------------------
class TestBwShareProperties:
    @given(capacity_st, st.integers(1, 16), demands_st, rule_st)
    @settings(max_examples=200)
    def test_grants_bounded_by_demand_and_capacity(
        self, capacity, cores, demands, rule
    ):
        assume(len(demands) <= cores)
        share = share_node_bandwidth(
            capacity, cores, demands, rule=rule
        )
        assert np.all(share.allocated >= -1e-9)
        assert np.all(share.allocated <= np.asarray(demands) + 1e-9)
        assert share.consumed <= capacity + 1e-6

    @given(capacity_st, st.integers(1, 16), demands_st, rule_st)
    @settings(max_examples=200)
    def test_work_conserving(self, capacity, cores, demands, rule):
        """Either every demand is met or the capacity is exhausted."""
        assume(len(demands) <= cores)
        share = share_node_bandwidth(
            capacity, cores, demands, rule=rule
        )
        total_demand = float(np.sum(demands))
        if total_demand >= capacity:
            assert share.consumed == pytest.approx(
                capacity, abs=max(1e-6, capacity * 1e-9)
            )
        else:
            assert share.consumed == pytest.approx(
                total_demand, abs=1e-6
            )

    @given(st.integers(1, 16), demands_st, rule_st)
    @settings(max_examples=100)
    def test_more_capacity_never_hurts_anyone(
        self, cores, demands, rule
    ):
        assume(len(demands) <= cores)
        lo = share_node_bandwidth(50.0, cores, demands, rule=rule)
        hi = share_node_bandwidth(80.0, cores, demands, rule=rule)
        assert np.all(hi.allocated >= lo.allocated - 1e-6)

    @given(capacity_st, st.integers(1, 16), demands_st)
    @settings(max_examples=100)
    def test_baseline_guarantee(self, capacity, cores, demands):
        """Every thread gets at least min(demand, baseline)."""
        assume(len(demands) <= cores)
        share = share_node_bandwidth(capacity, cores, demands)
        floor = np.minimum(np.asarray(demands), share.baseline)
        assert np.all(share.allocated >= floor - 1e-9)


# ----------------------------------------------------------------------
# Full model invariants
# ----------------------------------------------------------------------
class TestModelProperties:
    @given(machines().flatmap(lambda m: st.tuples(st.just(m), workloads(m))))
    @settings(max_examples=100, deadline=None)
    def test_physicality(self, mw):
        machine, (apps, alloc) = mw
        pred = NumaPerformanceModel().predict(machine, apps, alloc)
        # GFLOPS bounded by compute peak of the allocated threads.
        for app, spec in zip(pred.apps, apps):
            core_peak = machine.nodes[0].cores[0].peak_gflops
            assert app.gflops <= (
                spec.peak_gflops(core_peak) * app.threads + 1e-6
            )
        # Memory draw bounded per node.
        for node in pred.nodes:
            assert node.consumed <= node.capacity + 1e-6
        # Totals consistent.
        assert pred.total_gflops == pytest.approx(
            sum(a.gflops for a in pred.apps)
        )

    @given(machines().flatmap(lambda m: st.tuples(st.just(m), workloads(m))))
    @settings(max_examples=60, deadline=None)
    def test_bandwidth_gflops_consistency(self, mw):
        """Every NUMA-perfect/SINGLE_NODE app's GFLOPS equals its granted
        bandwidth times AI, capped at compute peak."""
        machine, (apps, alloc) = mw
        pred = NumaPerformanceModel().predict(machine, apps, alloc)
        for app, spec in zip(pred.apps, apps):
            expect = min(
                app.bandwidth * spec.arithmetic_intensity,
                spec.peak_gflops(machine.nodes[0].cores[0].peak_gflops)
                * app.threads,
            )
            assert app.gflops == pytest.approx(expect, rel=1e-6, abs=1e-9)

    @given(machines())
    @settings(max_examples=50, deadline=None)
    def test_scaling_bandwidth_never_hurts(self, machine):
        apps = [AppSpec("m", 0.5), AppSpec("c", 10.0)]
        half = [max(1, n.num_cores // 2) for n in machine.nodes]
        counts = np.zeros((2, machine.num_nodes), dtype=np.int64)
        counts[0] = half
        counts[1] = [n.num_cores - h for n, h in zip(machine.nodes, half)]
        alloc = ThreadAllocation(app_names=("m", "c"), counts=counts)
        base = NumaPerformanceModel().predict(machine, apps, alloc)
        faster = NumaPerformanceModel().predict(
            machine.scaled_bandwidth(2.0), apps, alloc
        )
        assert faster.total_gflops >= base.total_gflops - 1e-6


# ----------------------------------------------------------------------
# Roofline
# ----------------------------------------------------------------------
class TestRooflineProperties:
    @given(
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_attainable_bounded_and_monotone(self, ai, peak, bw):
        r = Roofline(peak_gflops=peak, peak_bandwidth=bw)
        a = r.attainable(ai)
        assert 0 < a <= peak + 1e-12
        assert r.attainable(ai * 2) >= a - 1e-12


# ----------------------------------------------------------------------
# Allocation algebra
# ----------------------------------------------------------------------
class TestAllocationProperties:
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(0, 6),
    )
    def test_move_preserves_totals(self, napps, nnodes, base):
        names = [f"a{i}" for i in range(napps)]
        alloc = ThreadAllocation.uniform(names, nnodes, base + 1)
        if napps < 2:
            return
        moved = alloc.move_thread(names[0], names[1], 0)
        assert moved.total_threads == alloc.total_threads
        assert (
            moved.threads_per_node.tolist()
            == alloc.threads_per_node.tolist()
        )


# ----------------------------------------------------------------------
# Event engine ordering
# ----------------------------------------------------------------------
class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


# ----------------------------------------------------------------------
# Periodic rates
# ----------------------------------------------------------------------
class TestRateProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=10.0),
                st.one_of(
                    st.just(0.0),
                    st.floats(min_value=0.01, max_value=100.0),
                ),
            ),
            min_size=1,
            max_size=5,
        ),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=0.01, max_value=200.0),
    )
    @settings(max_examples=100)
    def test_finish_time_consistent_with_average_rate(
        self, phases, start, work
    ):
        assume(any(g > 0 for _, g in phases))
        profile = PeriodicRate(
            [RatePhase(d, g) for d, g in phases]
        )
        finish = profile.finish_time(work, start)
        assert finish >= start
        # Bound: completing `work` can never be faster than at the peak
        # phase rate, nor slower than one extra period beyond the
        # average-rate estimate.
        peak = max(g for _, g in phases)
        assert finish - start >= work / peak - 1e-6
        avg_est = work / profile.average_rate()
        assert finish - start <= avg_est + 2 * profile.period + 1e-6
