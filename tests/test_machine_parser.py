"""Tests for the textual topology parser."""

import pytest

from repro.errors import TopologyError
from repro.machine import (
    format_topology,
    model_machine,
    parse_topology,
    skylake_4s,
)

EXAMPLE = """
# a two-socket box
machine twosock
node 0: cores=4 gflops=2.5 bandwidth=50
node 1: cores=4 gflops=2.5 bandwidth=50
link 0 1: 12
link 1 0: 12
"""


class TestParse:
    def test_basic(self):
        m = parse_topology(EXAMPLE)
        assert m.name == "twosock"
        assert m.num_nodes == 2
        assert m.total_cores == 8
        assert m.nodes[0].cores[0].peak_gflops == 2.5
        assert m.bandwidth(0, 1) == 12.0

    def test_comments_and_blank_lines_ignored(self):
        m = parse_topology(
            "node 0: cores=1 gflops=1 bandwidth=5\n\n# comment\n"
        )
        assert m.num_nodes == 1

    def test_missing_links_default_to_min_local(self):
        m = parse_topology(
            "node 0: cores=1 gflops=1 bandwidth=30\n"
            "node 1: cores=1 gflops=1 bandwidth=10\n"
        )
        assert m.bandwidth(0, 1) == 10.0

    def test_asymmetric_links(self):
        m = parse_topology(
            "node 0: cores=1 gflops=1 bandwidth=30\n"
            "node 1: cores=1 gflops=1 bandwidth=30\n"
            "link 0 1: 5\n"
            "link 1 0: 7\n"
        )
        assert m.bandwidth(0, 1) == 5.0
        assert m.bandwidth(1, 0) == 7.0

    def test_syntax_error(self):
        with pytest.raises(TopologyError):
            parse_topology("nodde 0: cores=1\n")

    def test_duplicate_node(self):
        with pytest.raises(TopologyError):
            parse_topology(
                "node 0: cores=1 gflops=1 bandwidth=5\n"
                "node 0: cores=1 gflops=1 bandwidth=5\n"
            )

    def test_non_dense_ids(self):
        with pytest.raises(TopologyError):
            parse_topology("node 1: cores=1 gflops=1 bandwidth=5\n")

    def test_link_to_unknown_node(self):
        with pytest.raises(TopologyError):
            parse_topology(
                "node 0: cores=1 gflops=1 bandwidth=5\nlink 0 3: 1\n"
            )

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            parse_topology(
                "node 0: cores=1 gflops=1 bandwidth=5\nlink 0 0: 1\n"
            )

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            parse_topology("# nothing\n")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory", [model_machine, skylake_4s], ids=["model", "skylake"]
    )
    def test_format_parse_round_trip(self, factory):
        m = factory()
        again = parse_topology(format_topology(m))
        assert again.name == m.name
        assert again.cores_per_node == m.cores_per_node
        assert (again.link_bandwidth == m.link_bandwidth).all()
        assert again.peak_gflops == pytest.approx(m.peak_gflops)
