"""Agent decision strategies.

A strategy turns the latest round of :class:`StatusReport`s into zero or
more :class:`ThreadCommand`s per runtime.  Five are provided, matching
the scenarios the paper discusses:

* :class:`FairShareStrategy` — the "simple core allocation strategy ...
  give each application a fair share of the cores" (issued once).
* :class:`ProducerConsumerAlignment` — the authors' SBAC-PAD'18 scenario
  [10]: keep the producer "only ahead by a small number of iterations" by
  shifting threads between the two applications.
* :class:`ModelGuidedStrategy` — use the Section III model plus an
  allocation search to issue option-3 per-node allocations (the paper's
  proposal, made concrete).
* :class:`LibraryShiftStrategy` — the tight-integration scenario: "quickly
  shifting resources to the 'library' application when it is called ...
  when the 'library' finishes, we can quickly free up the CPU cores".
* :class:`FeedbackHillClimb` — observation-only online search: no
  declared arithmetic intensities, just the load signals the paper's
  agent polls; converges to the model-guided allocation on the paper
  workloads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.agent.protocol import CommandKind, StatusReport, ThreadCommand
from repro.core.allocation import ThreadAllocation
from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import ExhaustiveSearch, HillClimbSearch
from repro.core.spec import AppSpec
from repro.errors import AgentError
from repro.machine.topology import MachineTopology

__all__ = [
    "AgentStrategy",
    "FairShareStrategy",
    "ProducerConsumerAlignment",
    "ModelGuidedStrategy",
    "LibraryShiftStrategy",
    "FeedbackHillClimb",
]


class AgentStrategy(ABC):
    """Interface: one decision round."""

    @abstractmethod
    def decide(
        self,
        machine: MachineTopology,
        reports: Mapping[str, StatusReport],
    ) -> dict[str, list[ThreadCommand]]:
        """Map runtime name -> commands to apply this round."""

    @staticmethod
    def _clamped_allocation(
        per_node: Sequence[int], report: StatusReport
    ) -> ThreadCommand:
        """Build a SET_ALLOCATION command clamped to the runtime's actual
        worker counts (a runtime can only activate workers it created)."""
        clamped = tuple(
            min(int(n), w)
            for n, w in zip(per_node, report.workers_per_node)
        )
        return ThreadCommand(
            kind=CommandKind.SET_ALLOCATION, per_node=clamped
        )


class FairShareStrategy(AgentStrategy):
    """Issue an even option-3 allocation once, then stay quiet."""

    def __init__(self) -> None:
        self._issued = False

    def decide(
        self,
        machine: MachineTopology,
        reports: Mapping[str, StatusReport],
    ) -> dict[str, list[ThreadCommand]]:
        """Give every responding runtime an equal per-node share."""
        if self._issued or not reports:
            return {}
        self._issued = True
        n_apps = len(reports)
        out: dict[str, list[ThreadCommand]] = {}
        for i, name in enumerate(sorted(reports)):
            per_node = []
            for node in machine.nodes:
                share, leftover = divmod(node.num_cores, n_apps)
                per_node.append(share + (1 if i < leftover else 0))
            out[name] = [
                self._clamped_allocation(per_node, reports[name])
            ]
        return out


class ProducerConsumerAlignment(AgentStrategy):
    """Keep the producer at most ``max_lead`` iterations ahead.

    Reads the runtimes' ``progress["iterations"]`` counters.  When the
    producer's lead exceeds ``max_lead``, one thread per NUMA node moves
    from producer to consumer; when the lead drops below ``min_lead``, one
    moves back.  Moves respect a floor of one thread per node per
    application.  This reproduces the paper's agent, which "dynamically
    adjust[s] the number of threads in both applications to keep them
    aligned".
    """

    def __init__(
        self,
        producer: str,
        consumer: str,
        *,
        max_lead: float = 4.0,
        min_lead: float = 1.0,
    ) -> None:
        if max_lead <= min_lead:
            raise AgentError(
                f"max_lead ({max_lead}) must exceed min_lead ({min_lead})"
            )
        self.producer = producer
        self.consumer = consumer
        self.max_lead = max_lead
        self.min_lead = min_lead
        self._split: dict[int, tuple[int, int]] | None = None

    def _initial_split(
        self, machine: MachineTopology
    ) -> dict[int, tuple[int, int]]:
        split = {}
        for node in machine.nodes:
            half = node.num_cores // 2
            split[node.node_id] = (half, node.num_cores - half)
        return split

    def decide(
        self,
        machine: MachineTopology,
        reports: Mapping[str, StatusReport],
    ) -> dict[str, list[ThreadCommand]]:
        """Steer threads to keep the producer's lead inside the band."""
        if self.producer not in reports or self.consumer not in reports:
            return {}
        if self._split is None:
            self._split = self._initial_split(machine)
            return self._emit(machine, reports)
        prod = reports[self.producer].progress.get("iterations", 0.0)
        cons = reports[self.consumer].progress.get("iterations", 0.0)
        lead = prod - cons
        changed = False
        if lead > self.max_lead:
            # Producer too far ahead: shift one thread per node to consumer.
            for n, (p, c) in self._split.items():
                if p > 1:
                    self._split[n] = (p - 1, c + 1)
                    changed = True
        elif lead < self.min_lead:
            for n, (p, c) in self._split.items():
                if c > 1:
                    self._split[n] = (p + 1, c - 1)
                    changed = True
        return self._emit(machine, reports) if changed else {}

    def _emit(
        self,
        machine: MachineTopology,
        reports: Mapping[str, StatusReport],
    ) -> dict[str, list[ThreadCommand]]:
        prod = [self._split[n][0] for n in sorted(self._split)]
        cons = [self._split[n][1] for n in sorted(self._split)]
        return {
            self.producer: [
                self._clamped_allocation(prod, reports[self.producer])
            ],
            self.consumer: [
                self._clamped_allocation(cons, reports[self.consumer])
            ],
        }


class ModelGuidedStrategy(AgentStrategy):
    """Search the Section III model for the best option-3 allocation.

    Needs each application's :class:`~repro.core.spec.AppSpec` (in a real
    deployment the agent would learn AI from hardware counters; here the
    specs are declared).  Decides once unless ``replan_every`` reports.
    """

    def __init__(
        self,
        specs: Sequence[AppSpec],
        *,
        model: NumaPerformanceModel | None = None,
        replan_every: int | None = None,
        exhaustive_limit: int = 20000,
    ) -> None:
        if not specs:
            raise AgentError("ModelGuidedStrategy needs app specs")
        self.specs = list(specs)
        self.model = model or NumaPerformanceModel()
        self.replan_every = replan_every
        self.exhaustive_limit = exhaustive_limit
        self._rounds = 0
        self._last: ThreadAllocation | None = None

    def decide(
        self,
        machine: MachineTopology,
        reports: Mapping[str, StatusReport],
    ) -> dict[str, list[ThreadCommand]]:
        """Re-run the model search and command the winning allocation."""
        self._rounds += 1
        if self._last is not None and (
            self.replan_every is None
            or self._rounds % self.replan_every != 0
        ):
            return {}
        from math import comb

        cores = machine.nodes[0].num_cores
        space = comb(cores + len(self.specs) - 1, len(self.specs) - 1)
        if (
            len(set(machine.cores_per_node)) == 1
            and space <= self.exhaustive_limit
        ):
            # Deliberate periodic full re-plan, throttled by replan_every.
            result = ExhaustiveSearch(self.model).search(  # repro: noqa[PERF002]
                machine, self.specs
            )
        else:
            result = HillClimbSearch(self.model).search(  # repro: noqa[PERF002]
                machine, self.specs
            )
        self._last = result.allocation
        out: dict[str, list[ThreadCommand]] = {}
        for spec in self.specs:
            if spec.name not in reports:
                continue
            per_node = [
                int(x) for x in result.allocation.threads_of(spec.name)
            ]
            out[spec.name] = [
                self._clamped_allocation(per_node, reports[spec.name])
            ]
        return out


class LibraryShiftStrategy(AgentStrategy):
    """Shift cores to a delegated "library" application while it has work.

    When the library runtime reports a non-empty ready queue (a call is in
    flight), it receives ``library_share`` of every node's cores; when its
    queue drains, cores flow back to the main application.  The paper
    expects exactly this reactivity to make tight integration efficient.
    """

    def __init__(
        self,
        main: str,
        library: str,
        *,
        library_share: float = 0.75,
        idle_library_threads: int = 1,
    ) -> None:
        if not 0 < library_share < 1:
            raise AgentError(
                f"library_share must be in (0,1), got {library_share}"
            )
        self.main = main
        self.library = library
        self.library_share = library_share
        self.idle_library_threads = idle_library_threads
        self._library_active: bool | None = None

    def decide(
        self,
        machine: MachineTopology,
        reports: Mapping[str, StatusReport],
    ) -> dict[str, list[ThreadCommand]]:
        """Shift cores toward the library runtime while it has work."""
        if self.library not in reports or self.main not in reports:
            return {}
        lib = reports[self.library]
        active = lib.queue_length > 0
        if active == self._library_active:
            return {}
        self._library_active = active
        main_alloc, lib_alloc = [], []
        for node in machine.nodes:
            c = node.num_cores
            if active:
                lib_threads = max(1, int(round(c * self.library_share)))
                lib_threads = min(lib_threads, c - 1)
            else:
                lib_threads = min(self.idle_library_threads, c - 1)
            lib_alloc.append(lib_threads)
            main_alloc.append(c - lib_threads)
        return {
            self.main: [
                self._clamped_allocation(main_alloc, reports[self.main])
            ],
            self.library: [
                self._clamped_allocation(lib_alloc, reports[self.library])
            ],
        }


class FeedbackHillClimb(AgentStrategy):
    """Online allocation search from observed throughput alone.

    The model-guided strategy needs each application's arithmetic
    intensity declared up front; in the paper's architecture the agent
    only *observes* ("It receives information about the execution from
    the runtimes...").  This strategy hill-climbs live: every round it
    compares the machine throughput achieved since the last round against
    the previous round, keeps the last thread move if throughput improved,
    reverts it and tries the next candidate move otherwise.

    Moves shift one thread per node between an ordered pair of
    applications; candidate pairs are scanned round-robin, and the search
    stops (``converged``) after a full scan without improvement.  All
    state is deterministic, so co-located deployments of the same
    strategy make identical decisions.

    Throughput is read from the reports' ``cpu_load`` (achieved GFLOPS
    divided by the active threads' peak), which the endpoints compute by
    differencing the runtime's FLOP counters — the same "actual CPU load"
    signal the paper's agent polls the OS for.
    """

    def __init__(
        self,
        app_names: Sequence[str],
        *,
        min_threads_per_node: int = 1,
        improvement_threshold: float = 0.01,
    ) -> None:
        if len(app_names) < 2:
            raise AgentError("feedback climbing needs >= 2 applications")
        self.app_names = list(app_names)
        self.min_threads = min_threads_per_node
        self.threshold = improvement_threshold
        self._split: dict[str, list[int]] | None = None
        self._last_score: float | None = None
        self._pending_move: tuple[str, str] | None = None
        self._pair_index = 0
        self._misses = 0
        self.converged = False
        self.moves_kept = 0
        self.moves_reverted = 0

    # -- helpers -------------------------------------------------------
    def _pairs(self) -> list[tuple[str, str]]:
        return [
            (a, b)
            for a in self.app_names
            for b in self.app_names
            if a != b
        ]

    def _observed_gflops(
        self, machine: MachineTopology, reports: Mapping[str, StatusReport]
    ) -> float:
        core_peak = machine.nodes[0].cores[0].peak_gflops
        total = 0.0
        for name in self.app_names:
            r = reports[name]
            total += r.cpu_load * core_peak * r.active_threads
        return total

    def _apply_move(self, src: str, dst: str) -> bool:
        """Move one thread per node src -> dst; False if floor binds."""
        moved = False
        for n in range(len(self._split[src])):
            if self._split[src][n] > self.min_threads:
                self._split[src][n] -= 1
                self._split[dst][n] += 1
                moved = True
        return moved

    def _revert_move(self, src: str, dst: str) -> None:
        for n in range(len(self._split[src])):
            if self._split[dst][n] > 0:
                self._split[dst][n] -= 1
                self._split[src][n] += 1

    def _emit(
        self, reports: Mapping[str, StatusReport]
    ) -> dict[str, list[ThreadCommand]]:
        return {
            name: [self._clamped_allocation(self._split[name], reports[name])]
            for name in self.app_names
        }

    # -- protocol ------------------------------------------------------
    def decide(
        self,
        machine: MachineTopology,
        reports: Mapping[str, StatusReport],
    ) -> dict[str, list[ThreadCommand]]:
        """Propose one hill-climb move from measured throughput."""
        if any(name not in reports for name in self.app_names):
            return {}
        if self._split is None:
            # Round 0: even split, establish the baseline measurement.
            self._split = {}
            n_apps = len(self.app_names)
            for i, name in enumerate(self.app_names):
                per_node = []
                for node in machine.nodes:
                    share, leftover = divmod(node.num_cores, n_apps)
                    per_node.append(share + (1 if i < leftover else 0))
                self._split[name] = per_node
            return self._emit(reports)
        if self.converged:
            return {}

        score = self._observed_gflops(machine, reports)
        if self._last_score is None:
            # First measurement under the even split; try the first move.
            self._last_score = score
            return self._try_next_move(reports)

        if self._pending_move is not None:
            src, dst = self._pending_move
            if score > self._last_score * (1 + self.threshold):
                # Keep the move, try the same direction again.
                self._last_score = score
                self.moves_kept += 1
                self._misses = 0
                if self._apply_move(src, dst):
                    return self._emit(reports)
                self._pending_move = None
                return self._try_next_move(reports)
            # Revert and try the next pair.
            self._revert_move(src, dst)
            self.moves_reverted += 1
            self._pending_move = None
            self._misses += 1
            if self._misses >= len(self._pairs()):
                self.converged = True
                return self._emit(reports)
            out = self._try_next_move(reports)
            return out if out else self._emit(reports)
        self._last_score = score
        return self._try_next_move(reports)

    def _try_next_move(
        self, reports: Mapping[str, StatusReport]
    ) -> dict[str, list[ThreadCommand]]:
        pairs = self._pairs()
        for _ in range(len(pairs)):
            src, dst = pairs[self._pair_index % len(pairs)]
            self._pair_index += 1
            if self._apply_move(src, dst):
                self._pending_move = (src, dst)
                return self._emit(reports)
            self._misses += 1
        self.converged = True
        return {}
