"""Tests for the TBB and OpenMP agent endpoints (the paper's future work)."""

import pytest

from repro.agent import (
    Agent,
    FairShareStrategy,
    OcrVxEndpoint,
    OmpEndpoint,
    TbbEndpoint,
)
from repro.agent.protocol import CommandKind, ThreadCommand
from repro.errors import ProtocolError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime, OpenMpRuntime, TbbRuntime
from repro.runtime.task import Task
from repro.sim import ExecutionSimulator


def mk_task(name, flops=0.01, ai=8.0):
    return Task(name=name, flops=flops, arithmetic_intensity=ai)


class TestTbbEndpoint:
    @pytest.fixture
    def env(self):
        ex = ExecutionSimulator(model_machine())
        tbb = TbbRuntime("tbb", ex, num_threads=16)
        ep = TbbEndpoint(tbb)
        return ex, tbb, ep

    def test_creates_arena_per_node(self, env):
        ex, tbb, ep = env
        assert set(tbb.arenas) == {"node0", "node1", "node2", "node3"}
        assert ep.arena_for(2).node == 2
        # 16 threads spread 4 per arena
        assert all(a.max_concurrency == 4 for a in tbb.arenas.values())

    def test_report_shape(self, env):
        ex, tbb, ep = env
        r = ep.report(0.0)
        assert r.runtime_name == "tbb"
        assert len(r.active_per_node) == 4
        assert r.workers_per_node == (16, 16, 16, 16)

    def test_set_allocation_adjusts_arenas(self, env):
        ex, tbb, ep = env
        ep.apply(
            ThreadCommand(
                kind=CommandKind.SET_ALLOCATION, per_node=(8, 8, 0, 0)
            )
        )
        assert tbb.arenas["node0"].max_concurrency == 8
        assert tbb.arenas["node3"].max_concurrency == 0

    def test_set_total_spreads(self, env):
        ex, tbb, ep = env
        ep.apply(
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=6)
        )
        limits = [
            tbb.arenas[f"node{n}"].max_concurrency for n in range(4)
        ]
        assert sum(limits) == 6
        assert max(limits) - min(limits) <= 1

    def test_worker_blocking_rejected(self, env):
        ex, tbb, ep = env
        with pytest.raises(ProtocolError):
            ep.apply(
                ThreadCommand(
                    kind=CommandKind.BLOCK_WORKERS, workers=("x",)
                )
            )

    def test_execution_respects_agent_limits(self, env):
        ex, tbb, ep = env
        for i in range(300):
            ep.arena_for(i % 4).enqueue(mk_task(f"t{i}", flops=0.02))
        ep.apply(
            ThreadCommand(
                kind=CommandKind.SET_ALLOCATION, per_node=(2, 2, 2, 2)
            )
        )
        ex.run(0.05)
        assert all(a.active <= 2 for a in tbb.arenas.values())


class TestOmpEndpoint:
    @pytest.fixture
    def env(self):
        ex = ExecutionSimulator(model_machine())
        omp = OpenMpRuntime("omp", ex, num_threads=8, node=0)
        return ex, omp, OmpEndpoint(omp)

    def test_report_shape(self, env):
        ex, omp, ep = env
        r = ep.report(0.0)
        assert r.active_threads == 8
        assert r.workers_per_node[0] == 8
        assert r.progress["declined"] == 0.0

    def test_total_command(self, env):
        ex, omp, ep = env
        ep.apply(
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=3)
        )
        r = ep.report(0.0)
        assert r.active_threads == 3

    def test_allocation_translated_to_total(self, env):
        ex, omp, ep = env
        ep.apply(
            ThreadCommand(
                kind=CommandKind.SET_ALLOCATION, per_node=(2, 1, 1, 0)
            )
        )
        assert ep.report(0.0).active_threads == 4

    def test_tied_work_declines_recorded(self, env):
        ex, omp, ep = env
        for i in range(8):
            omp.submit_tied_task(f"tied{i}", 0.5, 8.0, thread_index=i)
        ep.apply(
            ThreadCommand(kind=CommandKind.SET_TOTAL_THREADS, total=0)
        )
        r = ep.report(0.0)
        assert r.progress["declined"] == 8.0
        assert r.active_threads == 8  # nothing could be blocked

    def test_per_node_rejected(self, env):
        ex, omp, ep = env
        with pytest.raises(ProtocolError):
            ep.apply(
                ThreadCommand(
                    kind=CommandKind.SET_NODE_THREADS, node=0, count=1
                )
            )


class TestMixedRuntimeCoordination:
    def test_fair_share_across_ocr_and_tbb(self):
        """The paper's future-work scenario: OCR-Vx and TBB applications
        cooperatively managed by one agent."""
        ex = ExecutionSimulator(model_machine())
        ocr = OCRVxRuntime("ocr-app", ex)
        ocr.start()
        tbb = TbbRuntime("tbb-app", ex, num_threads=32)
        tbb_ep = TbbEndpoint(tbb)
        agent = Agent(ex, FairShareStrategy(), period=0.005)
        agent.register(OcrVxEndpoint(ocr))
        agent.register(tbb_ep)
        agent.start()
        # both applications keep the machine saturated with work
        for i in range(400):
            ocr.create_task(f"o{i}", 0.01, 8.0)
            tbb_ep.arena_for(i % 4).enqueue(mk_task(f"b{i}"))
        ex.run(0.1)
        # fair share: each runtime holds half of every node
        assert ocr.active_per_node() == [4, 4, 4, 4]
        assert all(
            a.max_concurrency == 4 for a in tbb.arenas.values()
        )
        assert tbb.stats_tasks_executed > 0
        assert ocr.stats.tasks_executed > 0
