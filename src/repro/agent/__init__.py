"""The resource-arbitration agent (Figure 1) and its strategies."""

from repro.agent.adapters import OmpEndpoint, TbbEndpoint
from repro.agent.agent import Agent, AgentDecision
from repro.agent.consensus import DecentralizedCoordinator
from repro.agent.monitor import LoadMonitor, LoadSample
from repro.agent.protocol import (
    CommandKind,
    OcrVxEndpoint,
    RuntimeEndpoint,
    StatusReport,
    ThreadCommand,
)
from repro.agent.strategies import (
    AgentStrategy,
    FairShareStrategy,
    FeedbackHillClimb,
    LibraryShiftStrategy,
    ModelGuidedStrategy,
    ProducerConsumerAlignment,
)

__all__ = [
    "Agent",
    "AgentDecision",
    "DecentralizedCoordinator",
    "LoadMonitor",
    "LoadSample",
    "CommandKind",
    "ThreadCommand",
    "StatusReport",
    "RuntimeEndpoint",
    "OcrVxEndpoint",
    "TbbEndpoint",
    "OmpEndpoint",
    "AgentStrategy",
    "FairShareStrategy",
    "ProducerConsumerAlignment",
    "ModelGuidedStrategy",
    "LibraryShiftStrategy",
    "FeedbackHillClimb",
]
