"""Tests for the timeline renderer, report generator, and CLI."""

import pytest

from repro.analysis import run_experiment
from repro.analysis.timeline import extract_intervals, render_timeline
from repro.errors import ConfigurationError
from repro.machine import uma_machine
from repro.sim import Binding, ExecutionSimulator, Tracer, WorkSegment


class _Work:
    def __init__(self, count):
        self.remaining = count

    def next_segment(self, thread):
        if self.remaining <= 0:
            return None
        self.remaining -= 1
        return WorkSegment(
            flops=0.02, arithmetic_intensity=10.0, label="k"
        )

    def segment_finished(self, thread, segment):
        pass


@pytest.fixture
def traced_run():
    tracer = Tracer()
    ex = ExecutionSimulator(uma_machine(), tracer=tracer)
    t = ex.add_thread("w0", Binding.to_node(0), _Work(3))
    ex.run(0.004)
    ex.block(t)
    ex.run(0.004)
    ex.unblock(t)
    ex.run_until_idle()
    return tracer


class TestTimeline:
    def test_intervals_extracted(self, traced_run):
        intervals = extract_intervals(traced_run)
        kinds = {i.kind for i in intervals}
        assert "task" in kinds
        assert "blocked" in kinds
        for i in intervals:
            assert i.end >= i.start

    def test_render_marks_states(self, traced_run):
        text = render_timeline(traced_run, width=40)
        assert "w0" in text
        assert "#" in text
        assert "x" in text

    def test_empty_tracer(self):
        assert "no activity" in render_timeline(Tracer())

    def test_invalid_width(self, traced_run):
        with pytest.raises(ConfigurationError):
            render_timeline(traced_run, width=0)


class TestReport:
    def test_run_experiment_by_id(self):
        block = run_experiment("fig2")
        assert "Figure 2" in block
        assert "254.00" in block

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError):
            run_experiment("nope")

    def test_every_fast_experiment_renders(self):
        for exp_id in ("table1", "table2", "fig2", "fig3", "sublinear"):
            assert run_experiment(exp_id)


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out

    def test_run(self, capsys):
        from repro.__main__ import main

        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "254" in out

    def test_describe_round_trips(self, capsys):
        from repro.__main__ import main
        from repro.machine import parse_topology

        assert main(["describe", "skylake"]) == 0
        out = capsys.readouterr().out
        m = parse_topology(out)
        assert m.total_cores == 80


class TestApiDoc:
    def test_summary_covers_all_packages(self):
        from repro.analysis.apidoc import api_summary

        text = api_summary()
        for pkg in (
            "repro.machine",
            "repro.core",
            "repro.sim",
            "repro.runtime",
            "repro.agent",
            "repro.apps",
            "repro.distributed",
            "repro.analysis",
        ):
            assert f"## `{pkg}`" in text

    def test_key_symbols_documented(self):
        from repro.analysis.apidoc import api_summary

        text = api_summary()
        for symbol in (
            "NumaPerformanceModel",
            "OCRVxRuntime",
            "ThreadAllocation",
            "ExecutionSimulator",
            "Agent",
        ):
            assert f"`{symbol}`" in text
        assert "(undocumented)" not in text

    def test_cli_api_command(self, capsys):
        from repro.__main__ import main

        assert main(["api"]) == 0
        assert "# API reference" in capsys.readouterr().out


class TestFullReport:
    def test_full_report_over_subset(self, monkeypatch):
        import repro.analysis.report as rep

        subset = {
            k: rep.EXPERIMENTS[k]
            for k in ("table1", "table2", "fig2", "fig3")
        }
        monkeypatch.setattr(rep, "EXPERIMENTS", subset)
        text = rep.full_report()
        assert "Table I -" in text
        assert "Figure 3" in text
        assert "254" in text
        assert "150.00" in text

    def test_registry_titles_unique(self):
        from repro.analysis import EXPERIMENTS

        titles = [t for t, _ in EXPERIMENTS.values()]
        assert len(set(titles)) == len(titles)
        assert len(EXPERIMENTS) >= 18


class TestResultDataclasses:
    def test_scenario_result_relative_error(self):
        from repro.analysis import ScenarioResult

        r = ScenarioResult("x", 110.0, 100.0)
        assert r.relative_error == pytest.approx(0.1)
        assert ScenarioResult("y", 1.0).relative_error is None

    def test_workload_result_efficiency_bounds(self):
        from repro.distributed import WorkloadResult

        r = WorkloadResult(
            makespan=10.0, per_rank_busy=(10.0, 5.0)
        )
        assert r.efficiency == pytest.approx(0.75)
        empty = WorkloadResult(makespan=0.0, per_rank_busy=(0.0,))
        assert empty.efficiency == 0.0
