"""Allocation policies: generators of :class:`ThreadAllocation` candidates.

Section II/III of the paper sketch several "simple core allocation
strategies": a fair share of the cores per application, uneven splits that
favour applications which can use the bandwidth, and dedicating whole NUMA
nodes.  This module turns each into a policy object with a common
interface, plus an exhaustive enumerator used by the optimal-search
baseline in :mod:`repro.core.optimizer`.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.allocation import ThreadAllocation
from repro.core.spec import AppSpec, Placement
from repro.errors import AllocationError
from repro.machine.topology import MachineTopology

__all__ = [
    "AllocationPolicy",
    "EvenSharePolicy",
    "UnevenSharePolicy",
    "NodeExclusivePolicy",
    "ProportionalDemandPolicy",
    "SingleAppFillPolicy",
    "enumerate_symmetric_allocations",
    "enumerate_node_compositions",
    "symmetric_counts_tensor",
]


class AllocationPolicy(ABC):
    """A rule mapping (machine, apps) to one concrete allocation."""

    name: str = "policy"

    @abstractmethod
    def allocate(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> ThreadAllocation:
        """Produce an allocation for ``apps`` on ``machine``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} '{self.name}'>"


@dataclass
class EvenSharePolicy(AllocationPolicy):
    """Fair share: every app gets the same thread count on every node.

    This is the paper's Figure 2 b) scenario.  When the cores of a node do
    not divide evenly, the left-over cores stay idle unless
    ``distribute_leftover`` is set, in which case they are handed to apps
    in listing order.
    """

    distribute_leftover: bool = False
    name: str = "even-share"

    def allocate(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> ThreadAllocation:
        """Split every node's cores evenly across the apps."""
        if not apps:
            raise AllocationError("no apps to allocate")
        names = [a.name for a in apps]
        counts = np.zeros((len(apps), machine.num_nodes), dtype=np.int64)
        for node in machine.nodes:
            share, leftover = divmod(node.num_cores, len(apps))
            counts[:, node.node_id] = share
            if self.distribute_leftover:
                for a in range(leftover):
                    counts[a, node.node_id] += 1
        return ThreadAllocation(app_names=tuple(names), counts=counts)


@dataclass
class UnevenSharePolicy(AllocationPolicy):
    """Fixed per-app thread counts replicated on every node.

    The paper's Figure 2 a) scenario ("1,1,1,5") expressed as a policy.
    """

    threads_per_app: Mapping[str, int]
    name: str = "uneven-share"

    def allocate(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> ThreadAllocation:
        """Replicate the configured per-app counts on every node."""
        names = [a.name for a in apps]
        missing = set(names) - set(self.threads_per_app)
        if missing:
            raise AllocationError(
                f"uneven policy missing thread counts for {sorted(missing)}"
            )
        counts = np.array(
            [
                [self.threads_per_app[n]] * machine.num_nodes
                for n in names
            ],
            dtype=np.int64,
        )
        alloc = ThreadAllocation(app_names=tuple(names), counts=counts)
        alloc.validate(machine)
        return alloc


@dataclass
class NodeExclusivePolicy(AllocationPolicy):
    """Dedicate one whole NUMA node to each application (Figure 2 c).

    ``data_affine`` pins each SINGLE_NODE ("NUMA-bad") application to its
    home node — the paper's "ensuring the NUMA-bad code is on the right
    node".  Remaining apps fill remaining nodes in listing order.
    """

    data_affine: bool = True
    name: str = "node-exclusive"

    def allocate(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> ThreadAllocation:
        """Dedicate whole NUMA nodes to applications round-robin."""
        names = [a.name for a in apps]
        if len(apps) != machine.num_nodes:
            raise AllocationError(
                f"node-exclusive needs one app per node "
                f"({len(apps)} apps, {machine.num_nodes} nodes)"
            )
        assignment: dict[str, int] = {}
        taken: set[int] = set()
        if self.data_affine:
            for app in apps:
                if (
                    app.placement is Placement.SINGLE_NODE
                    and app.home_node is not None
                    and app.home_node not in taken
                ):
                    assignment[app.name] = app.home_node
                    taken.add(app.home_node)
        free = [n for n in range(machine.num_nodes) if n not in taken]
        for app in apps:
            if app.name not in assignment:
                assignment[app.name] = free.pop(0)
        return ThreadAllocation.node_exclusive(names, machine, assignment)


@dataclass
class ProportionalDemandPolicy(AllocationPolicy):
    """Give each app per-node threads proportional to a weight.

    By default the weight is the inverse of the app's per-thread bandwidth
    demand, so compute-bound applications (cheap threads) receive more
    cores — the heuristic behind the paper's observation that the uneven
    (1,1,1,5) split beats the fair share on the Tables I/II workload.
    """

    weights: Mapping[str, float] | None = None
    min_threads: int = 1
    name: str = "proportional-demand"

    def allocate(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> ThreadAllocation:
        """Size each app's per-node share by its weight."""
        if not apps:
            raise AllocationError("no apps to allocate")
        names = [a.name for a in apps]
        if self.weights is not None:
            w = np.array([float(self.weights[n]) for n in names])
        else:
            core_peak = machine.nodes[0].cores[0].peak_gflops
            w = np.array(
                [1.0 / a.demand_per_thread(core_peak) for a in apps]
            )
        if np.any(w <= 0):
            raise AllocationError("weights must be positive")
        counts = np.zeros((len(apps), machine.num_nodes), dtype=np.int64)
        for node in machine.nodes:
            cores = node.num_cores
            floor = self.min_threads * len(apps)
            if floor > cores:
                raise AllocationError(
                    f"node {node.node_id}: cannot give {self.min_threads} "
                    f"thread(s) to each of {len(apps)} apps with only "
                    f"{cores} cores"
                )
            base = np.full(len(apps), self.min_threads, dtype=np.int64)
            spare = cores - floor
            # Largest-remainder apportionment of the spare cores.
            ideal = spare * w / w.sum()
            extra = np.floor(ideal).astype(np.int64)
            rema = ideal - extra
            for i in np.argsort(-rema)[: spare - int(extra.sum())]:
                extra[i] += 1
            counts[:, node.node_id] = base + extra
        return ThreadAllocation(app_names=tuple(names), counts=counts)


@dataclass
class SingleAppFillPolicy(AllocationPolicy):
    """Give one app everything, others a single thread per node.

    Models the paper's tight-integration scenario where cores are shifted
    wholesale to a "library" application while it runs.
    """

    favoured: str
    name: str = "single-app-fill"

    def allocate(
        self, machine: MachineTopology, apps: Sequence[AppSpec]
    ) -> ThreadAllocation:
        """Fill the machine with one app; one thread each for the rest."""
        names = [a.name for a in apps]
        if self.favoured not in names:
            raise AllocationError(f"unknown favoured app '{self.favoured}'")
        counts = np.ones((len(apps), machine.num_nodes), dtype=np.int64)
        fi = names.index(self.favoured)
        for node in machine.nodes:
            others = len(apps) - 1
            counts[fi, node.node_id] = node.num_cores - others
            if counts[fi, node.node_id] < 1:
                raise AllocationError(
                    f"node {node.node_id} too small to favour "
                    f"'{self.favoured}' among {len(apps)} apps"
                )
        return ThreadAllocation(app_names=tuple(names), counts=counts)


def enumerate_node_compositions(
    cores: int, num_apps: int, *, require_full: bool = True
) -> Iterator[tuple[int, ...]]:
    """Yield per-app thread counts for one node summing to ``cores``.

    With ``require_full=False`` also yields partial occupations (sums less
    than ``cores``), which lets optimizers consider leaving cores idle —
    profitable when extra memory-bound threads would only add contention.
    """
    if cores < 0 or num_apps <= 0:
        raise AllocationError(
            f"invalid composition space: cores={cores}, apps={num_apps}"
        )
    totals = [cores] if require_full else range(cores + 1)
    for total in totals:
        # Stars and bars over `num_apps` nonnegative integers.
        for cuts in itertools.combinations(
            range(total + num_apps - 1), num_apps - 1
        ):
            comp = []
            prev = -1
            for c in cuts:
                comp.append(c - prev - 1)
                prev = c
            comp.append(total + num_apps - 2 - prev)
            yield tuple(comp)


def enumerate_symmetric_allocations(
    machine: MachineTopology,
    apps: Sequence[AppSpec],
    *,
    require_full: bool = True,
) -> Iterator[ThreadAllocation]:
    """Yield every allocation that uses the same composition on all nodes.

    The symmetric subspace is where the paper's scenarios a) and b) live;
    it has :math:`\\binom{C+A-1}{A-1}` points for ``C`` cores per node and
    ``A`` apps, small enough for exhaustive search on the paper machines.
    Requires a machine whose nodes all have the same core count.
    """
    counts = set(machine.cores_per_node)
    if len(counts) != 1:
        raise AllocationError(
            "symmetric enumeration requires equal cores per node"
        )
    cores = counts.pop()
    names = tuple(a.name for a in apps)
    for comp in enumerate_node_compositions(
        cores, len(apps), require_full=require_full
    ):
        yield ThreadAllocation.uniform(names, machine.num_nodes, list(comp))


def symmetric_counts_tensor(
    machine: MachineTopology,
    num_apps: int,
    *,
    require_full: bool = True,
) -> np.ndarray:
    """The whole symmetric space as one ``(B, apps, nodes)`` counts tensor.

    The batched form of :func:`enumerate_symmetric_allocations`: row
    ``b`` replicates the ``b``-th node composition (same enumeration
    order) across every node.  Feeding the tensor to
    :meth:`~repro.core.model.NumaPerformanceModel.predict_scores` scores
    the entire space in one call — the exhaustive-search fast path.
    """
    counts = set(machine.cores_per_node)
    if len(counts) != 1:
        raise AllocationError(
            "symmetric enumeration requires equal cores per node"
        )
    cores = counts.pop()
    comps = np.array(
        list(
            enumerate_node_compositions(
                cores, num_apps, require_full=require_full
            )
        ),
        dtype=np.int64,
    ).reshape(-1, num_apps)
    return np.repeat(comps[:, :, None], machine.num_nodes, axis=2)
