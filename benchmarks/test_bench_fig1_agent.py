"""Figure 1: the agent architecture on the producer-consumer scenario.

Reproduces the finding of the authors' earlier experiments [10] that the
architecture's clear win is the reduction in intermediate data, with only
marginal wall-clock impact.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_fig1_agent


def test_bench_fig1_agent(benchmark):
    res = benchmark.pedantic(run_fig1_agent, rounds=1, iterations=1)
    emit(
        "Figure 1 - agent-coordinated producer/consumer",
        render_table(
            ["configuration", "time [s]", "peak intermediate items"],
            [
                [
                    "no agent (OS only)",
                    res.time_without_agent,
                    res.peak_items_without_agent,
                ],
                [
                    "with agent",
                    res.time_with_agent,
                    res.peak_items_with_agent,
                ],
            ],
        )
        + f"\nagent rounds: {res.agent_rounds}, "
        f"commands issued: {res.agent_commands}",
    )
    # Clear storage benefit...
    assert res.peak_items_with_agent < res.peak_items_without_agent / 1.5
    # ...and only marginal performance impact (paper: "a few percent",
    # sometimes none).
    delta = (
        abs(res.time_with_agent - res.time_without_agent)
        / res.time_without_agent
    )
    assert delta < 0.25
