"""Section III-B: calibrating machine parameters from a measured run.

The paper "estimate[s] the parameters of the machine from the measured
performance of the application" in the even scenario.  The benchmark runs
that procedure against the simulated Skylake and checks the recovered
parameters.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_calibration


def test_bench_calibration(benchmark):
    res = benchmark.pedantic(
        run_calibration, kwargs={"duration": 0.3}, rounds=1, iterations=1
    )
    emit(
        "Machine calibration from the even-allocation run (Sec. III-B)",
        render_table(
            ["parameter", "true", "estimated", "error [%]"],
            [
                [
                    "peak GFLOPS/thread",
                    res.true_peak,
                    res.est_peak,
                    res.peak_error * 100,
                ],
                [
                    "node bandwidth GB/s",
                    res.true_bandwidth,
                    res.est_bandwidth,
                    res.bandwidth_error * 100,
                ],
            ],
        ),
    )
    assert res.peak_error < 0.02
    assert res.bandwidth_error < 0.02
