"""Durable-state I/O rules.

A plain ``open(path, "w")`` leaves a window where a crash mid-write
makes readers see a truncated or half-written file — exactly the
failure the crash-safety layer exists to rule out.  Everything in this
tree that writes *durable* state (journals, snapshots, baselines,
checkpoints) must go through
:func:`repro.serve.persist.atomic_write` — temp file in the same
directory, ``fsync``, ``os.replace``, directory ``fsync`` — or an
equivalent temp+rename sequence, so readers only ever see old bytes or
new bytes.

IO001 flags the bypasses: a builtin ``open`` in a write mode, or a
``.write_text(...)`` / ``.write_bytes(...)`` call, inside a
durable-state context — a function whose name says it persists
(``save*``, ``persist*``, ``snapshot*``, ``checkpoint*``, ...) or a
path expression that names a durable artefact (``journal``,
``snapshot``, ``baseline``, ...).  Temp+rename sequences pass
automatically: ``os.fdopen`` over a ``mkstemp`` descriptor followed by
``os.replace`` never uses the builtin ``open``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.engine import (
    FileContext,
    Rule,
    Severity,
    Violation,
    register,
)

__all__ = ["NonAtomicDurableWrite"]

#: Function names whose writes are durable state by declaration.
_DURABLE_FUNC_RE = re.compile(
    r"save|persist|snapshot|compact|checkpoint|journal|commit|baseline"
)

#: Path expressions that name a durable artefact.
_DURABLE_PATH_RE = re.compile(
    r"journal|snapshot|baseline|checkpoint|manifest"
)

_WRITE_MODE_RE = re.compile(r"[wax+]")

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _open_write_mode(node: ast.Call) -> str | None:
    """The write mode when ``node`` is builtin ``open(..., 'w'|...)``."""
    func = node.func
    if not isinstance(func, ast.Name) or func.id != "open":
        return None
    mode: ast.AST | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    else:
        for kw in node.keywords:
            if kw.arg == "mode":
                mode = kw.value
    if not isinstance(mode, ast.Constant) or not isinstance(
        mode.value, str
    ):
        return None  # no mode / dynamic mode: reads, or undecidable
    return mode.value if _WRITE_MODE_RE.search(mode.value) else None


def _write_call_path(node: ast.Call) -> str | None:
    """Source of the path expression when ``node`` writes a file.

    ``open(path, 'w')`` yields its first argument; ``p.write_text(...)``
    and ``p.write_bytes(...)`` yield their receiver.
    """
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in (
        "write_text",
        "write_bytes",
    ):
        return ast.unparse(func.value)
    if _open_write_mode(node) is not None and node.args:
        return ast.unparse(node.args[0])
    return None


@register
class NonAtomicDurableWrite(Rule):
    """Durable-state write bypassing the atomic temp+rename idiom.

    Fires on builtin ``open`` in a write mode and on
    ``.write_text(...)`` / ``.write_bytes(...)`` when either the
    enclosing function's name declares persistence intent
    (``save``/``persist``/``snapshot``/``compact``/``checkpoint``/
    ``journal``/``commit``/``baseline``) or the path expression names a
    durable artefact (``journal``/``snapshot``/``baseline``/
    ``checkpoint``/``manifest``).  A crash mid-write leaves such a file
    truncated; :func:`repro.serve.persist.atomic_write` (or an
    equivalent ``mkstemp`` + ``os.replace`` sequence, which this rule
    does not flag) makes the replacement all-or-nothing.

    A warning, not an error: scratch output inside a coincidentally
    named function is harmless, and the author knows whether a reader
    can ever observe the file mid-write.  Deliberate non-atomic writes
    document themselves with ``# repro: noqa[IO001]``.
    """

    rule_id = "IO001"
    severity = Severity.WARNING
    summary = (
        "durable-state file write without the atomic temp+rename "
        "idiom; use repro.serve.persist.atomic_write (or mkstemp + "
        "os.replace) so readers see old bytes or new bytes, never a "
        "torn file"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield this rule's violations found in ``ctx``."""
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            path_expr = _write_call_path(node)
            if path_expr is None:
                continue
            func_name = self._enclosing_function_name(ctx, node)
            durable_func = func_name is not None and _DURABLE_FUNC_RE.search(
                func_name.lower()
            )
            durable_path = _DURABLE_PATH_RE.search(path_expr.lower())
            if not durable_func and not durable_path:
                continue
            reason = (
                f"`{func_name}` persists durable state"
                if durable_func
                else f"`{path_expr}` names a durable artefact"
            )
            yield self.violation(
                ctx,
                node,
                f"{reason}, but this write is not atomic — a crash "
                f"mid-write leaves a torn file; write via "
                f"repro.serve.persist.atomic_write or mkstemp + "
                f"os.replace",
            )

    @staticmethod
    def _enclosing_function_name(
        ctx: FileContext, node: ast.AST
    ) -> str | None:
        for anc in ctx.parents(node):
            if isinstance(anc, _FUNCS):
                return anc.name
        return None
