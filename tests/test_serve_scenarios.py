"""The scripted churn replays: every preset passes at several seeds,
reports are well-formed, and the live-vs-offline oracle comparison is
exact."""

import json

import pytest

from repro.errors import ServiceError
from repro.serve import SERVE_SCENARIOS, ChurnEvent, run_replay


class TestPresets:
    @pytest.mark.parametrize("name", sorted(SERVE_SCENARIOS))
    def test_passes_at_seed_zero(self, name):
        report = run_replay(name, seed=0)
        assert report.passed, report.notes
        assert report.matches_offline

    @pytest.mark.parametrize("seed", [1, 7])
    def test_churn_basic_passes_other_seeds(self, seed):
        report = run_replay("churn-basic", seed=seed)
        assert report.passed, report.notes

    def test_reports_are_deterministic(self):
        first = run_replay("churn-basic", seed=3)
        second = run_replay("churn-basic", seed=3)
        assert first.to_dict() == second.to_dict()

    def test_burst_coalesces(self):
        report = run_replay("churn-burst", seed=0)
        assert report.passed
        # One search for the initial join, one for the 3-join burst.
        assert report.reoptimizations == 2

    def test_stale_quarantines_then_recovers(self):
        report = run_replay("churn-stale", seed=0)
        assert report.passed
        # Everyone reactivated by the end: the quarantine list is empty
        # again and all three apps are in the final allocation.
        assert report.quarantined == ()
        assert sorted(report.final_allocation) == [
            "alpha",
            "beta",
            "gamma",
        ]
        assert report.degraded_reoptimizations >= 1

    def test_cache_reused_across_rejoin(self):
        report = run_replay("churn-cache", seed=0)
        assert report.passed
        assert report.cache_hits > 0

    def test_unknown_scenario_raises(self):
        with pytest.raises(ServiceError):
            run_replay("churn-nonexistent")


class TestDeltaMode:
    @pytest.mark.parametrize("name", sorted(SERVE_SCENARIOS))
    def test_every_preset_passes_the_oracle_in_delta_mode(self, name):
        report = run_replay(name, seed=0, mode="delta")
        assert report.passed, report.notes
        assert report.matches_offline
        assert report.mode == "delta"
        assert report.delta_reoptimizations > 0

    def test_full_mode_report_shows_no_delta_work(self):
        report = run_replay("churn-basic", seed=0)
        assert report.mode == "full"
        assert report.delta_reoptimizations == 0
        assert report.delta_fallbacks == 0

    def test_delta_and_full_agree_on_the_final_answer(self):
        full = run_replay("churn-basic", seed=0)
        delta = run_replay("churn-basic", seed=0, mode="delta")
        assert delta.final_score == full.final_score
        assert delta.final_allocation == full.final_allocation

    def test_warm_starts_dominate_after_the_cold_start(self):
        report = run_replay("churn-basic", seed=0, mode="delta")
        # Only the first event (and any degraded restart) lacks a
        # previous answer to repair.
        assert report.delta_fallbacks < report.delta_reoptimizations


class TestReportShape:
    def test_json_round_trips(self):
        report = run_replay("churn-basic", seed=0)
        data = json.loads(report.to_json())
        assert data["scenario"] == "churn-basic"
        assert data["passed"] is True
        assert data["final_score"] == data["offline_score"]
        assert data["mode"] == "full"
        assert data["delta_reoptimizations"] == 0

    def test_format_mentions_the_verdict(self):
        report = run_replay("churn-basic", seed=0)
        text = report.format()
        assert "churn-basic" in text
        assert "PASS" in text

    def test_format_mentions_the_delta_path(self):
        report = run_replay("churn-basic", seed=0, mode="delta")
        text = report.format()
        assert "mode delta" in text
        assert "delta path" in text


class TestChurnEvent:
    def test_join_requires_app(self):
        with pytest.raises(ServiceError):
            ChurnEvent(0.1, "join", "x")

    def test_unknown_action_rejected(self):
        with pytest.raises(ServiceError):
            ChurnEvent(0.1, "explode", "x")


class TestCrashRestart:
    def test_crash_restart_recovers_and_matches(self):
        report = run_replay("serve-crash-restart", seed=0)
        assert report.passed, report.notes
        assert report.recoveries == 1
        assert report.journal_records > 0
        assert report.matches_offline

    def test_crash_restart_passes_in_delta_mode(self):
        report = run_replay("serve-crash-restart", seed=0, mode="delta")
        assert report.passed, report.notes
        assert report.recoveries == 1
        assert report.matches_offline

    def test_journal_directory_is_honoured(self, tmp_path):
        import os

        report = run_replay(
            "serve-crash-restart", seed=0, journal=str(tmp_path)
        )
        assert report.passed
        names = os.listdir(tmp_path)
        assert any(n.startswith("journal-") for n in names)
        assert any(n.startswith("snapshot-") for n in names)

    def test_journaled_run_reports_the_journal(self, tmp_path):
        plain = run_replay("churn-basic", seed=0)
        journaled = run_replay(
            "churn-basic", seed=0, journal=str(tmp_path)
        )
        assert plain.journal_records == 0
        assert journaled.journal_records > 0
        # Identical behaviour: journaling is a pure observer.
        assert journaled.final_allocation == plain.final_allocation
        assert journaled.final_score == plain.final_score


class TestParallelWorkers:
    """Replays routed through the process pool (``workers=N``)."""

    def test_crash_restart_pool_lifecycle(self):
        from repro.core.parallel import pool_stats, shutdown_pools

        try:
            report = run_replay("serve-crash-restart", seed=0, workers=2)
            assert report.passed, report.notes
            assert report.matches_offline
            # The scenario's own checks cover spawn -> released-at-crash
            # -> respawned-after-recovery; the respawned pool is still
            # live here because the replay never drains the service.
            stats = pool_stats().get(2)
            assert stats is not None and stats["alive"]
        finally:
            shutdown_pools()

    def test_parallel_replay_identical_to_serial(self):
        from repro.core.parallel import shutdown_pools

        try:
            serial = run_replay("churn-basic", seed=0)
            pooled = run_replay("churn-basic", seed=0, workers=2)
            assert pooled.passed, pooled.notes
            assert pooled.final_allocation == serial.final_allocation
            assert pooled.final_score == serial.final_score
            assert pooled.offline_score == serial.offline_score
        finally:
            shutdown_pools()
