"""Span/metric exporters: JSON-lines and Chrome trace-event format.

Two formats cover the two workflows:

* **JSON-lines** (``.jsonl``) — one :meth:`Span.to_dict` object per
  line; trivially greppable/parsable and round-trips exactly through
  :func:`read_jsonl`.
* **Chrome trace-event JSON** — a ``{"traceEvents": [...]}`` document
  that loads directly in ``chrome://tracing`` (or https://ui.perfetto.dev).
  Finished spans become complete (``"ph": "X"``) events, zero-duration
  spans become instants (``"i"``), and an optional
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot is appended as
  counter (``"C"``) events so final metric values show up as tracks.

Timestamps are normalised so the earliest span starts at 0 µs, and
attribute values that are not JSON-serialisable are stringified — an
export can never fail because of an exotic span attribute.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry, MetricSet
from repro.obs.tracer import Span, Tracer

__all__ = [
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
]


def _spans_of(source: Tracer | Iterable[Span]) -> tuple[Span, ...]:
    if isinstance(source, Tracer):
        return source.spans
    return tuple(source)


# ----------------------------------------------------------------------
# JSON-lines
# ----------------------------------------------------------------------
def to_jsonl(source: Tracer | Iterable[Span]) -> str:
    """Render spans as JSON-lines text (one object per line)."""
    return "\n".join(
        json.dumps(s.to_dict(), sort_keys=True, default=str)
        for s in _spans_of(source)
    )


def write_jsonl(path: str, source: Tracer | Iterable[Span]) -> int:
    """Write spans to ``path`` as JSON-lines; returns the span count."""
    spans = _spans_of(source)
    with open(path, "w", encoding="utf-8") as fh:
        text = to_jsonl(spans)
        if text:
            fh.write(text + "\n")
    return len(spans)


def read_jsonl(path: str) -> list[Span]:
    """Load spans written by :func:`write_jsonl` (exact round-trip)."""
    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: not a span record ({exc})"
                ) from exc
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def _json_safe(attrs: dict[str, Any]) -> dict[str, Any]:
    safe: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[str(key)] = value
        else:
            safe[str(key)] = str(value)
    return safe


def to_chrome_trace(
    source: Tracer | Iterable[Span],
    metrics: MetricSet | None = None,
    *,
    process_name: str = "repro",
) -> dict[str, Any]:
    """Build a Chrome trace-event document from spans (+ optional metrics).

    The result is a JSON-serialisable dict following the Trace Event
    Format: ``traceEvents`` holds metadata (``M``), complete (``X``),
    instant (``i``) and counter (``C``) events with microsecond
    timestamps relative to the earliest span.
    """
    spans = [s for s in _spans_of(source) if s.finished]
    t0 = min((s.start for s in spans), default=0.0)
    # Python thread idents are large opaque ints; renumber them 0..n so
    # the viewer shows compact per-thread tracks in first-seen order.
    tids: dict[int, int] = {}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        tid = tids.setdefault(span.thread_id, len(tids))
        ts = (span.start - t0) * 1e6
        dur = (span.end - span.start) * 1e6
        args = _json_safe(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.name.split("/", 1)[0] or "span",
            "pid": 1,
            "tid": tid,
            "ts": ts,
            "args": args,
        }
        if dur <= 0:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = dur
        events.append(event)
    for real_tid, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"thread-{real_tid}"},
            }
        )
    if metrics is not None:
        end_ts = max(
            ((s.end - t0) * 1e6 for s in spans), default=0.0
        )
        for name, value in sorted(metrics.snapshot().items()):
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": 1,
                    "tid": 0,
                    "ts": end_ts,
                    "args": {"value": value},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    source: Tracer | Iterable[Span],
    metrics: MetricsRegistry | MetricSet | None = None,
    *,
    process_name: str = "repro",
) -> int:
    """Write a ``chrome://tracing``-loadable file; returns the event count."""
    doc = to_chrome_trace(source, metrics, process_name=process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return len(doc["traceEvents"])
