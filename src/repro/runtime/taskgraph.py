"""Static task-graph utilities: construction, validation, analysis.

Runtimes accept dynamically created tasks, but many workloads (and tests)
build their graph up front.  :class:`TaskGraph` collects tasks and edges,
checks the graph is acyclic, and offers the standard structural queries
(topological order, critical path, width) used by the workload generators
in :mod:`repro.apps.workloads`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import DependencyError
from repro.runtime.task import Task

__all__ = ["TaskGraph"]


class TaskGraph:
    """A collection of tasks with explicit dependence edges."""

    def __init__(self) -> None:
        self._tasks: list[Task] = []
        self._ids: set[int] = set()
        self._edges: list[tuple[Task, Task]] = []

    # ------------------------------------------------------------------
    def add(self, task: Task) -> Task:
        """Register a task (idempotent)."""
        if task.task_id not in self._ids:
            self._ids.add(task.task_id)
            self._tasks.append(task)
        return task

    def add_edge(self, producer: Task, consumer: Task) -> None:
        """Declare ``consumer`` depends on ``producer``; registers both."""
        self.add(producer)
        self.add(consumer)
        consumer.depends_on(producer)
        self._edges.append((producer, consumer))

    @property
    def tasks(self) -> tuple[Task, ...]:
        """All registered tasks, in insertion order."""
        return tuple(self._tasks)

    @property
    def edges(self) -> tuple[tuple[Task, Task], ...]:
        """All declared edges."""
        return tuple(self._edges)

    def __len__(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------
    def _adjacency(self) -> dict[int, list[Task]]:
        adj: dict[int, list[Task]] = {t.task_id: [] for t in self._tasks}
        for p, c in self._edges:
            adj[p.task_id].append(c)
        return adj

    def _indegrees(self) -> dict[int, int]:
        deg = {t.task_id: 0 for t in self._tasks}
        for _, c in self._edges:
            deg[c.task_id] += 1
        return deg

    def topological_order(self) -> list[Task]:
        """Kahn's algorithm; raises :class:`DependencyError` on cycles."""
        adj = self._adjacency()
        deg = self._indegrees()
        by_id = {t.task_id: t for t in self._tasks}
        queue = deque(
            t for t in self._tasks if deg[t.task_id] == 0
        )
        order: list[Task] = []
        while queue:
            t = queue.popleft()
            order.append(t)
            for c in adj[t.task_id]:
                deg[c.task_id] -= 1
                if deg[c.task_id] == 0:
                    queue.append(by_id[c.task_id])
        if len(order) != len(self._tasks):
            stuck = [
                t.name for t in self._tasks if deg[t.task_id] > 0
            ]
            raise DependencyError(
                f"task graph has a cycle through {stuck[:5]}"
            )
        return order

    def validate(self) -> None:
        """Raise if the graph has a cycle."""
        self.topological_order()

    def critical_path_flops(self) -> float:
        """Largest total FLOPs along any dependence chain.

        Lower-bounds execution time: ``critical_path / per_thread_rate``.
        """
        order = self.topological_order()
        adj = self._adjacency()
        longest: dict[int, float] = {}
        for t in order:
            longest.setdefault(t.task_id, t.flops)
            for c in adj[t.task_id]:
                cand = longest[t.task_id] + c.flops
                if cand > longest.get(c.task_id, c.flops):
                    longest[c.task_id] = cand
                else:
                    longest.setdefault(c.task_id, c.flops)
        return max(longest.values(), default=0.0)

    def total_flops(self) -> float:
        """Sum of all tasks' FLOPs."""
        return sum(t.flops for t in self._tasks)

    def max_width(self) -> int:
        """Size of the largest antichain level (parallelism upper bound).

        Computed by levelling: a task's level is one past the max level of
        its predecessors; width is the largest level population.  This is
        the standard "how many workers could this graph ever keep busy at
        once" estimate for layered graphs.
        """
        order = self.topological_order()
        preds: dict[int, list[Task]] = {t.task_id: [] for t in self._tasks}
        for p, c in self._edges:
            preds[c.task_id].append(p)
        level: dict[int, int] = {}
        for t in order:
            level[t.task_id] = (
                max((level[p.task_id] for p in preds[t.task_id]), default=-1)
                + 1
            )
        if not level:
            return 0
        counts: dict[int, int] = {}
        for lv in level.values():
            counts[lv] = counts.get(lv, 0) + 1
        return max(counts.values())

    def parallelism(self) -> float:
        """Average parallelism: total FLOPs / critical-path FLOPs."""
        cp = self.critical_path_flops()
        if cp <= 0:
            return 0.0
        return self.total_flops() / cp
