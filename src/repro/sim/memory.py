"""Dynamic memory-bandwidth arbitration for the execution simulator.

Applies the same two-phase rules as the analytic model
(:mod:`repro.core.model`) — remote requests served first up to the link
bandwidth, then baseline + water-fill locally — but at per-thread, per-time-
slice granularity and tolerant of over-subscription (the simulator may run
more threads than cores when the OS-scheduler experiments ask for it; each
thread's demand arrives already scaled by its CPU share).

Keeping this implementation separate from the model is deliberate: the
model is the paper's artefact and stays exactly as published, while the
simulator is the "real hardware" stand-in whose behaviour may be perturbed
(slice quantisation, task granularity, over-subscription).  A test pins the
two to agree in the steady state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.bwshare import RemainderRule, share_node_bandwidth
from repro.errors import SimulationError
from repro.machine.topology import MachineTopology

__all__ = ["BandwidthRequest", "BandwidthGrant", "BandwidthResolver"]


@dataclass(frozen=True, slots=True)
class BandwidthRequest:
    """One thread's memory demand for the current time slice.

    Attributes
    ----------
    key:
        Opaque identifier used to map the grant back to the thread.
    source_node:
        NUMA node the thread is executing on this slice.
    demands:
        GB/s attempted against each memory node.  Entries for the source
        node are local traffic; all others travel over the corresponding
        inter-node link.
    """

    key: Hashable
    source_node: int
    demands: Mapping[int, float]


@dataclass(frozen=True, slots=True)
class BandwidthGrant:
    """Bandwidth granted to one request, split by memory node."""

    key: Hashable
    by_node: dict[int, float]

    @property
    def total(self) -> float:
        """Total granted GB/s."""
        return float(sum(self.by_node.values()))


class BandwidthResolver:
    """Resolves one slice's worth of bandwidth requests."""

    def __init__(
        self,
        machine: MachineTopology,
        *,
        rule: RemainderRule = RemainderRule.PROPORTIONAL,
    ) -> None:
        self.machine = machine
        self.rule = rule

    def resolve(
        self, requests: Sequence[BandwidthRequest]
    ) -> dict[Hashable, BandwidthGrant]:
        """Grant bandwidth to every request.

        Invariants: each grant is between 0 and the request's demand; the
        traffic drawn from any node's memory never exceeds its bandwidth;
        link traffic never exceeds link bandwidth.
        """
        machine = self.machine
        n_nodes = machine.num_nodes
        for r in requests:
            if not 0 <= r.source_node < n_nodes:
                raise SimulationError(
                    f"request {r.key}: source node {r.source_node} out of "
                    f"range"
                )
            for m, d in r.demands.items():
                if not 0 <= m < n_nodes:
                    raise SimulationError(
                        f"request {r.key}: memory node {m} out of range"
                    )
                if d < 0:
                    raise SimulationError(
                        f"request {r.key}: negative demand {d}"
                    )

        grants: dict[Hashable, dict[int, float]] = {
            r.key: {} for r in requests
        }

        # Phase 1: remote service, per memory node.
        remote_served = np.zeros(n_nodes)
        for m in range(n_nodes):
            # Aggregate remote demand by source node.
            by_source: dict[int, list[tuple[Hashable, float]]] = {}
            for r in requests:
                d = r.demands.get(m, 0.0)
                if d <= 0 or r.source_node == m:
                    continue
                by_source.setdefault(r.source_node, []).append((r.key, d))
            if not by_source:
                continue
            served: dict[int, float] = {}
            for s, items in by_source.items():
                total = sum(d for _, d in items)
                served[s] = min(total, machine.bandwidth(s, m))
            cap = machine.node(m).local_bandwidth
            total_served = sum(served.values())
            scale = 1.0
            if total_served > cap:
                scale = cap / total_served
            for s, items in by_source.items():
                total = sum(d for _, d in items)
                flow = served[s] * scale
                for key, d in items:
                    grants[key][m] = grants[key].get(m, 0.0) + flow * d / total
            remote_served[m] = total_served * scale

        # Phase 2: local arbitration on the remainder of each node.
        for m in range(n_nodes):
            node = machine.node(m)
            local = [
                (r.key, r.demands.get(m, 0.0))
                for r in requests
                if r.source_node == m and r.demands.get(m, 0.0) > 0
            ]
            capacity = max(node.local_bandwidth - remote_served[m], 0.0)
            if not local:
                continue
            demands = np.array([d for _, d in local])
            if len(local) <= node.num_cores:
                share = share_node_bandwidth(
                    capacity, node.num_cores, demands, rule=self.rule
                )
                allocated = share.allocated
            else:
                # Over-subscribed node: the baseline guarantee no longer
                # fits in the capacity, so fall back to capped proportional
                # sharing (what a fair memory controller converges to).
                allocated = self._proportional_capped(capacity, demands)
            for (key, _), got in zip(local, allocated):
                grants[key][m] = grants[key].get(m, 0.0) + float(got)

        return {
            key: BandwidthGrant(key=key, by_node=by_node)
            for key, by_node in grants.items()
        }

    @staticmethod
    def _proportional_capped(
        capacity: float, demands: np.ndarray
    ) -> np.ndarray:
        """Water-filling proportional share, each grant capped at demand."""
        allocated = np.zeros_like(demands)
        remaining = capacity
        for _ in range(len(demands) + 1):
            unmet = demands - allocated
            open_mask = unmet > 1e-12
            if remaining <= 1e-12 or not np.any(open_mask):
                break
            weights = np.where(open_mask, unmet, 0.0)
            give = np.minimum(remaining * weights / weights.sum(), unmet)
            handed = give.sum()
            if handed <= 1e-12:
                break
            allocated += give
            remaining -= handed
        return allocated
