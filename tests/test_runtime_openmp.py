"""Unit tests for the OpenMP-like adapter (Section IV hazards)."""

import pytest

from repro.errors import RuntimeSystemError
from repro.machine import model_machine
from repro.runtime.openmp import OmpSchedule, OpenMpRuntime
from repro.sim import ExecutionSimulator


@pytest.fixture
def ex():
    return ExecutionSimulator(model_machine())


class TestParallelFor:
    def test_static_loop_completes(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=8, node=0)
        done = omp.parallel_for(
            "loop", iterations=80, flops_per_iteration=0.001,
            arithmetic_intensity=10.0,
        )
        ex.run_until_idle()
        assert done.fired
        assert omp.loops_completed == 1

    def test_dynamic_loop_completes(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=8, node=0)
        done = omp.parallel_for(
            "loop", iterations=80, flops_per_iteration=0.001,
            arithmetic_intensity=10.0,
            schedule=OmpSchedule.DYNAMIC, chunk=5,
        )
        ex.run_until_idle()
        assert done.fired

    def test_invalid_iterations(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=2)
        with pytest.raises(RuntimeSystemError):
            omp.parallel_for("l", 0, 1.0, 1.0)

    def test_static_chunks_pinned_to_threads(self, ex):
        # With one thread blocked, a STATIC loop cannot finish: its chunk
        # is pinned to the blocked thread (the Section IV hazard).
        omp = OpenMpRuntime("omp", ex, num_threads=4, node=0)
        victim = omp._threads[0]
        ex.block(victim)
        done = omp.parallel_for(
            "loop", iterations=8, flops_per_iteration=0.001,
            arithmetic_intensity=10.0,
        )
        ex.run(0.2)
        assert not done.fired
        ex.unblock(victim)
        ex.run(0.2)
        assert done.fired

    def test_dynamic_survives_blocked_thread(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=4, node=0)
        ex.block(omp._threads[0])
        done = omp.parallel_for(
            "loop", iterations=8, flops_per_iteration=0.001,
            arithmetic_intensity=10.0,
            schedule=OmpSchedule.DYNAMIC, chunk=1,
        )
        ex.run(0.2)
        assert done.fired

    def test_fewer_iterations_than_threads(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=8, node=0)
        done = omp.parallel_for(
            "loop", iterations=3, flops_per_iteration=0.001,
            arithmetic_intensity=10.0,
        )
        ex.run_until_idle()
        assert done.fired


class TestTiedTasks:
    def test_tied_task_runs_on_its_thread(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=4, node=0)
        task = omp.submit_tied_task("tied", 0.01, 10.0, thread_index=2)
        ex.run_until_idle()
        assert task.worker_name == omp._threads[2].name

    def test_invalid_thread_index(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=2)
        with pytest.raises(RuntimeSystemError):
            omp.submit_tied_task("t", 1.0, 1.0, thread_index=5)


class TestThreadControl:
    def test_blocks_only_free_threads(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=4, node=0)
        omp.submit_tied_task("tied", 0.5, 10.0, thread_index=0)
        blocked = omp.set_total_threads(1)
        # thread 0 holds tied work and must not be blocked
        assert omp._threads[0].name not in blocked
        assert len(blocked) == 3

    def test_partial_honouring_reported(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=2, node=0)
        for i in range(2):
            omp.submit_tied_task(f"tied{i}", 0.1, 10.0, thread_index=i)
        blocked = omp.set_total_threads(0)
        assert blocked == []  # nothing could be blocked

    def test_unblock(self, ex):
        from repro.sim.cpu import ThreadState

        omp = OpenMpRuntime("omp", ex, num_threads=4, node=0)
        omp.set_total_threads(1)
        assert (
            sum(
                1
                for t in omp._threads
                if t.state is ThreadState.RUNNABLE
            )
            == 1
        )
        omp.set_total_threads(4)
        assert all(
            t.state is ThreadState.RUNNABLE for t in omp._threads
        )

    def test_out_of_range(self, ex):
        omp = OpenMpRuntime("omp", ex, num_threads=2)
        with pytest.raises(RuntimeSystemError):
            omp.set_total_threads(3)
