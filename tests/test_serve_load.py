"""The open-loop load harness: seeded arrival processes, percentile
math, DES compatibility of the schedules, and a real (small) run
through the live gateway."""

import asyncio
import json

import pytest

from repro.errors import ServiceError
from repro.serve import LOAD_SCENARIOS, LoadScenario, run_load
from repro.serve.gateway import TokenBucket
from repro.serve.load import (
    diurnal_arrivals,
    percentile,
    poisson_arrivals,
)
from repro.sim import Simulator


class TestArrivalProcesses:
    def test_poisson_is_deterministic_in_seed(self):
        a = poisson_arrivals(rate=200.0, duration=2.0, seed=42)
        b = poisson_arrivals(rate=200.0, duration=2.0, seed=42)
        assert a == b
        assert a != poisson_arrivals(rate=200.0, duration=2.0, seed=43)

    def test_poisson_rate_and_range(self):
        times = poisson_arrivals(rate=500.0, duration=4.0, seed=0)
        assert all(0 <= t < 4.0 for t in times)
        assert times == tuple(sorted(times))
        # ~2000 expected; 5 sigma is ~±224.
        assert 1700 < len(times) < 2300

    def test_poisson_validation(self):
        with pytest.raises(ServiceError):
            poisson_arrivals(rate=0.0, duration=1.0, seed=0)
        with pytest.raises(ServiceError):
            poisson_arrivals(rate=1.0, duration=0.0, seed=0)

    def test_diurnal_is_deterministic_and_sorted(self):
        a = diurnal_arrivals(
            base_rate=20.0, peak_rate=100.0, period=1.0,
            duration=3.0, seed=7,
        )
        assert a == diurnal_arrivals(
            base_rate=20.0, peak_rate=100.0, period=1.0,
            duration=3.0, seed=7,
        )
        assert a == tuple(sorted(a))
        assert all(0 <= t < 3.0 for t in a)

    def test_diurnal_modulates_the_rate(self):
        # Rate is base at the period boundaries and peak mid-period, so
        # the middle half of each period must collect more arrivals.
        times = diurnal_arrivals(
            base_rate=10.0, peak_rate=200.0, period=2.0,
            duration=20.0, seed=3,
        )
        crest = sum(1 for t in times if 0.5 <= (t % 2.0) < 1.5)
        trough = len(times) - crest
        assert crest > 2 * trough

    def test_diurnal_mean_rate_between_base_and_peak(self):
        times = diurnal_arrivals(
            base_rate=50.0, peak_rate=150.0, period=1.0,
            duration=10.0, seed=11,
        )
        # Mean of the sinusoid is (base+peak)/2 = 100/s over whole
        # periods; 5 sigma on 1000 is ~±158.
        assert 840 < len(times) < 1160

    def test_diurnal_validation(self):
        with pytest.raises(ServiceError):
            diurnal_arrivals(
                base_rate=0.0, peak_rate=1.0, period=1.0,
                duration=1.0, seed=0,
            )
        with pytest.raises(ServiceError):
            diurnal_arrivals(
                base_rate=2.0, peak_rate=1.0, period=1.0,
                duration=1.0, seed=0,
            )


class TestPercentile:
    def test_interpolation(self):
        xs = [10.0, 20.0, 30.0, 40.0]
        assert percentile(xs, 0) == 10.0
        assert percentile(xs, 50) == 25.0
        assert percentile(xs, 100) == 40.0
        assert percentile(xs, 75) == pytest.approx(32.5)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_validation(self):
        with pytest.raises(ServiceError):
            percentile([], 50)
        with pytest.raises(ServiceError):
            percentile([1.0], 101)


class TestDesCompatibility:
    def test_schedule_drives_a_sim_clocked_token_bucket(self):
        """An arrival schedule + a sim-clocked bucket is deterministic.

        This is the DES form of the gateway's admission decision: the
        same pure schedule and the same bucket knobs produce the same
        accept/shed pattern on simulation time, with no event loop.
        """

        def run_once() -> list[bool]:
            sim = Simulator()
            bucket = TokenBucket(
                rate=50.0, burst=10, clock=lambda: sim.now
            )
            decisions: list[bool] = []
            for offset in poisson_arrivals(
                rate=200.0, duration=1.0, seed=5
            ):
                sim.schedule_at(
                    offset,
                    lambda: decisions.append(bucket.try_acquire()),
                )
            sim.run()
            return decisions

        first = run_once()
        assert first == run_once()
        # 200/s offered against a 50/s bucket: most are shed, the
        # 10-token burst plus refills are admitted.
        assert 30 < sum(first) < 90
        assert sum(first) < len(first) / 2


class TestScenarioLibrary:
    def test_ci_preset_exists(self):
        assert "open-loop-small" in LOAD_SCENARIOS
        assert "open-loop-large" in LOAD_SCENARIOS

    def test_every_scenario_generates_arrivals_and_configs(self):
        for scenario in LOAD_SCENARIOS.values():
            times = scenario.arrival_times(seed=0)
            assert times, scenario.name
            scenario.service_config()
            scenario.gateway_config(http=False)

    def test_large_preset_is_tens_of_thousands(self):
        big = LOAD_SCENARIOS["open-loop-large"]
        assert len(big.arrival_times(seed=0)) > 20_000

    def test_scenario_validation(self):
        with pytest.raises(ServiceError):
            LoadScenario(
                name="x", description="", arrival="uniform",
                rate=1.0, duration=1.0,
                reports_per_session=1, report_interval=0.1,
            )
        with pytest.raises(ServiceError):
            LoadScenario(
                name="x", description="", arrival="diurnal",
                rate=1.0, duration=1.0,
                reports_per_session=1, report_interval=0.1,
            )


TINY = LoadScenario(
    name="tiny",
    description="test-only: a handful of sessions",
    arrival="poisson",
    rate=40.0,
    duration=0.5,
    reports_per_session=1,
    report_interval=0.02,
    max_sessions=4,
    bucket_rate=2000.0,
    bucket_burst=200,
    slo_p99_ms=2000.0,
    min_admitted=1,
)


class TestRunLoad:
    def test_unknown_scenario_and_transport_rejected(self):
        with pytest.raises(ServiceError):
            run_load("no-such-scenario")
        with pytest.raises(ServiceError):
            run_load("open-loop-small", transport="carrier-pigeon")

    def test_tiny_run_reports_latency_and_sheds(self, monkeypatch):
        monkeypatch.setitem(LOAD_SCENARIOS, "tiny", TINY)
        report = run_load("tiny", seed=1)
        data = report.to_dict()
        assert data["schema"] == "repro-serve-bench/1"
        assert data["scenario"] == "tiny"
        for key in ("p50", "p95", "p99", "max", "mean", "count"):
            assert key in data["latency_ms"]
        assert data["latency_ms"]["count"] > 0
        assert (
            data["latency_ms"]["p50"]
            <= data["latency_ms"]["p95"]
            <= data["latency_ms"]["p99"]
            <= data["latency_ms"]["max"]
        )
        assert data["sessions"]["admitted"] >= 1
        assert (
            data["sessions"]["admitted"]
            + data["sessions"]["turned_away"]
            <= data["sessions"]["target"]
        )
        for key in (
            "gateway",
            "rate_limited",
            "queue_full",
            "service",
            "client_observed",
        ):
            assert key in data["shed"]
        assert data["service"]["reoptimizations"] >= 1
        assert data["service"]["coalescing"] >= 1.0
        # JSON round-trip and the human table both render.
        assert json.loads(report.to_json()) == data
        assert "sessions" in report.format()
        assert report.passed

    def test_gate_override_fails_an_impossible_slo(self, monkeypatch):
        monkeypatch.setitem(LOAD_SCENARIOS, "tiny", TINY)
        report = run_load("tiny", seed=1, max_p99_ms=0.000001)
        assert not report.passed
