"""Unit tests for scaling curves and the marginal-utility allocator."""

import pytest

from repro.core.scaling import (
    AmdahlScaling,
    LinearScaling,
    RooflineNodeScaling,
    marginal_utility_allocation,
    measured_curve,
)
from repro.core.spec import AppSpec
from repro.errors import ConfigurationError, ModelError
from repro.machine import model_machine


class TestLinear:
    def test_throughput(self):
        c = LinearScaling(per_thread=2.0)
        assert c.throughput(4) == 8.0
        assert c.efficiency(7) == pytest.approx(1.0)
        assert not c.is_sublinear(16)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinearScaling(per_thread=0.0)
        with pytest.raises(ModelError):
            LinearScaling(per_thread=1.0).throughput(-1)


class TestAmdahl:
    def test_limits(self):
        c = AmdahlScaling(peak_single=1.0, serial_fraction=0.1)
        assert c.throughput(1) == pytest.approx(1.0)
        # speedup approaches 1/serial_fraction
        assert c.speedup(10**6) == pytest.approx(10.0, rel=0.01)
        assert c.is_sublinear(4)

    def test_zero_serial_is_linear(self):
        c = AmdahlScaling(peak_single=2.0, serial_fraction=0.0)
        assert c.throughput(8) == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AmdahlScaling(peak_single=1.0, serial_fraction=1.5)


class TestRooflineNode:
    def test_paper_memory_bound_curve(self):
        # AI=0.5, 10 GFLOPS/thread, 32 GB/s: saturates at 1.6 threads.
        c = RooflineNodeScaling(
            per_thread_peak=10.0,
            node_bandwidth=32.0,
            arithmetic_intensity=0.5,
        )
        assert c.saturation_threads == pytest.approx(1.6)
        assert c.throughput(1) == pytest.approx(10.0)
        assert c.throughput(2) == pytest.approx(16.0)
        assert c.throughput(8) == pytest.approx(16.0)  # flat
        assert c.marginal(2) == pytest.approx(6.0)
        assert c.marginal(3) == pytest.approx(0.0)
        assert c.is_sublinear(8)

    def test_compute_bound_never_saturates(self):
        c = RooflineNodeScaling(
            per_thread_peak=10.0,
            node_bandwidth=32.0,
            arithmetic_intensity=10.0,
        )
        assert c.throughput(8) == pytest.approx(80.0)
        assert not c.is_sublinear(8)

    def test_for_app(self):
        c = RooflineNodeScaling.for_app(
            model_machine(), AppSpec.memory_bound("m", 0.5)
        )
        assert c.node_bandwidth == 32.0
        assert c.per_thread_peak == 10.0


class TestMeasuredCurve:
    def test_holds_flat_beyond_samples(self):
        c = measured_curve([0.0, 5.0, 9.0, 12.0])
        assert c.throughput(3) == 12.0
        assert c.throughput(10) == 12.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            measured_curve([0.0])
        with pytest.raises(ConfigurationError):
            measured_curve([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            measured_curve([0.0, 5.0, 4.0])


class TestMarginalUtilityAllocation:
    def test_recovers_paper_uneven_split(self):
        """Per NUMA node: 3 memory-bound + 1 compute-bound on 8 cores
        should land on the paper's (1,1,1,5)."""
        mem = RooflineNodeScaling(
            per_thread_peak=10.0,
            node_bandwidth=32.0 / 3,  # each app's fair bandwidth slice
            arithmetic_intensity=0.5,
        )
        comp = LinearScaling(per_thread=10.0)
        alloc = marginal_utility_allocation(
            {"mem0": mem, "mem1": mem, "mem2": mem, "comp": comp},
            total_cores=8,
            min_threads=1,
        )
        assert alloc["comp"] == 5
        assert alloc["mem0"] == 1

    def test_stops_when_no_gain(self):
        flat = measured_curve([0.0, 10.0, 10.0])
        alloc = marginal_utility_allocation({"a": flat}, total_cores=8)
        assert alloc["a"] == 1  # a second core adds nothing

    def test_weights_shift_allocation(self):
        a = LinearScaling(per_thread=1.0)
        b = LinearScaling(per_thread=1.0)
        alloc = marginal_utility_allocation(
            {"a": a, "b": b}, total_cores=4, weights={"a": 10.0}
        )
        assert alloc["a"] == 4
        assert alloc["b"] == 0

    def test_min_threads_floor(self):
        a = LinearScaling(per_thread=100.0)
        b = LinearScaling(per_thread=1.0)
        alloc = marginal_utility_allocation(
            {"a": a, "b": b}, total_cores=4, min_threads=1
        )
        assert alloc["b"] == 1
        assert alloc["a"] == 3

    def test_deterministic_tie_break(self):
        a = LinearScaling(per_thread=1.0)
        alloc = marginal_utility_allocation(
            {"z": a, "a": a}, total_cores=3
        )
        # ties always go to the alphabetically first name (linear curves
        # never change their marginal, so 'a' takes every core) — use
        # min_threads to prevent starvation when that matters
        assert alloc["a"] == 3
        assert alloc["z"] == 0
        fair = marginal_utility_allocation(
            {"z": a, "a": a}, total_cores=3, min_threads=1
        )
        assert fair == {"a": 2, "z": 1}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            marginal_utility_allocation({}, total_cores=4)
        with pytest.raises(ConfigurationError):
            marginal_utility_allocation(
                {"a": LinearScaling(1.0)}, total_cores=0, min_threads=1
            )
