"""Deterministic discrete-event simulation engine.

A minimal but complete DES core: events are ``(time, priority, seq)``
ordered callbacks on a binary heap.  Determinism matters — every experiment
in the reproduction must give bit-identical results across runs — so ties
in time are broken first by an explicit priority and then by scheduling
order (``seq``), never by hash order or object identity.

Time is a float in **seconds**.  All higher layers (the execution
simulator's slice ticks, agent sampling timers, message deliveries in the
distributed layer) are driven through this one event loop.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs import OBS, CounterHandle

__all__ = ["EventHandle", "Simulator"]

# Hoisted out of the event loop (PERF001): one registry resolution, not
# one per event.
_EVENTS = CounterHandle("sim/events")


@dataclass(order=True)
class _Entry:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


@dataclass(frozen=True)
class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Keep it to :meth:`Simulator.cancel` the event later; a cancelled event
    silently does nothing when its time comes.
    """

    _entry: _Entry

    @property
    def time(self) -> float:
        """Scheduled firing time (seconds)."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        """True once the event has been cancelled."""
        return self._entry.cancelled


class Simulator:
    """The event loop.

    Example
    -------
    >>> sim = Simulator()
    >>> order = []
    >>> _ = sim.schedule(2.0, lambda: order.append("b"))
    >>> _ = sim.schedule(1.0, lambda: order.append("a"))
    >>> sim.run()
    >>> order
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``priority`` breaks ties among events at the same instant (lower
        fires first); equal priorities fire in scheduling order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        entry = _Entry(
            time=self._now + delay,
            priority=priority,
            seq=next(self._seq),
            callback=callback,
        )
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        return self.schedule(time - self._now, callback, priority=priority)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event; cancelling twice is a no-op."""
        handle._entry.cancelled = True

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False when queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            if entry.time < self._now - 1e-12:
                raise SimulationError(
                    f"event at {entry.time} fired after clock reached "
                    f"{self._now}"
                )
            self._now = max(self._now, entry.time)
            self._processed += 1
            if OBS.enabled:
                _EVENTS.add()
            entry.callback()
            return True
        return False

    def run(self, *, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        executed = 0
        try:
            while self.step():
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        return executed

    def run_until(self, time: float, *, max_events: int | None = None) -> int:
        """Run events with firing time <= ``time``; advance clock to it.

        Returns the number of events executed by this call.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot run backwards: now={self._now}, target={time}"
            )
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if nxt.time > time + 1e-12:
                    break
                if self.step():
                    executed += 1
                    if max_events is not None and executed >= max_events:
                        self._running = False
                        return executed
            self._now = max(self._now, time)
        finally:
            self._running = False
        return executed
