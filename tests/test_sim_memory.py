"""Unit tests for the dynamic bandwidth resolver."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machine import MachineTopology
from repro.sim.memory import BandwidthRequest, BandwidthResolver


def machine(nodes=2, cores=4, bw=32.0, link=8.0):
    return MachineTopology.homogeneous(
        num_nodes=nodes,
        cores_per_node=cores,
        peak_gflops_per_core=10.0,
        local_bandwidth=bw,
        remote_bandwidth=link,
    )


class TestLocal:
    def test_undersubscribed_all_satisfied(self):
        r = BandwidthResolver(machine())
        grants = r.resolve(
            [
                BandwidthRequest(key="a", source_node=0, demands={0: 3.0}),
                BandwidthRequest(key="b", source_node=0, demands={0: 5.0}),
            ]
        )
        assert grants["a"].total == pytest.approx(3.0)
        assert grants["b"].total == pytest.approx(5.0)

    def test_saturated_node_shares(self):
        r = BandwidthResolver(machine())
        reqs = [
            BandwidthRequest(key=i, source_node=0, demands={0: 20.0})
            for i in range(4)
        ]
        grants = r.resolve(reqs)
        total = sum(g.total for g in grants.values())
        assert total == pytest.approx(32.0)
        assert all(g.total == pytest.approx(8.0) for g in grants.values())

    def test_oversubscribed_node_capped_proportionally(self):
        # 8 requests on a 4-core node: baseline rule cannot apply.
        r = BandwidthResolver(machine())
        reqs = [
            BandwidthRequest(key=i, source_node=0, demands={0: 10.0})
            for i in range(8)
        ]
        grants = r.resolve(reqs)
        total = sum(g.total for g in grants.values())
        assert total == pytest.approx(32.0)
        assert all(g.total == pytest.approx(4.0) for g in grants.values())


class TestRemote:
    def test_link_cap(self):
        r = BandwidthResolver(machine(link=8.0))
        grants = r.resolve(
            [
                BandwidthRequest(
                    key="x", source_node=1, demands={0: 100.0}
                )
            ]
        )
        assert grants["x"].total == pytest.approx(8.0)

    def test_remote_priority_over_local(self):
        r = BandwidthResolver(machine(bw=10.0, link=6.0))
        grants = r.resolve(
            [
                BandwidthRequest(key="rem", source_node=1, demands={0: 20.0}),
                BandwidthRequest(key="loc", source_node=0, demands={0: 20.0}),
            ]
        )
        assert grants["rem"].total == pytest.approx(6.0)
        assert grants["loc"].total == pytest.approx(4.0)

    def test_remote_flows_scaled_to_capacity(self):
        m = MachineTopology.homogeneous(
            num_nodes=4,
            cores_per_node=4,
            peak_gflops_per_core=10.0,
            local_bandwidth=9.0,
            remote_bandwidth=6.0,
        )
        r = BandwidthResolver(m)
        reqs = [
            BandwidthRequest(key=s, source_node=s, demands={0: 100.0})
            for s in (1, 2, 3)
        ]
        grants = r.resolve(reqs)
        total = sum(g.total for g in grants.values())
        assert total == pytest.approx(9.0)
        # equal demand -> equal scaled flows
        for g in grants.values():
            assert g.total == pytest.approx(3.0)

    def test_split_within_link_proportional_to_demand(self):
        r = BandwidthResolver(machine(link=6.0))
        grants = r.resolve(
            [
                BandwidthRequest(key="big", source_node=1, demands={0: 20.0}),
                BandwidthRequest(key="small", source_node=1, demands={0: 10.0}),
            ]
        )
        assert grants["big"].total == pytest.approx(4.0)
        assert grants["small"].total == pytest.approx(2.0)

    def test_grant_by_node_breakdown(self):
        r = BandwidthResolver(machine())
        grants = r.resolve(
            [
                BandwidthRequest(
                    key="i",
                    source_node=0,
                    demands={0: 2.0, 1: 3.0},
                )
            ]
        )
        assert grants["i"].by_node[0] == pytest.approx(2.0)
        assert grants["i"].by_node[1] == pytest.approx(3.0)


class TestValidation:
    def test_bad_source_node(self):
        r = BandwidthResolver(machine())
        with pytest.raises(SimulationError):
            r.resolve(
                [BandwidthRequest(key="x", source_node=9, demands={0: 1.0})]
            )

    def test_bad_memory_node(self):
        r = BandwidthResolver(machine())
        with pytest.raises(SimulationError):
            r.resolve(
                [BandwidthRequest(key="x", source_node=0, demands={9: 1.0})]
            )

    def test_negative_demand(self):
        r = BandwidthResolver(machine())
        with pytest.raises(SimulationError):
            r.resolve(
                [BandwidthRequest(key="x", source_node=0, demands={0: -1.0})]
            )

    def test_empty_requests_ok(self):
        assert BandwidthResolver(machine()).resolve([]) == {}
