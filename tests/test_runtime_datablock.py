"""Unit tests for datablocks."""

import pytest

from repro.errors import DatablockError
from repro.runtime.datablock import AccessMode, Datablock, traffic_fractions


class TestLifecycle:
    def test_basic(self):
        db = Datablock(1024, home_node=1, name="d")
        assert db.home_node == 1
        assert not db.freed
        db.acquire()
        assert db.acquired
        db.release()
        db.destroy()
        assert db.freed

    def test_invalid_construction(self):
        with pytest.raises(DatablockError):
            Datablock(0, 0)
        with pytest.raises(DatablockError):
            Datablock(10, -1)

    def test_acquire_after_free_rejected(self):
        db = Datablock(10, 0)
        db.destroy()
        with pytest.raises(DatablockError):
            db.acquire()

    def test_double_free_rejected(self):
        db = Datablock(10, 0)
        db.destroy()
        with pytest.raises(DatablockError):
            db.destroy()

    def test_destroy_while_acquired_rejected(self):
        db = Datablock(10, 0)
        db.acquire()
        with pytest.raises(DatablockError):
            db.destroy()

    def test_release_unacquired_rejected(self):
        db = Datablock(10, 0)
        with pytest.raises(DatablockError):
            db.release()

    def test_rw_exclusive(self):
        db = Datablock(10, 0)
        db.acquire(AccessMode.READ_ONLY)
        with pytest.raises(DatablockError):
            db.acquire(AccessMode.READ_WRITE)
        db.acquire(AccessMode.READ_ONLY)  # shared RO fine


class TestMigration:
    def test_migrate_between_tasks(self):
        db = Datablock(10, 0)
        db.migrate(2)
        assert db.home_node == 2
        assert db.migrations == 1

    def test_migrate_to_same_node_free(self):
        db = Datablock(10, 0)
        db.migrate(0)
        assert db.migrations == 0

    def test_migrate_while_acquired_rejected(self):
        db = Datablock(10, 0)
        db.acquire()
        with pytest.raises(DatablockError):
            db.migrate(1)

    def test_migrate_freed_rejected(self):
        db = Datablock(10, 0)
        db.destroy()
        with pytest.raises(DatablockError):
            db.migrate(1)


class TestTrafficFractions:
    def test_empty_is_none(self):
        assert traffic_fractions([]) is None

    def test_proportional_to_size(self):
        dbs = [Datablock(30, 0), Datablock(10, 1)]
        f = traffic_fractions(dbs)
        assert f[0] == pytest.approx(0.75)
        assert f[1] == pytest.approx(0.25)

    def test_same_node_aggregates(self):
        dbs = [Datablock(10, 0), Datablock(10, 0)]
        assert traffic_fractions(dbs) == {0: pytest.approx(1.0)}
