"""Process-wide metric primitives: counters, gauges, histograms, series.

This module generalises what used to live in :mod:`repro.sim.metrics`
(which remains as a compatibility shim).  Experiments and instrumented
hot paths need five things:

* :class:`Counter` — monotonically increasing event counts (tasks
  executed, model evaluations, agent commands);
* :class:`Gauge` — a value that moves both ways (best score so far,
  runnable threads, queue length);
* :class:`Histogram` — a distribution of observations (prediction
  latencies);
* :class:`TimeSeries` — timestamped gauge samples (bandwidth per slice);
* :class:`RateIntegrator` — a piecewise-constant rate integrated into a
  total (FLOPs from GFLOPS).

All of them store plain Python floats and convert to NumPy arrays only
on demand, so recording stays O(1) per sample.  The registries'
get-or-create paths are thread-safe (double-checked under a lock);
individual metric mutation relies on single-writer use or GIL-atomic
appends, which is all the instrumented call sites need.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

import numpy as np

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "RateIntegrator",
    "MetricSet",
    "MetricsRegistry",
]


@dataclass
class Counter:
    """A monotonically increasing event counter."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ObservabilityError(
                f"counter '{self.name}' cannot decrease (amount={amount})"
            )
        self.value += amount


@dataclass
class Gauge:
    """A value that can move in both directions (a level, not a count)."""

    name: str
    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)
        self.updates += 1

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.set(self.value - amount)


@dataclass
class Histogram:
    """A distribution of observed values (e.g. per-call latencies).

    Stores raw observations; summary statistics are computed on demand,
    so :meth:`record` stays a single list append.
    """

    name: str
    _values: list[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        """Add one observation."""
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self._values)

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return float(sum(self._values))

    @property
    def values(self) -> np.ndarray:
        """All observations as an array, in recording order."""
        return np.asarray(self._values)

    def min(self) -> float:
        """Smallest observation."""
        self._require_data("min")
        return float(np.min(self._values))

    def max(self) -> float:
        """Largest observation."""
        self._require_data("max")
        return float(np.max(self._values))

    def mean(self) -> float:
        """Arithmetic mean of the observations."""
        self._require_data("mean")
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100), linearly interpolated."""
        if not 0 <= q <= 100:
            raise ObservabilityError(
                f"histogram '{self.name}': percentile {q} outside [0, 100]"
            )
        self._require_data("percentile")
        return float(np.percentile(self._values, q))

    def summary(self) -> dict[str, float]:
        """count/sum/min/max/mean/p50/p99 as a flat dict."""
        if not self._values:
            return {"count": 0.0, "sum": 0.0}
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min(),
            "max": self.max(),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }

    def _require_data(self, what: str) -> None:
        if not self._values:
            raise ObservabilityError(
                f"histogram '{self.name}' is empty ({what} undefined)"
            )


@dataclass
class TimeSeries:
    """Timestamped samples of a gauge."""

    name: str
    _times: list[float] = field(default_factory=list)
    _values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Append one sample; times must be non-decreasing."""
        if self._times and time < self._times[-1] - 1e-12:
            raise ObservabilityError(
                f"time series '{self.name}': sample at {time} after "
                f"{self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps as an array."""
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._values)

    @property
    def last(self) -> float:
        """Most recent value."""
        if not self._values:
            raise ObservabilityError(f"time series '{self.name}' is empty")
        return self._values[-1]

    def mean(self) -> float:
        """Time-weighted mean of the series (trapezoid-free: step-wise).

        Each sample's value is assumed to hold until the next sample.  The
        final sample gets zero weight (its holding interval is unknown), so
        a series needs at least two samples.
        """
        if len(self._times) < 2:
            raise ObservabilityError(
                f"time series '{self.name}' needs >= 2 samples for a mean"
            )
        t = self.times
        v = self.values
        dt = np.diff(t)
        span = t[-1] - t[0]
        if span <= 0:
            return float(v[:-1].mean())
        return float((v[:-1] * dt).sum() / span)

    def max(self) -> float:
        """Largest sample value."""
        if not self._values:
            raise ObservabilityError(f"time series '{self.name}' is empty")
        return float(np.max(self._values))


@dataclass
class RateIntegrator:
    """Integrates a piecewise-constant rate into a total.

    Used for FLOPs (integrate GFLOPS over seconds) and bytes moved
    (integrate GB/s).
    """

    name: str
    total: float = 0.0
    _last_time: float | None = None

    def accumulate(self, start: float, end: float, rate: float) -> None:
        """Add ``rate * (end - start)`` to the total."""
        if end < start:
            raise ObservabilityError(
                f"integrator '{self.name}': end {end} before start {start}"
            )
        if rate < 0:
            raise ObservabilityError(
                f"integrator '{self.name}': negative rate {rate}"
            )
        self.total += rate * (end - start)
        self._last_time = end

    def average_rate(self, duration: float) -> float:
        """Total divided by ``duration`` (e.g. achieved GFLOPS)."""
        if duration <= 0:
            raise ObservabilityError(
                f"integrator '{self.name}': non-positive duration {duration}"
            )
        return self.total / duration


_M = TypeVar("_M")


class MetricSet:
    """A named registry of metrics, auto-creating on first use.

    Creation is thread-safe: concurrent first requests for the same name
    resolve to one shared object.  The fast path (the metric already
    exists) is a single dict lookup, so per-slice recording in the
    simulator stays cheap.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, TimeSeries] = {}
        self._integrators: dict[str, RateIntegrator] = {}

    def _get_or_make(
        self, table: dict[str, _M], name: str, factory: Callable[[str], _M]
    ) -> _M:
        obj = table.get(name)
        if obj is None:
            with self._lock:
                obj = table.get(name)
                if obj is None:
                    obj = factory(name)
                    table[name] = obj
        return obj

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_make(self._counters, name, Counter)

    def series(self, name: str) -> TimeSeries:
        """Get or create the time series ``name``."""
        return self._get_or_make(self._series, name, TimeSeries)

    def integrator(self, name: str) -> RateIntegrator:
        """Get or create the rate integrator ``name``."""
        return self._get_or_make(self._integrators, name, RateIntegrator)

    def counters(self) -> Iterator[Counter]:
        """All counters, in creation order."""
        return iter(self._counters.values())

    def snapshot(self) -> dict[str, float]:
        """Flat dict of counter values and integrator totals."""
        out: dict[str, float] = {}
        for c in self._counters.values():
            out[f"counter/{c.name}"] = c.value
        for i in self._integrators.values():
            out[f"total/{i.name}"] = i.total
        return out


class MetricsRegistry(MetricSet):
    """The full metric registry: counters, gauges, histograms, series.

    One process-wide instance backs the instrumented hot paths (see
    :data:`repro.obs.OBS`); the execution simulator keeps a private one
    per machine instance.  Extends :class:`MetricSet` — everything that
    accepted a ``MetricSet`` accepts a registry.
    """

    def __init__(self) -> None:
        super().__init__()
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_make(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_make(self._histograms, name, Histogram)

    def gauges(self) -> Iterator[Gauge]:
        """All gauges, in creation order."""
        return iter(self._gauges.values())

    def histograms(self) -> Iterator[Histogram]:
        """All histograms, in creation order."""
        return iter(self._histograms.values())

    def snapshot(self) -> dict[str, float]:
        """Flat dict of every metric's current value(s).

        Keys follow the exporter convention: ``counter/<name>``,
        ``total/<name>`` (integrators), ``gauge/<name>`` and
        ``hist/<name>/<stat>``.
        """
        out = super().snapshot()
        for g in self._gauges.values():
            out[f"gauge/{g.name}"] = g.value
        for h in self._histograms.values():
            for stat, value in h.summary().items():
                out[f"hist/{h.name}/{stat}"] = value
        return out

    def clear(self) -> None:
        """Drop every metric (a fresh registry without rebinding it)."""
        with self._lock:
            self._counters.clear()
            self._series.clear()
            self._integrators.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._series)
            + len(self._integrators)
            + len(self._gauges)
            + len(self._histograms)
        )
