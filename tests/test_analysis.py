"""Tests for the analysis helpers and experiment drivers."""

import pytest

from repro.analysis import (
    render_table,
    run_calibration,
    run_distributed,
    run_library_shift,
    run_oversubscription,
    run_sublinear,
    sweep,
)
from repro.errors import ConfigurationError


class TestRenderTable:
    def test_basic(self):
        text = render_table(
            ["name", "value"],
            [["a", 1.234], ["bb", 10]],
            title="T",
        )
        assert "T" in text
        assert "1.23" in text
        assert "bb" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text


class TestSweep:
    def test_cartesian(self):
        records = sweep(
            lambda x, y: x * y, {"x": [1, 2], "y": [10, 20]}
        )
        assert len(records) == 4
        assert records[0].params == {"x": 1, "y": 10}
        assert records[-1].result == 40

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep(lambda: None, {})
        with pytest.raises(ConfigurationError):
            sweep(lambda x: None, {"x": []})


class TestSectionIIClaims:
    def test_oversubscription_gain_is_a_few_percent(self):
        res = run_oversubscription(duration=0.2)
        # The paper: "only marginal (a few percent) improvement".
        assert 0.0 < res.improvement < 0.10

    def test_sublinear_reallocation_wins_big(self):
        res = run_sublinear()
        assert res.fair_gflops == pytest.approx(140.0)
        assert res.optimal_gflops == pytest.approx(254.0)
        assert res.speedup == pytest.approx(254.0 / 140.0)
        # The optimum found by search IS the paper's uneven allocation.
        assert res.optimal_allocation.threads_of("comp").tolist() == [
            5, 5, 5, 5,
        ]


class TestLibraryScenario:
    def test_dynamic_beats_static(self):
        res = run_library_shift(phases=6)
        assert res.dynamic_shift_time < res.static_split_time
        assert res.dynamic_shift_time < res.static_generous_time
        assert res.speedup > 1.05


class TestDistributed:
    def test_section5_shape(self):
        res = run_distributed(num_ranks=8, iterations=20)
        dyn_bag = res.makespan("dynamic", "taskbag")
        split_bag = res.makespan("static-split", "taskbag")
        dyn_bar = res.makespan("dynamic", "barrier")
        split_bar = res.makespan("static-split", "barrier")
        # Loose sync: dynamic clearly wins.
        assert dyn_bag < split_bag
        # Barrier sync keeps most of the gain away.
        assert (split_bag / dyn_bag) > (split_bar / dyn_bar)


class TestCalibrationExperiment:
    def test_recovers_parameters_within_two_percent(self):
        res = run_calibration(duration=0.3)
        assert res.peak_error < 0.02
        assert res.bandwidth_error < 0.02


class TestFairness:
    def test_jain_bounds(self):
        from repro.analysis.fairness import jain_index

        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert jain_index([0.0, 0.0]) == 1.0
        with pytest.raises(ConfigurationError):
            jain_index([])
        with pytest.raises(ConfigurationError):
            jain_index([-1.0])

    def test_proportional_fairness(self):
        import math

        from repro.analysis.fairness import proportional_fairness

        assert proportional_fairness([1.0, 1.0]) == pytest.approx(0.0)
        assert proportional_fairness([math.e, 1.0]) == pytest.approx(1.0)
        assert proportional_fairness([1.0, 0.0]) == float("-inf")

    def test_evaluate_prediction_tradeoff(self):
        """The throughput optimum of the paper workload is maximally
        unfair; the fair share is maximally fair; the paper's uneven
        allocation sits between — the exact trade-off Section II asks
        the arbiter to navigate."""
        from repro.analysis.fairness import evaluate_prediction
        from repro.core import (
            AppSpec,
            NumaPerformanceModel,
            ThreadAllocation,
        )
        from repro.machine import model_machine

        machine = model_machine()
        apps = [
            AppSpec.memory_bound("mem0", 0.5),
            AppSpec.memory_bound("mem1", 0.5),
            AppSpec.memory_bound("mem2", 0.5),
            AppSpec.compute_bound("comp", 10.0),
        ]
        names = [a.name for a in apps]
        model = NumaPerformanceModel()

        def report(tpn):
            alloc = ThreadAllocation.uniform(names, 4, tpn)
            return evaluate_prediction(
                machine, model.predict(machine, apps, alloc)
            )

        greedy = report([0, 0, 0, 8])
        uneven = report([1, 1, 1, 5])
        even = report([2, 2, 2, 2])
        assert greedy.total_gflops > uneven.total_gflops > even.total_gflops
        assert greedy.jain < uneven.jain < even.jain
        assert greedy.nash_welfare == float("-inf")
        assert uneven.nash_welfare > float("-inf")
        assert even.min_app_gflops == pytest.approx(20.0)
        assert 0 < uneven.compute_utilization < 1
        assert 0 < uneven.bandwidth_utilization <= 1
