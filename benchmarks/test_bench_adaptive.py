"""Adaptive (observation-only) agent vs static and model-guided.

The paper's agent only receives execution information from the runtimes;
it never knows arithmetic intensities.  This benchmark shows a feedback
hill climber recovering nearly all of the spec-aware (model-guided)
agent's gain over static fair share.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_adaptive_agent


def test_bench_adaptive_agent(benchmark):
    res = benchmark.pedantic(
        run_adaptive_agent, kwargs={"duration": 0.5}, rounds=1,
        iterations=1,
    )
    emit(
        "Observation-only adaptive agent (mem + comp mix)",
        render_table(
            ["policy", "GFLOPS"],
            [
                ["static fair share", res.static_gflops],
                ["adaptive (no specs)", res.adaptive_gflops],
                ["model-guided (oracle)", res.model_guided_gflops],
            ],
        )
        + f"\nmoves kept/reverted: {res.moves_kept}/{res.moves_reverted}"
        f"\nfinal split: {res.adaptive_final_split}",
    )
    assert res.adaptive_vs_static > 1.3
    assert res.adaptive_vs_oracle > 0.9
