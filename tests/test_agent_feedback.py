"""Tests for the observation-driven FeedbackHillClimb strategy."""

import pytest

from repro.agent import Agent, FeedbackHillClimb, OcrVxEndpoint
from repro.agent.protocol import StatusReport
from repro.apps import SyntheticApp
from repro.core import AppSpec
from repro.errors import AgentError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


def report(name, *, load, active=(4, 4, 4, 4)):
    return StatusReport(
        runtime_name=name,
        time=0.0,
        tasks_executed=0,
        active_threads=sum(active),
        blocked_threads=0,
        active_per_node=tuple(active),
        workers_per_node=(8, 8, 8, 8),
        queue_length=10,
        cpu_load=load,
    )


class TestUnit:
    def test_needs_two_apps(self):
        with pytest.raises(AgentError):
            FeedbackHillClimb(["solo"])

    def test_first_round_even_split(self):
        s = FeedbackHillClimb(["a", "b"])
        out = s.decide(
            model_machine(),
            {"a": report("a", load=0.5), "b": report("b", load=0.5)},
        )
        assert out["a"][0].per_node == (4, 4, 4, 4)
        assert out["b"][0].per_node == (4, 4, 4, 4)

    def test_keeps_improving_move(self):
        s = FeedbackHillClimb(["a", "b"], improvement_threshold=0.0)
        m = model_machine()
        r = {"a": report("a", load=0.2), "b": report("b", load=0.2)}
        s.decide(m, r)  # round 0: even split
        s.decide(m, r)  # baseline measurement, proposes first move
        assert s._pending_move is not None
        # report a big improvement: the move is kept, same direction again
        better = {
            "a": report("a", load=0.9),
            "b": report("b", load=0.9),
        }
        s.decide(m, better)
        assert s.moves_kept == 1

    def test_reverts_bad_move(self):
        s = FeedbackHillClimb(["a", "b"])
        m = model_machine()
        r = {"a": report("a", load=0.5), "b": report("b", load=0.5)}
        s.decide(m, r)
        s.decide(m, r)
        before = {k: list(v) for k, v in s._split.items()}
        worse = {"a": report("a", load=0.1), "b": report("b", load=0.1)}
        s.decide(m, worse)
        assert s.moves_reverted == 1
        # a different move is now pending; the reverted one is undone
        total = [
            s._split["a"][n] + s._split["b"][n] for n in range(4)
        ]
        assert total == [8, 8, 8, 8]

    def test_converges_after_full_scan(self):
        s = FeedbackHillClimb(["a", "b"])
        m = model_machine()
        r = {"a": report("a", load=0.5), "b": report("b", load=0.5)}
        s.decide(m, r)
        for _ in range(10):
            s.decide(m, r)  # flat score: every move reverts
            if s.converged:
                break
        assert s.converged
        assert s.decide(m, r) == {}


class TestEndToEnd:
    def test_beats_static_fair_share(self):
        def run(adaptive):
            machine = model_machine()
            ex = ExecutionSimulator(machine)
            specs = [
                AppSpec.memory_bound("mem", 0.5),
                AppSpec.compute_bound("comp", 10.0),
            ]
            runtimes = []
            for spec in specs:
                rt = OCRVxRuntime(spec.name, ex)
                rt.start()
                if not adaptive:
                    rt.set_allocation([4, 4, 4, 4])
                SyntheticApp(rt, spec, task_flops=0.02).submit_stream(
                    10**9
                )
                runtimes.append(rt)
            strat = None
            if adaptive:
                strat = FeedbackHillClimb(["mem", "comp"])
                agent = Agent(ex, strat, period=0.01)
                for rt in runtimes:
                    agent.register(OcrVxEndpoint(rt))
                agent.start()
            ex.run(0.6)
            return ex.total_gflops(0.6), strat

        static, _ = run(False)
        adaptive, strat = run(True)
        assert adaptive > static * 1.3
        assert strat.converged
        # it found the (1-per-node mem, 7-per-node comp) shape without
        # knowing any arithmetic intensity
        assert strat._split["comp"][0] >= 6
