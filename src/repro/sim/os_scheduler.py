"""OS-level CPU scheduling for the execution simulator.

The paper leans on two empirical observations about the Linux scheduler:

* *without* over-subscription, threads "mostly run uninterrupted on the
  core they have first been assigned" — so threads and cores can be
  identified (Section III);
* *with* over-subscription, the OS "constantly switch[es] between threads
  of the different applications, leading to extra overhead and also
  decreasing cache efficiency" — yet in the authors' experiments this cost
  only a few percent (Section II).

:class:`CfsScheduler` reproduces both regimes with a fluid approximation of
CFS: each slice, every runnable thread receives a CPU *share* in ``[0, 1]``
computed by fair division of core capacity within its affinity domain, and
threads whose share is below 1 pay a configurable context-switch/cache
efficiency penalty.  The approximation is deterministic (no run queues to
get out of sync) and exact in the two regimes the experiments exercise:
no over-subscription (share 1, no penalty) and homogeneous node- or
machine-level over-subscription (share ``cores/threads``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SchedulerError
from repro.machine.topology import MachineTopology
from repro.sim.cpu import BindingKind, SimThread, ThreadState

__all__ = ["CpuAssignment", "CfsScheduler"]


@dataclass(frozen=True, slots=True)
class CpuAssignment:
    """CPU time granted to one thread for one slice.

    Attributes
    ----------
    node:
        NUMA node the thread executes on this slice (fixes which memory
        is "local" to it).
    share:
        Fraction of one core's time the thread receives, in ``(0, 1]``.
    efficiency:
        Multiplier on useful work (1 minus switching/cache losses).
    """

    node: int
    share: float
    efficiency: float

    @property
    def effective(self) -> float:
        """share * efficiency: scaling on the thread's peak GFLOPS."""
        return self.share * self.efficiency


class CfsScheduler:
    """Fluid CFS-like scheduler.

    Parameters
    ----------
    context_switch_penalty:
        Fractional efficiency loss applied to a thread whose CPU share is
        below 1 (it gets preempted within the slice).  The paper's
        observation that over-subscription costs "only marginal (a few
        percent)" corresponds to values around 0.02-0.05.
    migration_penalty:
        Additional loss applied to unbound threads, which the OS may move
        across nodes (cold caches).  Zero by default.
    """

    def __init__(
        self,
        *,
        context_switch_penalty: float = 0.03,
        migration_penalty: float = 0.0,
    ) -> None:
        if not 0 <= context_switch_penalty < 1:
            raise SchedulerError(
                f"context_switch_penalty must be in [0,1), got "
                f"{context_switch_penalty}"
            )
        if not 0 <= migration_penalty < 1:
            raise SchedulerError(
                f"migration_penalty must be in [0,1), got {migration_penalty}"
            )
        self.context_switch_penalty = context_switch_penalty
        self.migration_penalty = migration_penalty

    # ------------------------------------------------------------------
    def assign(
        self,
        machine: MachineTopology,
        threads: Sequence[SimThread],
    ) -> dict[int, CpuAssignment]:
        """Compute each runnable thread's CPU share for one slice.

        Returns a mapping from thread id to :class:`CpuAssignment`.
        Blocked and finished threads are skipped.
        """
        runnable = [t for t in threads if t.state is ThreadState.RUNNABLE]
        for t in runnable:
            t.binding.validate(machine)

        n_nodes = machine.num_nodes
        cores = np.array([n.num_cores for n in machine.nodes], dtype=float)

        # 1. Place unbound threads on the least-loaded node (ties go to the
        #    lowest node id, matching Linux's preference for low CPU ids
        #    at equal load).  Load is measured in threads per core.
        node_threads: list[list[SimThread]] = [[] for _ in range(n_nodes)]
        core_bound: dict[int, list[SimThread]] = {}
        for t in runnable:
            if t.binding.kind is BindingKind.CORE:
                core_bound.setdefault(t.binding.core, []).append(t)
            elif t.binding.kind is BindingKind.NODE:
                node_threads[t.binding.node].append(t)
        load = np.array(
            [
                len(node_threads[n])
                + sum(
                    len(ts)
                    for c, ts in core_bound.items()
                    if machine.core(c).node_id == n
                )
                for n in range(n_nodes)
            ],
            dtype=float,
        )
        unbound = [
            t for t in runnable if t.binding.kind is BindingKind.UNBOUND
        ]
        migrated: set[int] = set()
        for t in unbound:
            n = int(np.argmin(load / cores))
            node_threads[n].append(t)
            load[n] += 1
            migrated.add(t.tid)

        # 2. Per node: core-bound threads split their core (weighted);
        #    node threads share the remaining capacity in proportion to
        #    their CFS weights, water-filled so nobody exceeds one core.
        out: dict[int, CpuAssignment] = {}
        for n in range(n_nodes):
            node = machine.node(n)
            bound_here = {
                c: ts
                for c, ts in core_bound.items()
                if machine.core(c).node_id == n
            }
            reserved = 0.0
            for c, ts in bound_here.items():
                weights = np.array([t.weight for t in ts])
                shares = self._weighted_shares(1.0, weights)
                for t, share in zip(ts, shares):
                    out[t.tid] = CpuAssignment(
                        node=n,
                        share=float(share),
                        efficiency=self._efficiency(share, False),
                    )
                reserved += float(shares.sum())
            flexible = node_threads[n]
            if flexible:
                capacity = max(node.num_cores - reserved, 0.0)
                weights = np.array([t.weight for t in flexible])
                shares = self._weighted_shares(capacity, weights)
                if shares.sum() <= 0:
                    raise SchedulerError(
                        f"node {n}: no capacity left for {len(flexible)} "
                        f"node-bound threads"
                    )
                for t, share in zip(flexible, shares):
                    out[t.tid] = CpuAssignment(
                        node=n,
                        share=float(share),
                        efficiency=self._efficiency(
                            share, t.tid in migrated
                        ),
                    )
        return out

    @staticmethod
    def _weighted_shares(
        capacity: float, weights: np.ndarray
    ) -> np.ndarray:
        """CPU shares proportional to weights, each capped at one core.

        Water-filling: a thread whose proportional share exceeds a full
        core is pinned at 1.0 and the surplus is re-divided among the
        rest — CFS's behaviour for very high-priority threads.
        """
        if np.any(weights <= 0):
            raise SchedulerError("thread weights must be positive")
        n = len(weights)
        shares = np.zeros(n)
        remaining = min(capacity, float(n))
        open_mask = np.ones(n, dtype=bool)
        for _ in range(n):
            if remaining <= 1e-12 or not open_mask.any():
                break
            w = np.where(open_mask, weights, 0.0)
            prop = remaining * w / w.sum()
            capped = open_mask & (shares + prop >= 1.0 - 1e-12)
            if not capped.any():
                shares = shares + prop
                remaining = 0.0
                break
            gave = (1.0 - shares[capped]).sum()
            shares[capped] = 1.0
            open_mask &= ~capped
            remaining -= gave
        return shares

    def _efficiency(self, share: float, migratable: bool) -> float:
        eff = 1.0
        if share < 1.0 - 1e-12:
            eff *= 1.0 - self.context_switch_penalty
        if migratable:
            eff *= 1.0 - self.migration_penalty
        return eff
