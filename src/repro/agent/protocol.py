"""Messages exchanged between the agent and the runtime systems.

Figure 1 of the paper: each runtime *reports* execution information
("number of tasks executed, number of running threads, etc.") upward and
receives *commands* ("use a specified number of threads") downward.  The
message types here mirror that picture; :class:`RuntimeEndpoint` adapts an
:class:`~repro.runtime.runtime.OCRVxRuntime` to the protocol so the agent
never touches runtime internals (and other runtimes can join by providing
their own endpoint).
"""

from __future__ import annotations

import enum
import numbers
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.errors import ProtocolError
from repro.runtime.runtime import OCRVxRuntime

__all__ = [
    "CommandKind",
    "ThreadCommand",
    "StatusReport",
    "RuntimeEndpoint",
    "OcrVxEndpoint",
]


class CommandKind(enum.Enum):
    """The agent's command vocabulary (the paper's three options)."""

    SET_TOTAL_THREADS = "set-total-threads"  #: option 1
    BLOCK_WORKERS = "block-workers"  #: option 2
    UNBLOCK_WORKERS = "unblock-workers"  #: option 2
    SET_NODE_THREADS = "set-node-threads"  #: option 3 (one node)
    SET_ALLOCATION = "set-allocation"  #: option 3 (all nodes)


#: Which optional fields each command kind requires — the full field
#: combination contract, enforced at construction so a malformed command
#: fails where it was built, not deep inside an endpoint.
_REQUIRED_FIELDS: dict[CommandKind, tuple[str, ...]] = {
    CommandKind.SET_TOTAL_THREADS: ("total",),
    CommandKind.SET_NODE_THREADS: ("node", "count"),
    CommandKind.SET_ALLOCATION: ("per_node",),
    CommandKind.BLOCK_WORKERS: ("workers",),
    CommandKind.UNBLOCK_WORKERS: ("workers",),
}

_ALL_FIELDS = ("total", "node", "count", "per_node", "workers")


@dataclass(frozen=True, slots=True)
class ThreadCommand:
    """One command from the agent to one runtime.

    Field combinations are validated at construction: each
    :class:`CommandKind` has a fixed set of required fields (see
    ``_REQUIRED_FIELDS``), every other field must stay ``None``, and
    counts must be non-negative integers.  A ``SET_NODE_THREADS``
    without ``node``/``count`` therefore raises :class:`ProtocolError`
    immediately instead of failing deep in an endpoint.
    """

    kind: CommandKind
    total: int | None = None
    node: int | None = None
    count: int | None = None
    per_node: tuple[int, ...] | None = None
    workers: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        k = self.kind
        if not isinstance(k, CommandKind):
            raise ProtocolError(f"kind must be a CommandKind, got {k!r}")
        required = _REQUIRED_FIELDS[k]
        for name in required:
            if getattr(self, name) is None:
                raise ProtocolError(
                    f"{k.value} needs {', '.join(repr(r) for r in required)}"
                )
        for name in _ALL_FIELDS:
            if name not in required and getattr(self, name) is not None:
                raise ProtocolError(
                    f"{k.value} does not take '{name}' "
                    f"(it needs only "
                    f"{', '.join(repr(r) for r in required)})"
                )
        for name in ("total", "node", "count"):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(
                value, numbers.Integral
            ):
                raise ProtocolError(
                    f"{k.value}: '{name}' must be an int, got {value!r}"
                )
            if value < 0:
                raise ProtocolError(
                    f"{k.value}: '{name}' must be >= 0, got {value}"
                )
        if self.per_node is not None:
            if len(self.per_node) == 0:
                raise ProtocolError(
                    f"{k.value}: 'per_node' must not be empty"
                )
            for x in self.per_node:
                if isinstance(x, bool) or not isinstance(
                    x, numbers.Integral
                ):
                    raise ProtocolError(
                        f"{k.value}: per_node entries must be ints, "
                        f"got {x!r}"
                    )
                if x < 0:
                    raise ProtocolError(
                        f"{k.value}: per_node entries must be >= 0, "
                        f"got {x}"
                    )
        if self.workers is not None and len(self.workers) == 0:
            raise ProtocolError(f"{k.value}: 'workers' must not be empty")


@dataclass(frozen=True, slots=True)
class StatusReport:
    """One runtime's upward report.

    Attributes
    ----------
    runtime_name:
        Reporting runtime.
    time:
        Simulation time of the sample.
    tasks_executed:
        Cumulative tasks completed.
    active_threads / blocked_threads:
        Current worker states.
    active_per_node:
        Active workers per NUMA node.
    queue_length:
        Ready tasks waiting for a worker (a demand signal).
    progress:
        Application-defined counters (e.g. iterations produced/consumed).
    cpu_load:
        Achieved GFLOPS since the previous sample divided by the peak of
        the runtime's active threads — the "actual CPU load generated by
        the applications" that the paper's agent asks the OS about.
    """

    runtime_name: str
    time: float
    tasks_executed: int
    active_threads: int
    blocked_threads: int
    active_per_node: tuple[int, ...]
    workers_per_node: tuple[int, ...]
    queue_length: int
    progress: Mapping[str, float] = field(default_factory=dict)
    cpu_load: float = 0.0


class RuntimeEndpoint:
    """Protocol adapter interface: report status, apply commands."""

    name: str

    def report(self, time: float) -> StatusReport:  # pragma: no cover
        """Produce the runtime's current status."""
        raise NotImplementedError

    def apply(self, command: ThreadCommand) -> None:  # pragma: no cover
        """Execute an agent command."""
        raise NotImplementedError


class OcrVxEndpoint(RuntimeEndpoint):
    """Endpoint for :class:`~repro.runtime.runtime.OCRVxRuntime`."""

    def __init__(self, runtime: OCRVxRuntime) -> None:
        self.runtime = runtime
        self.name = runtime.name
        self._last_flops = 0.0
        self._last_time = 0.0

    def report(self, time: float) -> StatusReport:
        """Build a :class:`StatusReport` from the runtime's state."""
        rt = self.runtime
        flops = rt.executor.metrics.integrator(f"flops/{rt.name}").total
        dt = time - self._last_time
        load = 0.0
        if dt > 0 and rt.active_threads > 0:
            core_peak = rt.machine.nodes[0].cores[0].peak_gflops
            peak = core_peak * rt.active_threads
            load = (flops - self._last_flops) / dt / peak
        self._last_flops = flops
        self._last_time = time
        workers_per_node = [0] * rt.machine.num_nodes
        for w in rt.workers:
            if w.node is not None:
                workers_per_node[w.node] += 1
        return StatusReport(
            runtime_name=rt.name,
            time=time,
            tasks_executed=rt.stats.tasks_executed,
            active_threads=rt.active_threads,
            blocked_threads=rt.blocked_threads,
            active_per_node=tuple(rt.active_per_node()),
            workers_per_node=tuple(workers_per_node),
            queue_length=rt.queue_length,
            progress=dict(rt.stats.progress),
            cpu_load=load,
        )

    def apply(self, command: ThreadCommand) -> None:
        """Dispatch the command to the matching runtime operation."""
        rt = self.runtime
        k = command.kind
        if k is CommandKind.SET_TOTAL_THREADS:
            rt.set_total_threads(command.total)
        elif k is CommandKind.SET_NODE_THREADS:
            rt.set_node_threads(command.node, command.count)
        elif k is CommandKind.SET_ALLOCATION:
            rt.set_allocation(list(command.per_node))
        elif k is CommandKind.BLOCK_WORKERS:
            rt.block_workers(list(command.workers))
        elif k is CommandKind.UNBLOCK_WORKERS:
            rt.unblock_workers(list(command.workers))
        else:  # pragma: no cover - exhaustive
            raise ProtocolError(f"unknown command kind {k}")
