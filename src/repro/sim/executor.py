"""The execution simulator: advances threads through work in time slices.

This is the reproduction's stand-in for "real hardware" (Section III-B's
synthetic benchmark runs).  Each slice (default 1 ms):

1. every runnable thread without work asks its :class:`WorkProvider` for
   the next :class:`WorkSegment` (a task, in runtime terms);
2. the OS scheduler grants CPU shares within affinity domains
   (:mod:`repro.sim.os_scheduler`);
3. threads' memory demands — CPU-share-scaled roofline demands — are
   arbitrated by :class:`~repro.sim.memory.BandwidthResolver` under the
   same rules as the analytic model;
4. each thread progresses by ``min(peak, bandwidth * AI) * slice`` GFLOP
   and completed segments are reported back to the provider.

The slice quantisation and task granularity make measured throughput fall
slightly short of the analytic steady state, which is precisely the
relationship between the "model" and "real" columns of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.bwshare import RemainderRule
from repro.errors import SimulationError
from repro.machine.topology import MachineTopology
from repro.obs import OBS, CounterHandle, GaugeHandle
from repro.sim.cpu import Binding, SimThread, ThreadState
from repro.sim.engine import Simulator
from repro.sim.memory import BandwidthRequest, BandwidthResolver
from repro.obs.metrics import MetricSet
from repro.sim.os_scheduler import CfsScheduler
from repro.sim.trace import Tracer, TraceKind

__all__ = ["WorkSegment", "WorkProvider", "ExecutionSimulator"]

# Hoisted out of the per-tick path (PERF001): one registry resolution,
# not one per simulated time slice.
_TICKS = CounterHandle("sim/ticks")
_RUNNABLE_THREADS = GaugeHandle("sim/runnable_threads")


@dataclass(frozen=True, slots=True)
class WorkSegment:
    """A contiguous piece of work executed by one thread (a task body).

    Attributes
    ----------
    flops:
        Work volume in GFLOP (1e9 floating-point operations).
    arithmetic_intensity:
        FLOPs per byte; fixes the segment's bandwidth demand.
    data_home:
        NUMA node holding the segment's data; ``None`` means data local to
        whichever node the thread runs on (the NUMA-perfect case).
    data_fractions:
        Optional explicit split of traffic over nodes (fractions summing
        to 1), overriding ``data_home``; used for interleaved placement.
    cache_keys:
        Identifiers of the data this segment touches (datablock ids).
        With a :class:`~repro.sim.cache.CacheModel` installed, a segment
        whose keys are warm on its node demands less memory bandwidth.
    label:
        Free-form tag recorded in traces.
    """

    flops: float
    arithmetic_intensity: float
    data_home: int | None = None
    data_fractions: dict[int, float] | None = None
    cache_keys: tuple = ()
    label: str = ""

    def __post_init__(self) -> None:
        if self.flops <= 0:
            raise SimulationError(f"segment flops must be positive: {self}")
        if self.arithmetic_intensity <= 0:
            raise SimulationError(f"segment AI must be positive: {self}")
        if self.data_fractions is not None:
            total = sum(self.data_fractions.values())
            if abs(total - 1.0) > 1e-9:
                raise SimulationError(
                    f"data_fractions must sum to 1, got {total}"
                )
            if any(f < 0 for f in self.data_fractions.values()):
                raise SimulationError("data_fractions must be non-negative")


class WorkProvider(Protocol):
    """Source of work for one or more threads (implemented by runtimes)."""

    def next_segment(self, thread: SimThread) -> WorkSegment | None:
        """Return the thread's next segment, or None if it should idle."""
        ...

    def segment_finished(
        self, thread: SimThread, segment: WorkSegment
    ) -> None:
        """Called when the thread completes ``segment``."""
        ...


class ExecutionSimulator:
    """Slice-stepped machine execution on top of the DES engine.

    Parameters
    ----------
    machine:
        The NUMA machine to simulate.
    slice_seconds:
        Time-slice length; 1 ms by default.  Smaller slices approach the
        analytic fluid limit at proportional cost.
    scheduler:
        OS CPU scheduler; default :class:`CfsScheduler` with the paper's
        "few percent" over-subscription penalty.
    remainder_rule:
        Bandwidth remainder rule, forwarded to the resolver.
    simulator:
        Share an existing event engine (so agents and runtimes can
        schedule their own timers on the same clock); a fresh one is
        created by default.
    dvfs:
        Optional turbo-frequency model (:class:`~repro.sim.dvfs.DvfsModel`).
        The paper's model assumes no DVFS; pass one to relax assumption 2
        and measure the deviation.
    cache:
        Optional LLC warmth model (:class:`~repro.sim.cache.CacheModel`)
        for the Section II cache-reuse experiments.
    sample_bandwidth:
        Record per-node drawn bandwidth (GB/s) as time series
        ``bw/node<k>`` in :attr:`metrics` every slice.  Off by default —
        it appends one sample per node per slice.
    noise:
        Relative per-slice, per-thread rate jitter (standard deviation of
        a clamped Gaussian factor).  Zero (default) keeps the simulator
        deterministic-exact; a few percent reproduces the run-to-run
        variance real hardware shows between the paper's model and real
        columns.  Seeded by ``noise_seed`` — the run stays reproducible.
    """

    def __init__(
        self,
        machine: MachineTopology,
        *,
        slice_seconds: float = 1e-3,
        scheduler: CfsScheduler | None = None,
        remainder_rule: RemainderRule = RemainderRule.PROPORTIONAL,
        simulator: Simulator | None = None,
        tracer: Tracer | None = None,
        dvfs=None,
        cache=None,
        sample_bandwidth: bool = False,
        noise: float = 0.0,
        noise_seed: int = 0,
    ) -> None:
        if slice_seconds <= 0:
            raise SimulationError(
                f"slice_seconds must be positive, got {slice_seconds}"
            )
        self.machine = machine
        self.slice_seconds = slice_seconds
        self.scheduler = scheduler or CfsScheduler()
        self.resolver = BandwidthResolver(machine, rule=remainder_rule)
        self.sim = simulator or Simulator()
        self.dvfs = dvfs
        self.cache = cache
        self.sample_bandwidth = sample_bandwidth
        if noise < 0 or noise >= 0.5:
            raise SimulationError(
                f"noise must be in [0, 0.5), got {noise}"
            )
        self.noise = noise
        self._noise_rng = np.random.default_rng(noise_seed)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = MetricSet()
        self._segment_counters: dict[str, object] = {}
        self.threads: list[SimThread] = []
        self._next_tid = 0
        self._tick_scheduled = False
        #: simulation time of the most recent completed work (used by
        #: run_until_idle to report when the workload actually finished,
        #: independent of polling-chunk quantisation)
        self.last_progress_time = 0.0

    # ------------------------------------------------------------------
    # Thread management
    # ------------------------------------------------------------------
    def add_thread(
        self,
        name: str,
        binding: Binding,
        provider: WorkProvider,
        *,
        app_name: str = "",
    ) -> SimThread:
        """Create a thread; it starts runnable and asks for work on the
        next slice."""
        binding.validate(self.machine)
        thread = SimThread(
            tid=self._next_tid,
            name=name,
            binding=binding,
            provider=provider,
            app_name=app_name or name,
        )
        self._next_tid += 1
        self.threads.append(thread)
        return thread

    def block(self, thread: SimThread) -> None:
        """Suspend a thread (it keeps its in-flight segment, matching the
        paper's rule that a thread "blocks as soon as it finishes running
        a task"; the executor simply never advances it while blocked —
        callers that want task-boundary semantics block via the runtime
        layer, which waits for the boundary)."""
        if thread.state is ThreadState.FINISHED:
            raise SimulationError(f"thread {thread.name} already finished")
        if thread.state is ThreadState.BLOCKED:
            return
        thread.state = ThreadState.BLOCKED
        self.tracer.emit(self.sim.now, TraceKind.THREAD_BLOCKED, thread.name)

    def unblock(self, thread: SimThread) -> None:
        """Resume a blocked thread ("unblocking ... is nearly immediate":
        it participates again from the next slice)."""
        if thread.state is ThreadState.FINISHED:
            raise SimulationError(f"thread {thread.name} already finished")
        if thread.state is ThreadState.RUNNABLE:
            return
        thread.state = ThreadState.RUNNABLE
        self.tracer.emit(
            self.sim.now, TraceKind.THREAD_UNBLOCKED, thread.name
        )

    def finish(self, thread: SimThread) -> None:
        """Permanently retire a thread."""
        thread.state = ThreadState.FINISHED
        thread.current_segment = None

    def rebind(self, thread: SimThread, binding: Binding) -> None:
        """Change a thread's affinity (takes effect next slice)."""
        binding.validate(self.machine)
        old = thread.binding
        thread.binding = binding
        self.tracer.emit(
            self.sim.now,
            TraceKind.THREAD_MIGRATED,
            thread.name,
            old=str(old.kind.value),
            new=str(binding.kind.value),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        if duration <= 0:
            raise SimulationError(f"duration must be positive: {duration}")
        end = self.sim.now + duration
        if not self._tick_scheduled:
            self.sim.schedule(0.0, self._tick, priority=10)
            self._tick_scheduled = True
        self.sim.run_until(end)

    def run_until_idle(self, *, max_time: float = 3600.0) -> float:
        """Run until every thread is out of work; returns the finish time.

        A thread is "out of work" when its provider returns ``None`` and it
        has no in-flight segment.  Blocked threads don't count as idle —
        they may be unblocked by an agent event later; if only blocked
        threads remain and no events are pending, this raises, because the
        workload can never finish.
        """
        if not self._tick_scheduled:
            self.sim.schedule(0.0, self._tick, priority=10)
            self._tick_scheduled = True
        chunk = 100 * self.slice_seconds
        idle_chunks = 0
        while self.sim.now < max_time:
            flops_before = self.metrics.integrator("flops/total").total
            self.sim.run_until(min(self.sim.now + chunk, max_time))
            progressed = (
                self.metrics.integrator("flops/total").total
                > flops_before + 1e-15
            )
            if progressed or any(t.busy for t in self.threads):
                idle_chunks = 0
                continue
            # No work in flight and none was issued during the chunk.
            # Periodic controllers (agents) keep events pending forever,
            # so "queue empty" is not a usable termination signal; instead
            # a few consecutive work-free chunks declare the workload
            # drained.  One idle chunk suffices when only the tick event
            # remains.
            idle_chunks += 1
            if self.sim.pending > 1 and idle_chunks < 3:
                continue
            blocked = [
                t for t in self.threads if t.state is ThreadState.BLOCKED
            ]
            if blocked and not any(
                t.state is ThreadState.RUNNABLE for t in self.threads
            ):
                raise SimulationError(
                    f"deadlock: only blocked threads remain "
                    f"({[t.name for t in blocked]})"
                )
            return self.last_progress_time
        raise SimulationError(f"workload did not finish by t={max_time}")

    def run_until_condition(
        self,
        predicate,
        *,
        max_time: float = 3600.0,
    ) -> float:
        """Run until ``predicate()`` is true (checked at chunk boundaries).

        The precise completion time reported is the instant of the last
        work completion, not the chunk boundary.  Raises if ``max_time``
        passes first.
        """
        if not self._tick_scheduled:
            self.sim.schedule(0.0, self._tick, priority=10)
            self._tick_scheduled = True
        chunk = 20 * self.slice_seconds
        while self.sim.now < max_time:
            if predicate():
                return self.last_progress_time
            self.sim.run_until(min(self.sim.now + chunk, max_time))
        if predicate():
            return self.last_progress_time
        raise SimulationError(
            f"condition not reached by t={max_time}"
        )

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        if OBS.enabled:
            _TICKS.add()
        # 1. Hand out new segments.
        for t in self.threads:
            if t.state is not ThreadState.RUNNABLE or t.busy:
                continue
            segment = t.provider.next_segment(t)
            if segment is not None:
                t.current_segment = segment
                t.remaining_flops = segment.flops
                t.cache_factor = None
                self.tracer.emit(
                    now, TraceKind.TASK_STARTED, t.name, label=segment.label
                )

        # 2. CPU shares.
        active = [
            t
            for t in self.threads
            if t.state is ThreadState.RUNNABLE and t.busy
        ]
        if OBS.enabled:
            _RUNNABLE_THREADS.set(len(active))
        if active:
            assignments = self.scheduler.assign(self.machine, active)

            # Optional DVFS: per-node frequency factor from the number of
            # busy cores this slice.
            freq = [1.0] * self.machine.num_nodes
            if self.dvfs is not None:
                busy = [0.0] * self.machine.num_nodes
                for t in active:
                    a = assignments[t.tid]
                    busy[a.node] += a.share
                for n, node in enumerate(self.machine.nodes):
                    active_cores = min(
                        node.num_cores, int(np.ceil(busy[n] - 1e-12))
                    )
                    freq[n] = self.dvfs.frequency_factor(
                        active_cores, node.num_cores
                    )

            # 3. Memory demands.
            requests = []
            peaks: dict[int, float] = {}
            for t in active:
                a = assignments[t.tid]
                t.assigned_node = a.node
                core_peak = (
                    self.machine.node(a.node).cores[0].peak_gflops
                    * freq[a.node]
                )
                peak = core_peak * a.effective
                peaks[t.tid] = peak
                seg = t.current_segment
                demand = peak / seg.arithmetic_intensity
                if self.cache is not None and seg.cache_keys:
                    if t.cache_factor is None:
                        t.cache_factor = self.cache.demand_factor(
                            a.node, seg.cache_keys, now
                        )
                        self.cache.touch(a.node, seg.cache_keys, now)
                    demand *= t.cache_factor
                if seg.data_fractions is not None:
                    demands = {
                        m: demand * f
                        for m, f in seg.data_fractions.items()
                        if f > 0
                    }
                elif seg.data_home is not None:
                    demands = {seg.data_home: demand}
                else:
                    demands = {a.node: demand}
                requests.append(
                    BandwidthRequest(
                        key=t.tid, source_node=a.node, demands=demands
                    )
                )
            grants = self.resolver.resolve(requests)

            if self.sample_bandwidth:
                drawn = [0.0] * self.machine.num_nodes
                for g in grants.values():
                    for m, got in g.by_node.items():
                        drawn[m] += got
                for m, value in enumerate(drawn):
                    self.metrics.series(f"bw/node{m}").record(now, value)

            # 4. Progress.  A thread that completes its segment mid-slice
            # immediately chains into the next one at the same rate —
            # contention rates are only re-evaluated at slice boundaries,
            # so very fine tasks cost rate staleness, not dead time.
            for t in active:
                time_left = self.slice_seconds
                executed_total = 0.0
                while time_left > 1e-15 and t.busy:
                    seg = t.current_segment
                    bw = grants[t.tid].total
                    # A cache-warm segment needs fewer memory bytes per
                    # FLOP: its effective intensity rises by the same
                    # factor its demand fell.
                    ai_eff = seg.arithmetic_intensity
                    if t.cache_factor is not None and t.cache_factor < 1.0:
                        ai_eff = ai_eff / t.cache_factor
                    rate = min(peaks[t.tid], bw * ai_eff)
                    if self.noise > 0:
                        factor = 1.0 + self.noise * float(
                            self._noise_rng.standard_normal()
                        )
                        rate *= max(factor, 0.05)
                    if rate <= 1e-15:
                        break
                    executed = min(t.remaining_flops, rate * time_left)
                    t.remaining_flops -= executed
                    executed_total += executed
                    time_left -= executed / rate
                    if t.remaining_flops <= 1e-12:
                        t.current_segment = None
                        t.remaining_flops = 0.0
                        if self.cache is not None and seg.cache_keys:
                            # finishing writes the data: it is warm now
                            self.cache.touch(
                                t.assigned_node,
                                seg.cache_keys,
                                now + (self.slice_seconds - time_left),
                            )
                        self._segment_counter(t.app_name).add()
                        self.tracer.emit(
                            now + (self.slice_seconds - time_left),
                            TraceKind.TASK_FINISHED,
                            t.name,
                            label=seg.label,
                        )
                        t.provider.segment_finished(t, seg)
                        nxt = t.provider.next_segment(t)
                        if nxt is not None:
                            t.current_segment = nxt
                            t.remaining_flops = nxt.flops
                            t.cache_factor = None
                            self.tracer.emit(
                                now + (self.slice_seconds - time_left),
                                TraceKind.TASK_STARTED,
                                t.name,
                                label=nxt.label,
                            )
                if executed_total > 0:
                    self.last_progress_time = max(
                        self.last_progress_time,
                        now + (self.slice_seconds - max(time_left, 0.0)),
                    )
                    self.metrics.integrator(f"flops/{t.app_name}").accumulate(
                        now,
                        now + self.slice_seconds,
                        executed_total / self.slice_seconds,
                    )
                    self.metrics.integrator("flops/total").accumulate(
                        now,
                        now + self.slice_seconds,
                        executed_total / self.slice_seconds,
                    )

        # 5. Next tick.
        self.sim.schedule(self.slice_seconds, self._tick, priority=10)

    def _segment_counter(self, app_name: str):
        """The per-app finished-segment counter, resolved once per app.

        The slice loop finishes segments constantly; caching the counter
        object here keeps the per-segment cost to one dict lookup
        (PERF001).
        """
        counter = self._segment_counters.get(app_name)
        if counter is None:
            counter = self.metrics.counter(f"segments/{app_name}")
            self._segment_counters[app_name] = counter
        return counter

    # ------------------------------------------------------------------
    def achieved_gflops(self, app_name: str, duration: float) -> float:
        """Average achieved GFLOPS of ``app_name`` over ``duration``."""
        return self.metrics.integrator(f"flops/{app_name}").average_rate(
            duration
        )

    def total_gflops(self, duration: float) -> float:
        """Machine-wide average achieved GFLOPS over ``duration``."""
        return self.metrics.integrator("flops/total").average_rate(duration)
