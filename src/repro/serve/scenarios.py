"""Seeded churn replays for the allocation service (DES clock).

``python -m repro serve --scenario <name>`` runs the live service
against a scripted sequence of join/leave events replayed on the
discrete-event :class:`~repro.sim.engine.Simulator`: the service's
``clock``/``call_later`` are the simulation clock, every admitted
session runs a periodic report loop through a real
:class:`~repro.agent.protocol.RuntimeEndpoint` (optionally wrapped in a
fault-injecting :class:`~repro.faults.proxy.InjectionProxy` — that is
the ``serve-crash`` chaos path), and every run is exactly reproducible
from its ``(scenario, seed)`` pair.

Each preset encodes its own pass criteria in a :class:`ChurnReport`;
the headline check — shared by all presets — is that the service's
final allocation for the surviving workload equals the *offline*
optimizer's answer computed from scratch, with byte-identical scalar
scores.  Live churn must not cost correctness.  Every preset also runs
in either service mode (``--mode full`` or ``--mode delta``) against
the *same* from-scratch oracle, which is how the incremental
:class:`~repro.core.delta.DeltaSearch` path is proven exact under
churn.

Presets
-------
``churn-basic``
    Joins and leaves spaced wider than the debounce window: every
    event triggers exactly one re-optimization, and the final
    allocation matches the offline answer.
``churn-burst``
    A burst of joins inside one debounce window: the service coalesces
    the burst into a single re-optimization (fewer re-optimizations
    than events) and still matches offline.
``churn-stale``
    Most sessions go silent: the watchdog quarantines them, quorum is
    lost, the service degrades to equal share, and when the sessions
    resume reporting they are reactivated and the optimized answer is
    restored.
``churn-cache``
    A departed application re-registers, restoring an earlier workload
    composition: the second optimization of that composition is served
    from the persistent :class:`~repro.core.fasteval.ScoreCache`
    (cache hits observed).
``serve-crash-restart``
    The service journals every state change
    (:mod:`repro.serve.persist`), is killed at a scripted DES time
    mid-churn — with a torn record appended to the journal tail, as a
    real crash would leave — and is rebuilt with
    :meth:`~repro.serve.service.AllocationService.recover`.  The
    recovered state dump must equal the pre-crash one exactly, churn
    continues against the recovered service, and the final allocation
    must still match the offline oracle.

Any preset can additionally run *journaled* (``--journal DIR``):
journaling is a pure observer, so the report is identical to the
un-journaled run apart from the journal counters themselves (pinned by
the golden-digest test in ``tests/test_serve_persist.py``).
"""

from __future__ import annotations

import json
import os
import random
import tempfile
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.agent.protocol import (
    CommandKind,
    RuntimeEndpoint,
    StatusReport,
    ThreadCommand,
)
from repro.core.model import NumaPerformanceModel
from repro.core.optimizer import ExhaustiveSearch
from repro.core.spec import AppSpec
from repro.errors import EndpointUnavailable, ServiceError
from repro.machine.presets import model_machine
from repro.serve.persist import Journal, latest_journal_segment
from repro.serve.protocol import (
    AllocationUpdate,
    Deregister,
    ProgressReport,
    Register,
    ShutdownNotice,
)
from repro.serve.service import AllocationService, ServiceConfig
from repro.sim.engine import Simulator

__all__ = [
    "ChurnEvent",
    "ChurnReport",
    "ReplayEndpoint",
    "ReplayDriver",
    "SERVE_SCENARIOS",
    "run_replay",
]

#: Event priority of service timers on the shared simulator: after the
#: report loops (default 0) at the same instant, so a report stamped
#: "now" is folded in before a re-optimization at the same time.
_SERVICE_PRIORITY = 8


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted membership change.

    ``action`` is ``"join"`` (``app`` required) or ``"leave"``.
    """

    time: float
    action: str
    name: str
    app: AppSpec | None = None

    def __post_init__(self) -> None:
        if self.action not in ("join", "leave"):
            raise ServiceError(
                f"churn action must be 'join' or 'leave', "
                f"got {self.action!r}"
            )
        if self.action == "join" and self.app is None:
            raise ServiceError(f"join event for '{self.name}' needs an app")


@dataclass(frozen=True)
class ChurnReport:
    """Condensed outcome of one churn replay."""

    scenario: str
    seed: int
    passed: bool
    events: int
    reoptimizations: int
    degraded_reoptimizations: int
    retransmits: int
    quarantined: tuple[str, ...]
    cache_hits: int
    cache_misses: int
    final_score: float | None
    offline_score: float | None
    matches_offline: bool
    final_allocation: dict
    notes: tuple[str, ...] = ()
    mode: str = "full"
    delta_reoptimizations: int = 0
    delta_fallbacks: int = 0
    journal_records: int = 0
    recoveries: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form (the ``--json`` record)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "mode": self.mode,
            "passed": self.passed,
            "events": self.events,
            "reoptimizations": self.reoptimizations,
            "degraded_reoptimizations": self.degraded_reoptimizations,
            "delta_reoptimizations": self.delta_reoptimizations,
            "delta_fallbacks": self.delta_fallbacks,
            "retransmits": self.retransmits,
            "quarantined": list(self.quarantined),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "final_score": self.final_score,
            "offline_score": self.offline_score,
            "matches_offline": self.matches_offline,
            "final_allocation": {
                name: list(per_node)
                for name, per_node in self.final_allocation.items()
            },
            "notes": list(self.notes),
            "journal_records": self.journal_records,
            "recoveries": self.recoveries,
        }

    def to_json(self) -> str:
        """The report as a JSON object."""
        return json.dumps(self.to_dict(), indent=2)

    def format(self) -> str:
        """Human-readable replay report."""
        lines = [
            f"serve scenario: {self.scenario} "
            f"(seed {self.seed}, mode {self.mode})",
            f"  churn events:        {self.events}",
            f"  reoptimizations:     {self.reoptimizations} "
            f"({self.degraded_reoptimizations} degraded)",
        ]
        if self.mode == "delta":
            lines.append(
                f"  delta path:          {self.delta_reoptimizations} "
                f"incremental ({self.delta_fallbacks} fell back to full)"
            )
        if self.journal_records or self.recoveries:
            lines.append(
                f"  journal:             {self.journal_records} records, "
                f"{self.recoveries} recoveries"
            )
        lines += [
            f"  retransmits:         {self.retransmits}",
            f"  quarantined:         "
            f"{', '.join(self.quarantined) if self.quarantined else 'none'}",
            f"  score cache:         {self.cache_hits} hits / "
            f"{self.cache_misses} misses",
        ]
        if self.final_score is not None and self.offline_score is not None:
            verdict = "MATCH" if self.matches_offline else "MISMATCH"
            lines.append(
                f"  final vs offline:    {self.final_score:.6f} vs "
                f"{self.offline_score:.6f} ({verdict})"
            )
        for name, per_node in self.final_allocation.items():
            lines.append(f"    {name}: {list(per_node)}")
        lines.extend(f"  {note}" for note in self.notes)
        lines.append(
            f"  result:              {'PASS' if self.passed else 'FAIL'}"
        )
        return "\n".join(lines)


class ReplayEndpoint(RuntimeEndpoint):
    """Minimal runtime stand-in for replays: reports progress, records
    every applied command.

    Real runtimes derive their reports from executed tasks; the replay
    endpoint synthesizes a plausible monotone progress stream instead,
    because churn replays exercise the *service*, not the runtime.  The
    :attr:`applied` ledger is the ground truth of what reached the
    runtime — the driver uses its growth (not the absence of an
    exception) to decide which allocation epoch to acknowledge, which
    is what makes silently-dropped chaos commands visible.
    """

    def __init__(self, name: str, num_nodes: int) -> None:
        self.name = name
        self.num_nodes = num_nodes
        self.applied: list[ThreadCommand] = []
        self.reports = 0

    def report(self, time: float) -> StatusReport:
        """Synthesize the runtime's current status."""
        self.reports += 1
        per_node = (
            tuple(int(x) for x in self.applied[-1].per_node)
            if self.applied
            else (0,) * self.num_nodes
        )
        active = sum(per_node)
        return StatusReport(
            runtime_name=self.name,
            time=time,
            tasks_executed=self.reports,
            active_threads=active,
            blocked_threads=0,
            active_per_node=per_node,
            workers_per_node=per_node,
            queue_length=0,
            progress={"reports": float(self.reports)},
            cpu_load=1.0 if active else 0.0,
        )

    def apply(self, command: ThreadCommand) -> None:
        """Record the command as applied."""
        self.applied.append(command)

    @property
    def current_per_node(self) -> tuple[int, ...] | None:
        """Thread counts of the last truly-applied command, or None."""
        if not self.applied:
            return None
        return tuple(int(x) for x in self.applied[-1].per_node)


class _ReplaySession:
    """Driver-side state of one replayed runtime."""

    def __init__(
        self, runtime: ReplayEndpoint, surface: RuntimeEndpoint
    ) -> None:
        #: the raw endpoint whose ``applied`` ledger is ground truth.
        self.runtime = runtime
        #: what the driver talks to: the endpoint itself, or an
        #: InjectionProxy wrapped around it.
        self.surface = surface
        self.acked_epoch: int | None = None
        self.stopped = False


class ReplayDriver:
    """Runs an :class:`AllocationService` against scripted churn.

    The driver plays every role outside the service: it is the
    transport (push callbacks), the runtimes (report loops through
    :class:`ReplayEndpoint`), and the operator (join/leave events), all
    on one shared :class:`~repro.sim.engine.Simulator` so a replay is a
    deterministic function of its inputs.

    With ``journal_path`` set the service writes the
    :mod:`repro.serve.persist` write-ahead journal under that
    directory, and :meth:`crash` / :meth:`recover` replace the service
    with one rebuilt from disk mid-replay.  ``fsync`` defaults off for
    replays: a simulated in-process crash never loses buffered OS
    writes, and the DES clock should not wait on the disk (the real
    daemon in :mod:`repro.serve.server` keeps fsync on).
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        journal_path: str | None = None,
        compact_every: int | None = 16,
        fsync: bool = False,
    ) -> None:
        self.sim = Simulator()
        self.config = config or ServiceConfig(machine=model_machine())
        self.journal_path = journal_path
        self._compact_every = compact_every
        self._fsync = fsync
        journal = (
            Journal.open(
                journal_path, fsync=fsync, compact_every=compact_every
            )
            if journal_path is not None
            else None
        )
        self.service = AllocationService(
            self.config,
            clock=lambda: self.sim.now,
            call_later=lambda delay, fn: self.sim.schedule(
                delay, fn, priority=_SERVICE_PRIORITY
            ),
            journal=journal,
        )
        self.sessions: dict[str, _ReplaySession] = {}
        #: ``(endpoint) -> surface`` hook: wrap endpoints (e.g. in an
        #: InjectionProxy) before the driver talks to them.
        self.wrap: Callable[[ReplayEndpoint], RuntimeEndpoint] | None = None
        self._horizon: float | None = None
        self._watchdog = True
        #: journal records appended by service instances that crashed.
        self.journal_records_prior = 0

    # -- session lifecycle ---------------------------------------------

    def join(self, app: AppSpec) -> _ReplaySession:
        """Admit ``app`` now and start its report loop."""
        runtime = ReplayEndpoint(app.name, self.config.machine.num_nodes)
        surface = self.wrap(runtime) if self.wrap is not None else runtime
        session = _ReplaySession(runtime, surface)
        reply = self.service.handle(Register(name=app.name, app=app))
        if not hasattr(reply, "epoch"):
            raise ServiceError(
                f"join of '{app.name}' rejected: "
                f"{getattr(reply, 'error', reply)}"
            )
        self.sessions[app.name] = session
        self.service.subscribe(
            app.name, lambda message: self._on_push(session, message)
        )
        self._report_tick(session)
        return session

    def leave(self, name: str) -> None:
        """Deregister ``name`` and stop its report loop."""
        session = self.sessions.get(name)
        if session is None:
            raise ServiceError(f"no replayed session '{name}'")
        session.stopped = True
        self.service.handle(Deregister(name=name))

    # -- the runtime side ----------------------------------------------

    def _on_push(self, session: _ReplaySession, message) -> None:
        if isinstance(message, ShutdownNotice):
            session.stopped = True
            return
        if not isinstance(message, AllocationUpdate):
            return
        command = ThreadCommand(
            kind=CommandKind.SET_ALLOCATION, per_node=message.per_node
        )
        before = len(session.runtime.applied)
        try:
            session.surface.apply(command)
        except EndpointUnavailable:
            return  # crashed runtime; the watchdog will quarantine it
        if len(session.runtime.applied) > before:
            # The command truly reached the runtime (a chaos proxy may
            # have dropped or delayed it) — acknowledge the epoch.
            session.acked_epoch = message.epoch

    def _report_tick(self, session: _ReplaySession) -> None:
        if session.stopped:
            return
        now = self.sim.now
        if self._horizon is not None and now > self._horizon:
            return
        try:
            status = session.surface.report(now)
        except EndpointUnavailable:
            status = None  # crashed: no heartbeat this tick
        if status is not None:
            # A stale chaos replay carries an old timestamp; the
            # service rejects it (ErrorReply) and the heartbeat simply
            # does not advance — exactly the stale semantics.
            self.service.handle(
                ProgressReport(
                    name=session.runtime.name,
                    time=status.time,
                    progress=dict(status.progress),
                    cpu_load=status.cpu_load,
                    acked_epoch=session.acked_epoch,
                )
            )
        self.sim.schedule(
            self.config.report_interval,
            lambda: self._report_tick(session),
        )

    # -- crash / recovery ----------------------------------------------

    def crash(self) -> dict:
        """Kill the service abruptly; returns its pre-crash state dump.

        The dead instance's timers become no-ops and its journal
        descriptor is released; the driver keeps running report loops
        that will talk to whatever :meth:`recover` installs next.
        """
        state = self.service.snapshot_state()
        self.journal_records_prior += self.service.journal_records
        self.service.crash()
        return state

    def recover(self) -> dict:
        """Rebuild the service from the journal; returns its state dump.

        Re-subscribes every still-running replay session to the
        recovered service and re-arms the watchdog, mirroring what a
        restarted daemon's reconnecting runtimes would do.
        """
        if self.journal_path is None:
            raise ServiceError(
                "this driver has no journal_path; nothing to recover"
            )
        self.service = AllocationService.recover(
            self.journal_path,
            self.config,
            clock=lambda: self.sim.now,
            call_later=lambda delay, fn: self.sim.schedule(
                delay, fn, priority=_SERVICE_PRIORITY
            ),
            fsync=self._fsync,
            compact_every=self._compact_every,
        )
        for name, session in self.sessions.items():
            if not session.stopped:
                self.service.subscribe(
                    name,
                    lambda message, s=session: self._on_push(s, message),
                )
        if self._watchdog:
            self.service.start_watchdog()
        return self.service.snapshot_state()

    def crash_and_recover(
        self, *, tear_tail: bool = False
    ) -> tuple[dict, dict]:
        """Crash, optionally tear the journal tail, recover; both dumps.

        ``tear_tail`` appends a partial, CRC-less record to the newest
        journal segment — the bytes a mid-append power loss leaves
        behind — so recovery must detect it via CRC and truncate to the
        last valid record.
        """
        pre = self.crash()
        if tear_tail:
            segment = latest_journal_segment(self.journal_path)
            fd = os.open(segment, os.O_WRONLY | os.O_APPEND)
            try:
                os.write(fd, b'{"crc":0,"event":{"kind":"torn')
            finally:
                os.close(fd)
        return pre, self.recover()

    # -- replay ---------------------------------------------------------

    def run(
        self,
        events: Sequence[ChurnEvent],
        duration: float,
        *,
        watchdog: bool = True,
    ) -> None:
        """Schedule ``events`` and run the simulation to ``duration``."""
        self._horizon = duration
        self._watchdog = watchdog
        if watchdog:
            self.service.start_watchdog()
        for event in events:
            if event.action == "join":
                app = event.app
                assert app is not None  # ChurnEvent validated this
                self.sim.schedule_at(event.time, lambda a=app: self.join(a))
            else:
                self.sim.schedule_at(
                    event.time,
                    lambda n=event.name: self.leave(n),
                )
        self.sim.run_until(duration)


# ----------------------------------------------------------------------
# Preset scenarios
# ----------------------------------------------------------------------
def _jittered(base: float, rng: random.Random) -> float:
    """Deterministically jitter an event time by up to 5 ms."""
    return base + rng.uniform(0.0, 0.005)


def _offline_answer(
    machine, specs: Sequence[AppSpec]
) -> tuple[dict[str, tuple[int, ...]], float | None]:
    """The from-scratch optimizer's allocation for ``specs``."""
    if not specs:
        return {}, None
    search = ExhaustiveSearch(NumaPerformanceModel())
    result = search.search(machine, specs)
    return (
        {
            spec.name: tuple(
                int(x) for x in result.allocation.threads_of(spec.name)
            )
            for spec in specs
        },
        result.score,
    )


def _finish(
    scenario: str,
    seed: int,
    driver: ReplayDriver,
    events: Sequence[ChurnEvent],
    extra_pass: bool,
    notes: tuple[str, ...],
) -> ChurnReport:
    """Common epilogue: compare the live answer with the offline one."""
    service = driver.service
    survivors = service.registry.active_specs()
    final_allocation = service.current_allocation()
    final_score = service.current_score()
    offline_allocation, offline_score = _offline_answer(
        service.config.machine, survivors
    )
    # Byte-identical criterion: both scores come from the scalar
    # ``predict`` on the winning allocation, so exact ``==`` is the
    # honest comparison — any drift between the live path and the
    # offline path is a bug, not noise.
    matches = (
        final_score == offline_score
        and {
            name: final_allocation.get(name)
            for name in offline_allocation
        }
        == offline_allocation
    )
    quarantined = tuple(
        s.name
        for s in driver.service.registry.live_sessions()
        if not s.active
    )
    cache = service.model.cache
    return ChurnReport(
        scenario=scenario,
        seed=seed,
        mode=service.config.mode,
        passed=matches and extra_pass,
        events=len(events),
        reoptimizations=service.reoptimizations,
        degraded_reoptimizations=service.degraded_reoptimizations,
        delta_reoptimizations=service.delta_reoptimizations,
        delta_fallbacks=service.delta_fallbacks,
        retransmits=service.retransmits,
        quarantined=quarantined,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        final_score=final_score,
        offline_score=offline_score,
        matches_offline=matches,
        final_allocation=final_allocation,
        notes=notes,
        journal_records=(
            service.journal_records + driver.journal_records_prior
        ),
        recoveries=service.recoveries,
    )


def _replay_config(
    mode: str, workers: int, **knobs
) -> ServiceConfig:
    """The shared replay :class:`ServiceConfig`.

    ``workers > 0`` additionally drops ``parallel_min_batch`` to 1 so
    even the small replay candidate spaces exercise the worker pool —
    replays are correctness runs, not benchmarks, and the offline
    oracle they are checked against always scores serially, so a
    passing parallel replay proves worker byte-identity under churn.
    """
    return ServiceConfig(
        machine=model_machine(),
        mode=mode,
        workers=workers,
        parallel_min_batch=1 if workers > 0 else None,
        **knobs,
    )


def _churn_basic(
    seed: int,
    mode: str = "full",
    journal: str | None = None,
    workers: int = 0,
) -> ChurnReport:
    """Joins/leaves spaced wider than the debounce window."""
    rng = random.Random(seed)
    apps = {
        "alpha": AppSpec.memory_bound("alpha"),
        "beta": AppSpec.compute_bound("beta"),
        "gamma": AppSpec.memory_bound("gamma", arithmetic_intensity=0.8),
        "delta": AppSpec.compute_bound("delta", arithmetic_intensity=64.0),
    }
    events = [
        ChurnEvent(_jittered(0.00, rng), "join", "alpha", apps["alpha"]),
        ChurnEvent(_jittered(0.05, rng), "join", "beta", apps["beta"]),
        ChurnEvent(_jittered(0.10, rng), "join", "gamma", apps["gamma"]),
        ChurnEvent(_jittered(0.15, rng), "join", "delta", apps["delta"]),
        ChurnEvent(_jittered(0.25, rng), "leave", "beta"),
        ChurnEvent(_jittered(0.30, rng), "leave", "delta"),
    ]
    driver = ReplayDriver(
        _replay_config(
            mode, workers, debounce=0.02, report_interval=0.02
        ),
        journal_path=journal,
    )
    driver.run(events, duration=0.5)
    # Spacing (>= 50 ms) exceeds the debounce (20 ms): every event must
    # have produced its own re-optimization.
    extra = driver.service.reoptimizations >= len(events)
    return _finish(
        "churn-basic",
        seed,
        driver,
        events,
        extra,
        (
            "criteria: >= 1 reoptimization per churn event, final "
            "allocation byte-identical to the offline optimizer",
        ),
    )


def _churn_burst(
    seed: int,
    mode: str = "full",
    journal: str | None = None,
    workers: int = 0,
) -> ChurnReport:
    """A join burst inside one debounce window coalesces."""
    rng = random.Random(seed)
    base = _jittered(0.10, rng)
    events = [
        ChurnEvent(
            _jittered(0.00, rng),
            "join",
            "alpha",
            AppSpec.memory_bound("alpha"),
        ),
        ChurnEvent(base, "join", "beta", AppSpec.compute_bound("beta")),
        ChurnEvent(
            base + 0.003,
            "join",
            "gamma",
            AppSpec.memory_bound("gamma", arithmetic_intensity=0.7),
        ),
        ChurnEvent(
            base + 0.006,
            "join",
            "delta",
            AppSpec.compute_bound("delta", arithmetic_intensity=80.0),
        ),
    ]
    driver = ReplayDriver(
        _replay_config(
            mode, workers, debounce=0.02, report_interval=0.02
        ),
        journal_path=journal,
    )
    driver.run(events, duration=0.3)
    # 4 events, but the 3-join burst lands inside one debounce window:
    # exactly 2 re-optimizations (the lone join, the coalesced burst).
    extra = driver.service.reoptimizations == 2
    return _finish(
        "churn-burst",
        seed,
        driver,
        events,
        extra,
        (
            "criteria: the 3-join burst coalesces into one "
            "reoptimization (2 total), final matches offline",
        ),
    )


def _churn_stale(
    seed: int,
    mode: str = "full",
    journal: str | None = None,
    workers: int = 0,
) -> ChurnReport:
    """Silent sessions are quarantined; quorum loss degrades; recovery
    reactivates."""
    rng = random.Random(seed)
    apps = [
        AppSpec.memory_bound("alpha"),
        AppSpec.compute_bound("beta"),
        AppSpec.memory_bound("gamma", arithmetic_intensity=0.8),
    ]
    events = [
        ChurnEvent(_jittered(0.00, rng), "join", "alpha", apps[0]),
        ChurnEvent(_jittered(0.03, rng), "join", "beta", apps[1]),
        ChurnEvent(_jittered(0.06, rng), "join", "gamma", apps[2]),
    ]
    driver = ReplayDriver(
        _replay_config(
            mode, workers, debounce=0.01, report_interval=0.02
        ),
        journal_path=journal,
    )
    # Silence beta and gamma between t=0.15 and t=0.40: their report
    # loops pause, the watchdog quarantines them, and 1/3 active drops
    # below the 0.5 quorum -> degraded equal share for alpha.
    def _silence(name: str) -> None:
        driver.sessions[name].stopped = True

    def _resume(name: str) -> None:
        session = driver.sessions[name]
        session.stopped = False
        driver._report_tick(session)

    for name in ("beta", "gamma"):
        driver.sim.schedule_at(0.15, lambda n=name: _silence(n))
        driver.sim.schedule_at(0.40, lambda n=name: _resume(n))
    driver.run(events, duration=0.6)
    service = driver.service
    # After resumption every session must be active again and the
    # full 3-app workload optimized.
    all_active = sorted(
        s.name for s in service.registry.active_sessions()
    ) == ["alpha", "beta", "gamma"]
    extra = (
        service.quarantines >= 2
        and service.degraded_reoptimizations >= 1
        and all_active
    )
    return _finish(
        "churn-stale",
        seed,
        driver,
        events,
        extra,
        (
            "criteria: silent sessions quarantined, quorum loss "
            "degrades to equal share, resumed sessions reactivate and "
            "the optimized answer is restored",
        ),
    )


def _churn_cache(
    seed: int,
    mode: str = "full",
    journal: str | None = None,
    workers: int = 0,
) -> ChurnReport:
    """A returning workload composition is served from the score cache."""
    rng = random.Random(seed)
    apps = {
        "alpha": AppSpec.memory_bound("alpha"),
        "beta": AppSpec.compute_bound("beta"),
        "gamma": AppSpec.memory_bound("gamma", arithmetic_intensity=0.8),
    }
    events = [
        ChurnEvent(_jittered(0.00, rng), "join", "alpha", apps["alpha"]),
        ChurnEvent(_jittered(0.05, rng), "join", "beta", apps["beta"]),
        ChurnEvent(_jittered(0.10, rng), "join", "gamma", apps["gamma"]),
        ChurnEvent(_jittered(0.20, rng), "leave", "gamma"),
        # gamma re-registers with the identical spec: the (alpha, beta,
        # gamma) composition returns and its candidate scores are
        # already cached.
        ChurnEvent(_jittered(0.30, rng), "join", "gamma", apps["gamma"]),
    ]
    driver = ReplayDriver(
        _replay_config(
            mode, workers, debounce=0.02, report_interval=0.02
        ),
        journal_path=journal,
    )
    driver.run(events, duration=0.5)
    cache = driver.service.model.cache
    extra = cache is not None and cache.hits > 0
    return _finish(
        "churn-cache",
        seed,
        driver,
        events,
        extra,
        (
            "criteria: re-registering an identical workload "
            "composition hits the persistent ScoreCache, final matches "
            "offline",
        ),
    )


def _churn_restart(
    seed: int,
    mode: str = "full",
    journal: str | None = None,
    workers: int = 0,
) -> ChurnReport:
    """Crash the journaled service mid-churn; recover byte-identically.

    At a scripted DES time the service dies (its pre-crash state dump
    captured), a torn partial record is appended to the journal tail,
    and the service is rebuilt from snapshot + journal replay.  The
    recovered dump must ``==`` the pre-crash one, the torn tail must be
    detected and truncated (not crash recovery, not load garbage), and
    the churn that continues *after* recovery — a new join and a leave
    — must still end byte-identical to the offline oracle.

    With ``workers > 0`` the replay additionally asserts the scoring
    pool's lifecycle across the crash: :meth:`~repro.serve.service.
    AllocationService.crash` releases the pool (gone from the process
    registry), and the recovered service's first re-optimization
    respawns a fresh, live one.
    """
    rng = random.Random(seed)
    apps = {
        "alpha": AppSpec.memory_bound("alpha"),
        "beta": AppSpec.compute_bound("beta"),
        "gamma": AppSpec.memory_bound("gamma", arithmetic_intensity=0.8),
        "delta": AppSpec.compute_bound("delta", arithmetic_intensity=64.0),
    }
    events = [
        ChurnEvent(_jittered(0.00, rng), "join", "alpha", apps["alpha"]),
        ChurnEvent(_jittered(0.05, rng), "join", "beta", apps["beta"]),
        ChurnEvent(_jittered(0.10, rng), "join", "gamma", apps["gamma"]),
        ChurnEvent(_jittered(0.15, rng), "leave", "beta"),
        # Scheduled after the crash at t=0.22: both land on the
        # *recovered* service.
        ChurnEvent(_jittered(0.30, rng), "join", "delta", apps["delta"]),
        ChurnEvent(_jittered(0.38, rng), "leave", "gamma"),
    ]
    driver = ReplayDriver(
        _replay_config(
            mode, workers, debounce=0.02, report_interval=0.02
        ),
        journal_path=journal or tempfile.mkdtemp(prefix="repro-journal-"),
    )
    checks: dict[str, bool] = {}

    def _crash_recover() -> None:
        if workers > 0:
            from repro.core.parallel import pool_stats

            stats = pool_stats().get(workers)
            checks["pool_spawned"] = (
                stats is not None and stats["alive"]
            )
        pre, post = driver.crash_and_recover(tear_tail=True)
        recovery = driver.service.last_recovery
        checks["identical"] = pre == post
        checks["torn_tail"] = (
            recovery is not None and recovery.truncated_tail
        )
        if workers > 0:
            from repro.core.parallel import pool_stats

            checks["pool_released"] = workers not in pool_stats()

    driver.sim.schedule_at(0.22, _crash_recover)
    driver.run(events, duration=0.6)
    service = driver.service
    extra = (
        checks.get("identical", False)
        and checks.get("torn_tail", False)
        and service.recoveries == 1
        and service.journal_records + driver.journal_records_prior > 0
    )
    notes = (
        "criteria: recovered state dump == pre-crash dump, torn "
        "journal tail truncated at the last valid record, churn after "
        "recovery still matches the offline oracle",
    )
    if not checks.get("identical", False):
        notes += ("FAIL: recovered state differs from pre-crash state",)
    if not checks.get("torn_tail", False):
        notes += ("FAIL: torn tail was not detected/truncated",)
    if workers > 0:
        from repro.core.parallel import (
            pool_stats,
            shared_memory_available,
        )

        if shared_memory_available():
            stats = pool_stats().get(workers)
            checks["pool_restarted"] = (
                stats is not None and stats["alive"]
            )
            extra = (
                extra
                and checks.get("pool_spawned", False)
                and checks.get("pool_released", False)
                and checks["pool_restarted"]
            )
            notes += (
                "criteria (workers): pool live before the crash, "
                "released at crash, a fresh pool live again after the "
                "recovered service's re-optimizations",
            )
            if not checks.get("pool_spawned", False):
                notes += ("FAIL: no live scoring pool before the crash",)
            if not checks.get("pool_released", False):
                notes += ("FAIL: crash did not release the scoring pool",)
            if not checks["pool_restarted"]:
                notes += ("FAIL: no live scoring pool after recovery",)
        else:
            notes += (
                "note: shared memory unavailable here; pool lifecycle "
                "checks skipped (serial fallback path exercised instead)",
            )
    return _finish(
        "serve-crash-restart", seed, driver, events, extra, notes
    )


#: Scenario name -> builder; each returns a :class:`ChurnReport`.
SERVE_SCENARIOS: dict[str, Callable[..., ChurnReport]] = {
    "churn-basic": _churn_basic,
    "churn-burst": _churn_burst,
    "churn-stale": _churn_stale,
    "churn-cache": _churn_cache,
    "serve-crash-restart": _churn_restart,
}


def run_replay(
    name: str,
    seed: int = 0,
    mode: str = "full",
    journal: str | None = None,
    workers: int = 0,
) -> ChurnReport:
    """Run one churn replay preset by name.

    ``mode`` selects the service's re-optimization path (``"full"`` or
    ``"delta"``); the offline oracle the replay is checked against is
    always the from-scratch exhaustive search, so a passing delta run
    proves the incremental path byte-identical under that scenario's
    churn.  ``journal`` (a directory path) runs the replay with the
    write-ahead journal enabled; ``serve-crash-restart`` journals into
    a fresh temporary directory when none is given.  ``workers`` routes
    the service's scoring through the process pool
    (:mod:`repro.core.parallel`) with a batch threshold of 1, so the
    same oracle checks also prove worker byte-identity under churn
    (``serve-crash-restart`` additionally asserts the pool restarts
    cleanly after recovery).
    """
    if name not in SERVE_SCENARIOS:
        raise ServiceError(
            f"unknown serve scenario '{name}' "
            f"(choose from {sorted(SERVE_SCENARIOS)})"
        )
    return SERVE_SCENARIOS[name](
        seed, mode=mode, journal=journal, workers=workers
    )
