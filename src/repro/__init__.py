"""repro — reproduction of "NUMA-aware CPU core allocation in cooperating
dynamic applications" (Dokulil & Benkner, IPPS 2020).

The package is organised bottom-up:

* :mod:`repro.machine` — NUMA machine topologies, presets, calibration;
* :mod:`repro.core` — the paper's contribution: the roofline-based NUMA
  bandwidth-sharing model, thread allocations, policies, optimizers and
  multi-runtime arbitration;
* :mod:`repro.sim` — the deterministic discrete-event machine simulator
  (the "hardware" the experiments run on);
* :mod:`repro.obs` — observability: span tracer, metrics registry and
  trace exporters, wired into the hot paths and zero-cost when off;
* :mod:`repro.runtime` — task-based runtimes: OCR-Vx with blockable
  workers, TBB arenas + RML, an OpenMP adapter;
* :mod:`repro.agent` — the Figure 1 coordination agent and strategies;
* :mod:`repro.apps` — synthetic roofline applications and composition
  scenarios (producer-consumer, main+library);
* :mod:`repro.distributed` — the Section V distributed layer;
* :mod:`repro.analysis` — one driver per paper table/figure.

Quick start::

    from repro.machine import model_machine
    from repro.core import AppSpec, ThreadAllocation, NumaPerformanceModel

    machine = model_machine()
    apps = [AppSpec.memory_bound("mem", 0.5),
            AppSpec.compute_bound("comp", 10.0)]
    alloc = ThreadAllocation.uniform(["mem", "comp"], 4, [3, 5])
    print(NumaPerformanceModel().predict(machine, apps, alloc).summary())
"""

from repro._version import __version__
from repro.errors import ReproError

__all__ = ["__version__", "ReproError"]
