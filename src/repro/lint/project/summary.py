"""Per-module digests the whole-program analyzer is built from.

:func:`summarize_module` walks one parsed AST and extracts everything
the cross-module rules need — call sites, async-ness, metric name
literals, state mutations, ``noqa`` maps — into a
:class:`ModuleSummary` that serialises to plain JSON.  The summaries,
not the ASTs, are what the incremental cache persists: a warm run
rebuilds the :class:`~repro.lint.project.graph.ProjectContext` from
cached summaries without re-parsing unchanged files.

Names are recorded *as written* (``self.service.handle``,
``np.einsum``); resolution against the import table and the symbol
table happens later in :mod:`repro.lint.project.graph`, so a summary
never depends on any other file's content (which is what makes per-file
caching sound).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

__all__ = [
    "CallSite",
    "MetricUse",
    "MutationSite",
    "FunctionInfo",
    "ModuleSummary",
    "summarize_module",
]

#: Mirrors the engine's inline-suppression marker (kept in sync by
#: tests/test_lint_engine.py) so summaries can carry the noqa map
#: without holding the source text.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")
_NOQA_MODULE_RE = re.compile(
    r"#\s*repro:\s*noqa-module\[([A-Za-z0-9_,\s]+)\]"
)

#: Pseudo-function holding import-time (module-level) statements.
MODULE_BODY = "<module>"


@dataclass(frozen=True)
class CallSite:
    """One call expression: the dotted callee as written, and its line."""

    callee: str
    line: int

    def to_dict(self) -> dict:
        """Plain-dict form (the JSON record)."""
        return {"callee": self.callee, "line": self.line}

    @classmethod
    def from_dict(cls, data: dict) -> "CallSite":
        """Inverse of :meth:`to_dict`."""
        return cls(callee=data["callee"], line=int(data["line"]))


@dataclass(frozen=True)
class MetricUse:
    """One metric/span name literal: ``OBS.metrics.counter("x/y")`` etc.

    ``name`` is the literal, with every f-string interpolation collapsed
    to the placeholder ``<?>`` (``f"runtime/{name}/tasks"`` becomes
    ``runtime/<?>/tasks``); ``dynamic`` is True when any placeholder is
    present.  ``kind`` is ``counter``/``gauge``/``histogram``/``span``.
    """

    name: str
    kind: str
    line: int
    dynamic: bool = False

    def to_dict(self) -> dict:
        """Plain-dict form (the JSON record)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "line": self.line,
            "dynamic": self.dynamic,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricUse":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            kind=data["kind"],
            line=int(data["line"]),
            dynamic=bool(data["dynamic"]),
        )


@dataclass(frozen=True)
class MutationSite:
    """A write to shared state: ``self.<attr>`` or a module global.

    ``target`` is ``ClassName.attr`` for instance/class attributes and
    the bare name for module globals (written through a ``global``
    declaration or at module level).  ``locked`` records whether the
    write happens under a ``with <lock>:`` in the same function.
    """

    target: str
    line: int
    locked: bool

    def to_dict(self) -> dict:
        """Plain-dict form (the JSON record)."""
        return {
            "target": self.target,
            "line": self.line,
            "locked": self.locked,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MutationSite":
        """Inverse of :meth:`to_dict`."""
        return cls(
            target=data["target"],
            line=int(data["line"]),
            locked=bool(data["locked"]),
        )


@dataclass
class FunctionInfo:
    """Everything recorded about one function, method or lambda.

    Attributes
    ----------
    qualname:
        Dotted qualified name within the module
        (``Class.method``, ``outer.<locals>.inner``).
    line / is_async:
        Definition line; whether this is an ``async def``.
    class_name:
        Enclosing class qualname, or ``None`` for module-level defs.
    decorators:
        Decorator names as written (``register``, ``functools.wraps``).
    calls:
        Every call expression in the body (not nested defs — those own
        their calls).
    lock_awaits:
        ``(with_line, lock_name, await_line)`` triples: a synchronous
        ``with <lock>:`` whose body awaits (LOCK002's raw material).
    mutations:
        Shared-state writes (THRD001's raw material).
    local_defs:
        Names bound to nested functions/lambdas in this body
        (``{"inner": "outer.<locals>.inner"}``), for bare-name call
        resolution.
    local_types:
        Best-effort local variable types: ``var`` assigned from a
        constructor call records the constructor's dotted name, ``var =
        self.attr`` records ``self.<attr>``.
    """

    qualname: str
    line: int
    is_async: bool = False
    class_name: str | None = None
    decorators: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    lock_awaits: list[tuple[int, str, int]] = field(default_factory=list)
    mutations: list[MutationSite] = field(default_factory=list)
    local_defs: dict[str, str] = field(default_factory=dict)
    local_types: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form (the JSON record)."""
        return {
            "qualname": self.qualname,
            "line": self.line,
            "is_async": self.is_async,
            "class_name": self.class_name,
            "decorators": list(self.decorators),
            "calls": [c.to_dict() for c in self.calls],
            "lock_awaits": [list(t) for t in self.lock_awaits],
            "mutations": [m.to_dict() for m in self.mutations],
            "local_defs": dict(self.local_defs),
            "local_types": dict(self.local_types),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionInfo":
        """Inverse of :meth:`to_dict`."""
        return cls(
            qualname=data["qualname"],
            line=int(data["line"]),
            is_async=bool(data["is_async"]),
            class_name=data["class_name"],
            decorators=list(data["decorators"]),
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            lock_awaits=[
                (int(a), str(b), int(c)) for a, b, c in data["lock_awaits"]
            ],
            mutations=[MutationSite.from_dict(m) for m in data["mutations"]],
            local_defs=dict(data["local_defs"]),
            local_types=dict(data["local_types"]),
        )


@dataclass
class ModuleSummary:
    """The JSON-serialisable whole-program digest of one module.

    Attributes
    ----------
    path / module:
        File path as given to the engine; dotted module name under the
        project's ``src`` root (``None`` when the file lies outside it).
    imports:
        Local alias -> imported target (``np`` -> ``numpy``,
        ``ExhaustiveSearch`` -> ``repro.core.optimizer.ExhaustiveSearch``).
    functions:
        Qualname -> :class:`FunctionInfo`; module-level statements live
        under the pseudo-function :data:`MODULE_BODY`.
    classes:
        Class qualname -> ``{"bases": [...], "methods": [...],
        "attr_types": {attr: dotted-ctor}}``.
    metrics:
        Every metric/span name literal in the module.
    thread_targets:
        Dotted names handed to ``threading.Thread(target=...)`` /
        ``loop.run_in_executor(..., fn)`` / ``asyncio.to_thread(fn)`` —
        the thread-context roots for THRD001.
    noqa / module_noqa:
        Line -> suppressed rule ids (``["*"]`` for a bare marker), and
        the file-wide ``# repro: noqa-module[...]`` ids.
    """

    path: str
    module: str | None
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, dict] = field(default_factory=dict)
    metrics: list[MetricUse] = field(default_factory=list)
    thread_targets: list[tuple[str, int]] = field(default_factory=list)
    noqa: dict[int, list[str]] = field(default_factory=dict)
    module_noqa: list[str] = field(default_factory=list)

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Does the summary's noqa map silence ``rule_id`` at ``line``?"""
        if rule_id in self.module_noqa:
            return True
        ids = self.noqa.get(line)
        if ids is None:
            return False
        return "*" in ids or rule_id in ids

    def to_dict(self) -> dict:
        """Plain-dict form (the JSON record)."""
        return {
            "path": self.path,
            "module": self.module,
            "imports": dict(self.imports),
            "functions": {
                q: f.to_dict() for q, f in self.functions.items()
            },
            "classes": self.classes,
            "metrics": [m.to_dict() for m in self.metrics],
            "thread_targets": [list(t) for t in self.thread_targets],
            "noqa": {str(k): v for k, v in self.noqa.items()},
            "module_noqa": list(self.module_noqa),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            path=data["path"],
            module=data["module"],
            imports=dict(data["imports"]),
            functions={
                q: FunctionInfo.from_dict(f)
                for q, f in data["functions"].items()
            },
            classes=dict(data["classes"]),
            metrics=[MetricUse.from_dict(m) for m in data["metrics"]],
            thread_targets=[
                (str(n), int(ln)) for n, ln in data["thread_targets"]
            ],
            noqa={int(k): list(v) for k, v in data["noqa"].items()},
            module_noqa=list(data["module_noqa"]),
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _is_lockish_name(dotted: str | None) -> bool:
    """Same lock heuristic as the LOCK001 rule, on a dotted string."""
    if not dotted:
        return False
    leaf = dotted.rsplit(".", 1)[-1].lower()
    return any(tag in leaf for tag in ("lock", "mutex", "sem"))


def _metric_name(arg: ast.expr) -> tuple[str, bool] | None:
    """``(template, dynamic)`` for a str/f-string literal, else None."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr):
        parts: list[str] = []
        dynamic = False
        for piece in arg.values:
            if isinstance(piece, ast.Constant) and isinstance(
                piece.value, str
            ):
                parts.append(piece.value)
            else:
                parts.append("<?>")
                dynamic = True
        return "".join(parts), dynamic
    return None


_METRIC_METHODS = {"counter", "gauge", "histogram"}
_HANDLE_KINDS = {
    "CounterHandle": "counter",
    "GaugeHandle": "gauge",
    "HistogramHandle": "histogram",
}


class _Extractor(ast.NodeVisitor):
    """Single-pass AST walk filling a :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary) -> None:
        self.summary = summary
        #: (qualname-prefix-parts, FunctionInfo) stack; module level is
        #: represented by the MODULE_BODY pseudo-function.
        module_fn = FunctionInfo(qualname=MODULE_BODY, line=1)
        summary.functions[MODULE_BODY] = module_fn
        self._fn_stack: list[FunctionInfo] = [module_fn]
        self._class_stack: list[str] = []
        self._name_stack: list[str] = []
        self._with_locks: list[str] = []

    # -- helpers -------------------------------------------------------
    @property
    def _fn(self) -> FunctionInfo:
        return self._fn_stack[-1]

    def _qual(self, name: str) -> str:
        return ".".join(self._name_stack + [name]) if self._name_stack else name

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            self.summary.imports[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self.summary.imports[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- definitions ---------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        bases = [b for b in (_dotted(base) for base in node.bases) if b]
        entry = self.summary.classes.setdefault(
            qual, {"bases": [], "methods": [], "attr_types": {}}
        )
        entry["bases"] = bases
        for deco in node.decorator_list:
            name = _dotted(deco.func if isinstance(deco, ast.Call) else deco)
            if name:
                self._fn.calls.append(CallSite(callee=name, line=node.lineno))
        # class-body annotations declare attribute types
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                anno = _dotted(stmt.annotation)
                if anno:
                    entry["attr_types"].setdefault(stmt.target.id, anno)
        self._class_stack.append(qual)
        self._name_stack.append(node.name)
        self.generic_visit(node)
        self._name_stack.pop()
        self._class_stack.pop()

    def _enter_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        qual = self._qual(node.name)
        class_name = self._class_stack[-1] if self._class_stack else None
        # only direct class-body defs are methods of that class
        if class_name is not None and qual != f"{class_name}.{node.name}":
            class_name = None
        if class_name is not None:
            entry = self.summary.classes.setdefault(
                class_name, {"bases": [], "methods": [], "attr_types": {}}
            )
            entry["methods"].append(node.name)
        decorators = []
        for deco in node.decorator_list:
            name = _dotted(deco.func if isinstance(deco, ast.Call) else deco)
            if name:
                decorators.append(name)
                self._fn.calls.append(
                    CallSite(callee=name, line=node.lineno)
                )
        info = FunctionInfo(
            qualname=qual,
            line=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_name,
            decorators=decorators,
        )
        self.summary.functions[qual] = info
        if class_name is None:
            # bare-name calls resolve through the *enclosing* function's
            # local defs; methods are reached via self/instances instead
            self._fn.local_defs.setdefault(node.name, qual)
        self._fn_stack.append(info)
        self._name_stack.extend(
            [node.name, "<locals>"]
        )
        saved_locks = self._with_locks
        self._with_locks = []
        for child in node.body:
            self.visit(child)
        self._with_locks = saved_locks
        self._name_stack.pop()
        self._name_stack.pop()
        self._fn_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        qual = self._qual(f"<lambda@{node.lineno}>")
        info = FunctionInfo(qualname=qual, line=node.lineno)
        self.summary.functions[qual] = info
        self._fn_stack.append(info)
        self.visit(node.body)
        self._fn_stack.pop()

    # -- statements ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_mutations(node.targets, node.lineno)
        self._record_local_binding(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_mutations([node.target], node.lineno)
        # ``self.attr: SomeType`` (with or without value) types the attr
        if (
            isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "self"
            and self._fn.class_name is not None
        ):
            anno = _dotted(node.annotation)
            if anno:
                entry = self.summary.classes[self._fn.class_name]
                entry["attr_types"].setdefault(node.target.attr, anno)
        if node.value is not None:
            self._record_local_binding([node.target], node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_mutations([node.target], node.lineno)
        self.generic_visit(node)

    def _record_local_binding(
        self, targets: list[ast.expr], value: ast.expr
    ) -> None:
        if len(targets) != 1:
            return
        target = targets[0]
        if isinstance(value, ast.Lambda):
            # visit_Lambda runs later via generic_visit; pre-compute its
            # qualname so the binding is available for call resolution.
            lam_qual = self._qual(f"<lambda@{value.lineno}>")
            if isinstance(target, ast.Name):
                self._fn.local_defs[target.id] = lam_qual
            return
        if not isinstance(target, ast.Name):
            # ``self.attr = Ctor(...)`` types the attribute
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self._fn.class_name is not None
                and isinstance(value, ast.Call)
            ):
                ctor = _dotted(value.func)
                if ctor and (ctor[:1].isupper() or "." in ctor):
                    entry = self.summary.classes[self._fn.class_name]
                    entry["attr_types"].setdefault(target.attr, ctor)
            return
        if isinstance(value, ast.Call):
            ctor = _dotted(value.func)
            if ctor:
                self._fn.local_types[target.id] = ctor
        elif (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
        ):
            self._fn.local_types[target.id] = f"self.{value.attr}"

    def _record_mutations(
        self, targets: list[ast.expr], line: int
    ) -> None:
        fn = self._fn
        locked = bool(self._with_locks)
        for target in targets:
            if isinstance(target, ast.Tuple):
                self._record_mutations(list(target.elts), line)
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and fn.class_name is not None
            ):
                fn.mutations.append(
                    MutationSite(
                        target=f"{fn.class_name}.{target.attr}",
                        line=line,
                        locked=locked,
                    )
                )
            elif (
                isinstance(target, ast.Name)
                and fn.qualname == MODULE_BODY
            ):
                fn.mutations.append(
                    MutationSite(target=target.id, line=line, locked=locked)
                )
            elif isinstance(target, ast.Name) and target.id in getattr(
                fn, "_globals", ()
            ):
                fn.mutations.append(
                    MutationSite(target=target.id, line=line, locked=locked)
                )

    def visit_Global(self, node: ast.Global) -> None:
        fn = self._fn
        declared = getattr(fn, "_globals", None)
        if declared is None:
            declared = set()
            fn._globals = declared  # type: ignore[attr-defined]
        declared.update(node.names)

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node, is_async=False)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node, is_async=True)

    def _visit_with(
        self, node: ast.With | ast.AsyncWith, is_async: bool
    ) -> None:
        lock_names = []
        for item in node.items:
            expr = item.context_expr
            dotted = _dotted(
                expr.func if isinstance(expr, ast.Call) else expr
            )
            if _is_lockish_name(dotted):
                lock_names.append(dotted)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        # ``async with lock`` is an asyncio lock — designed to be held
        # across awaits; only a *sync* with on a lock is suspect.
        if lock_names and not is_async:
            awaits = [
                inner.lineno
                for inner in ast.walk(node)  # body only: defs skipped below
                if isinstance(inner, ast.Await)
                and self._directly_enclosed(inner, node)
            ]
            for await_line in awaits:
                for name in lock_names:
                    self._fn.lock_awaits.append(
                        (node.lineno, name, await_line)
                    )
        self._with_locks.extend(lock_names)
        for stmt in node.body:
            self.visit(stmt)
        for _ in lock_names:
            self._with_locks.pop()

    @staticmethod
    def _directly_enclosed(inner: ast.AST, outer: ast.AST) -> bool:
        """True when no function boundary separates ``inner`` from ``outer``."""
        current = getattr(inner, "parent", None)
        while current is not None and current is not outer:
            if isinstance(
                current,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                return False
            current = getattr(current, "parent", None)
        return current is outer

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = _dotted(node.func)
        if callee is not None:
            self._fn.calls.append(CallSite(callee=callee, line=node.lineno))
            self._record_metric(node, callee)
            self._record_thread_target(node, callee)
        self.generic_visit(node)

    def _record_metric(self, node: ast.Call, callee: str) -> None:
        leaf = callee.rsplit(".", 1)[-1]
        kind: str | None = None
        if leaf in _HANDLE_KINDS:
            kind = _HANDLE_KINDS[leaf]
        elif leaf in _METRIC_METHODS and "." in callee:
            receiver_leaf = callee.rsplit(".", 2)[-2].lower()
            if "metric" in receiver_leaf or "registry" in receiver_leaf:
                kind = leaf
        elif leaf == "span" and "." in callee:
            receiver_leaf = callee.rsplit(".", 2)[-2].lower()
            if "tracer" in receiver_leaf or receiver_leaf == "obs":
                kind = "span"
        if kind is None or not node.args:
            return
        named = _metric_name(node.args[0])
        if named is None:
            return
        name, dynamic = named
        self.summary.metrics.append(
            MetricUse(name=name, kind=kind, line=node.lineno, dynamic=dynamic)
        )

    def _record_thread_target(self, node: ast.Call, callee: str) -> None:
        leaf = callee.rsplit(".", 1)[-1]
        target: ast.expr | None = None
        if leaf == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    target = kw.value
        elif leaf == "run_in_executor" and len(node.args) >= 2:
            target = node.args[1]
        elif leaf == "to_thread" and node.args:
            target = node.args[0]
        if target is None:
            return
        dotted = _dotted(target)
        if dotted:
            self.summary.thread_targets.append((dotted, node.lineno))


def summarize_module(
    path: str, module: str | None, tree: ast.Module, source: str
) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one parsed module.

    ``tree`` must carry parent links (the engine's
    :class:`~repro.lint.engine.FileContext` provides them); ``source``
    is only consulted for the ``noqa`` line maps.
    """
    summary = ModuleSummary(path=path, module=module)
    for lineno, text in enumerate(source.splitlines(), start=1):
        module_match = _NOQA_MODULE_RE.search(text)
        if module_match:
            summary.module_noqa.extend(
                part.strip()
                for part in module_match.group(1).split(",")
                if part.strip()
            )
            continue
        match = _NOQA_RE.search(text)
        if match:
            ids = match.group(1)
            summary.noqa[lineno] = (
                ["*"]
                if ids is None
                else [p.strip() for p in ids.split(",") if p.strip()]
            )
    _Extractor(summary).visit(tree)
    return summary
