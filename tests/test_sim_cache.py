"""Tests for the LLC warmth model and cache-reuse execution."""

import pytest

from repro.analysis import run_cache_handoff
from repro.errors import ConfigurationError
from repro.machine import uma_machine
from repro.sim import Binding, CacheModel, ExecutionSimulator, WorkSegment


class TestCacheModel:
    def test_warmth_and_expiry(self):
        c = CacheModel(retention_seconds=1.0)
        c.touch(0, ("a", "b"), now=0.0)
        assert c.is_warm(0, ("a", "b"), now=0.5)
        assert not c.is_warm(0, ("a", "b"), now=2.0)
        assert not c.is_warm(1, ("a",), now=0.5)  # other node cold

    def test_partial_set_is_cold(self):
        c = CacheModel(retention_seconds=1.0)
        c.touch(0, ("a",), now=0.0)
        assert not c.is_warm(0, ("a", "b"), now=0.1)

    def test_empty_keys_never_warm(self):
        c = CacheModel()
        assert not c.is_warm(0, (), now=0.0)

    def test_demand_factor_and_counters(self):
        c = CacheModel(retention_seconds=1.0, reuse_fraction=0.5)
        assert c.demand_factor(0, ("a",), now=0.0) == 1.0  # miss
        c.touch(0, ("a",), now=0.0)
        assert c.demand_factor(0, ("a",), now=0.1) == 0.5  # hit
        assert c.hits == 1
        assert c.misses == 1
        assert c.hit_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CacheModel(retention_seconds=0.0)
        with pytest.raises(ConfigurationError):
            CacheModel(reuse_fraction=1.0)


class TestExecutorIntegration:
    def test_warm_tasks_run_faster(self):
        """Two identical memory-bound streams touching one datablock:
        with the cache model the repeat touches are warm and complete
        sooner."""

        class Work:
            def __init__(self):
                self.count = 0

            def next_segment(self, thread):
                if self.count >= 40:
                    return None
                self.count += 1
                return WorkSegment(
                    flops=0.02,
                    arithmetic_intensity=0.2,
                    cache_keys=("blob",),
                )

            def segment_finished(self, thread, segment):
                pass

        def run(cache):
            ex = ExecutionSimulator(uma_machine(cores=1), cache=cache)
            ex.add_thread("t", Binding.to_node(0), Work(), app_name="t")
            return ex.run_until_idle()

        cold = run(None)
        warm_cache = CacheModel(retention_seconds=1.0, reuse_fraction=0.6)
        warm = run(warm_cache)
        assert warm < cold * 0.7
        assert warm_cache.hit_rate > 0.9  # everything after task 1 warm


class TestCacheHandoffExperiment:
    def test_section2_tight_integration_story(self):
        res = run_cache_handoff(items=30)
        # cache reuse on top of co-location...
        assert res.cache_speedup > 1.2
        # ...and the full handoff beats the separate-nodes layout.
        assert res.total_speedup > res.cache_speedup
        assert 0.3 < res.cache_hit_rate <= 1.0
