"""Figure 3: the NUMA-bad example (even 138 vs node-exclusive 150)."""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_fig3


def test_bench_fig3(benchmark):
    results = benchmark(run_fig3)
    emit(
        "Figure 3 - NUMA-bad application example",
        render_table(
            ["allocation", "GFLOPS (ours)", "GFLOPS (paper)"],
            [[r.name, r.gflops, r.paper_gflops] for r in results],
        ),
    )
    even, exclusive = results
    assert even.gflops == pytest.approx(138.75)
    assert exclusive.gflops == pytest.approx(150.0)
    # The paper's headline: the ordering flips versus Figure 2 — with a
    # NUMA-bad app, dedicating whole (data-local) nodes wins.
    assert exclusive.gflops > even.gflops
    for r in results:
        assert abs(r.relative_error) < 0.01
