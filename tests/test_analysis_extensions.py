"""Tests for the extension experiment drivers."""

import pytest

from repro.analysis import (
    run_dvfs_ablation,
    run_model_validation,
    run_oversub_benefit,
)


class TestOversubBenefit:
    def test_oversubscription_helps_io_workload(self):
        res = run_oversub_benefit(
            thread_counts=(8, 16), duration=0.2
        )
        assert res.gflops_by_threads[16] > res.gflops_by_threads[8]
        assert res.best_thread_count == 16


class TestDvfsAblation:
    def test_assumption2_exact_without_dvfs(self):
        res = run_dvfs_ablation(duration=0.2)
        assert res.spread_no_dvfs == pytest.approx(
            res.packed_no_dvfs, rel=0.02
        )

    def test_spread_wins_with_dvfs(self):
        res = run_dvfs_ablation(duration=0.2)
        assert res.spread_dvfs > res.packed_dvfs
        # packed placement keeps the node fully busy: no boost at all
        assert res.packed_dvfs == pytest.approx(
            res.packed_no_dvfs, rel=0.02
        )


class TestModelValidation:
    def test_tight_agreement(self):
        res = run_model_validation(scenarios=5, seed=1, duration=0.15)
        assert res.max_error < 0.05

    def test_deterministic(self):
        a = run_model_validation(scenarios=3, seed=9, duration=0.1)
        b = run_model_validation(scenarios=3, seed=9, duration=0.1)
        assert a.relative_errors == b.relative_errors


class TestTable3Noise:
    def test_noisy_real_column_deviates_like_paper(self):
        from repro.analysis import run_table3_real

        rows = run_table3_real(duration=0.25, noise=0.05, noise_seed=3)
        for r in rows:
            rel = abs(r.our_real - r.our_model) / r.our_model
            # jittered but still within the paper's ~5% band
            assert rel < 0.06
        # scenario ordering survives the noise
        vals = [r.our_real for r in rows]
        assert vals[0] > vals[1] > vals[2]


class TestMixedRuntimesDriver:
    def test_coordination_ladder(self):
        from repro.analysis import run_mixed_runtimes

        res = run_mixed_runtimes(duration=0.25)
        assert (
            res.uncoordinated_gflops
            < res.fair_share_gflops
            < res.adaptive_gflops
        )
        assert res.adaptive_gain > 1.5


class TestCacheHandoffDriver:
    def test_speedup_properties(self):
        from repro.analysis import run_cache_handoff

        res = run_cache_handoff(items=20)
        assert res.handoff_time < res.colocated_no_cache_time
        assert res.colocated_no_cache_time < res.separate_nodes_time
