"""Unit and integration tests for the coordination agent."""

import pytest

from repro.agent import (
    Agent,
    FairShareStrategy,
    OcrVxEndpoint,
    ProducerConsumerAlignment,
)
from repro.agent.monitor import LoadMonitor
from repro.errors import AgentError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


@pytest.fixture
def setup():
    ex = ExecutionSimulator(model_machine())
    a = OCRVxRuntime("a", ex)
    b = OCRVxRuntime("b", ex)
    a.start()
    b.start()
    return ex, a, b


class TestAgentLifecycle:
    def test_requires_endpoints(self, setup):
        ex, a, b = setup
        agent = Agent(ex, FairShareStrategy())
        with pytest.raises(AgentError):
            agent.start()

    def test_duplicate_endpoint_rejected(self, setup):
        ex, a, b = setup
        agent = Agent(ex, FairShareStrategy())
        agent.register(OcrVxEndpoint(a))
        with pytest.raises(AgentError):
            agent.register(OcrVxEndpoint(a))

    def test_double_start_rejected(self, setup):
        ex, a, b = setup
        agent = Agent(ex, FairShareStrategy())
        agent.register(OcrVxEndpoint(a))
        agent.start()
        with pytest.raises(AgentError):
            agent.start()

    def test_invalid_period(self, setup):
        ex, a, b = setup
        with pytest.raises(AgentError):
            Agent(ex, FairShareStrategy(), period=0.0)


class TestAgentRounds:
    def test_rounds_at_period(self, setup):
        ex, a, b = setup
        agent = Agent(ex, FairShareStrategy(), period=0.01)
        agent.register(OcrVxEndpoint(a))
        agent.register(OcrVxEndpoint(b))
        agent.start()
        ex.run(0.055)
        assert agent.rounds == 5

    def test_fair_share_applied_once(self, setup):
        ex, a, b = setup
        agent = Agent(ex, FairShareStrategy(), period=0.01)
        agent.register(OcrVxEndpoint(a))
        agent.register(OcrVxEndpoint(b))
        agent.start()
        ex.run(0.05)
        assert a.active_per_node() == [4, 4, 4, 4]
        assert b.active_per_node() == [4, 4, 4, 4]
        assert agent.commands_issued() == 2

    def test_decisions_recorded(self, setup):
        ex, a, b = setup
        agent = Agent(ex, FairShareStrategy(), period=0.01)
        agent.register(OcrVxEndpoint(a))
        agent.register(OcrVxEndpoint(b))
        agent.start()
        ex.run(0.03)
        d = agent.decisions[0]
        assert set(d.reports) == {"a", "b"}
        assert d.load.time == pytest.approx(0.01)


class TestAgentCpuCharge:
    def test_deliberation_charged_as_work(self, setup):
        ex, a, b = setup
        agent = Agent(
            ex,
            FairShareStrategy(),
            period=0.01,
            decision_cost_seconds=0.002,
            charge_cpu=True,
            agent_node=0,
        )
        agent.register(OcrVxEndpoint(a))
        agent.register(OcrVxEndpoint(b))
        agent.start()
        ex.run(0.1)
        assert agent.total_deliberation == pytest.approx(
            agent.rounds * 0.002
        )
        # the agent's thread actually consumed cycles
        assert ex.metrics.integrator("flops/agent").total > 0


class TestLoadMonitor:
    def test_samples_utilisation(self, setup):
        ex, a, b = setup
        mon = LoadMonitor(ex)
        for i in range(200):
            a.create_task(f"t{i}", 0.01, 10.0)
        ex.run(0.05)
        s = mon.sample()
        assert s.interval == pytest.approx(0.05)
        assert 0 < s.machine_utilization <= 1.0
        assert s.gflops_by_app["a"] > 0
        assert s.gflops_by_app["b"] == 0
