"""Cross-module rules: async safety, determinism, metric-namespace drift.

These are the rules the per-file layer cannot express — each one walks
the :class:`~repro.lint.project.graph.ProjectContext` call graph or the
project-wide metric registry:

* ASYNC001 — a blocking call (``time.sleep``, ``subprocess.run``,
  synchronous file I/O, ...) reachable from an ``async def``.  One
  stalled handler freezes the allocation service's entire event loop,
  which the serve-layer latency histograms would mis-attribute to the
  optimizer.
* LOCK002 — a *synchronous* lock held across an ``await``.  The
  coroutine suspends with the lock taken; any other task (or thread)
  touching that lock deadlocks or serialises the loop.  ``async with``
  on an asyncio lock is the correct idiom and is exempt.
* THRD001 — state mutated from both a thread context
  (``Thread(target=...)``, ``run_in_executor``) and an event-loop
  context with no lock held at either site.
* DET001 — wall-clock or process-global randomness reachable from a
  DES replay entry point.  Replays are byte-identical only while every
  decision flows from the simulation clock and seeded RNGs.
* OBS003 — the project-wide metric/span registry: kind-consistency,
  naming convention, and drift in both directions against the table in
  ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.lint.engine import ProjectRule, Severity, Violation, register

__all__ = [
    "BlockingCallInAsyncPath",
    "SyncLockAcrossAwait",
    "UnlockedCrossContextMutation",
    "NondeterminismInReplayPath",
    "MetricNamespaceDrift",
]


def _leaf(dotted: str) -> str:
    return dotted.rsplit(".", 1)[-1]


def _fmt_chain(project, reachable, key: int | str) -> str:
    """``a -> b -> c`` rendering of one example call path to ``key``."""
    names = []
    for node in project.chain(reachable, key):
        _, _, qualname = node.rpartition(":")
        names.append(qualname)
    return " -> ".join(names)


# ----------------------------------------------------------------------
# ASYNC001
# ----------------------------------------------------------------------
#: Calls that block the calling thread (and with it, the event loop).
_BLOCKING_EXACT = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.wait",
    "os.waitpid",
    "input",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
}
_BLOCKING_PREFIXES = ("subprocess.",)
#: Attribute leaves that are file I/O on whatever the receiver is; only
#: matched on *unresolved* receivers (a resolved project method named
#: ``read_text`` would be linked, not external).
_BLOCKING_IO_LEAVES = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}


def _is_blocking(edge) -> str | None:
    """The blocking callable's name, or ``None``."""
    name = edge.external or edge.raw
    if name in _BLOCKING_EXACT or name == "open":
        return name
    if any(name.startswith(p) for p in _BLOCKING_PREFIXES):
        return name
    if edge.external is None and _leaf(edge.raw) in _BLOCKING_IO_LEAVES:
        return edge.raw
    return None


@register
class BlockingCallInAsyncPath(ProjectRule):
    """ASYNC001: blocking call reachable from an ``async def``."""

    rule_id = "ASYNC001"
    severity = Severity.ERROR
    summary = (
        "Blocking call (sleep/subprocess/sync file I/O) reachable from "
        "an async def; it stalls the whole event loop - await an async "
        "equivalent or push it through run_in_executor/to_thread"
    )

    def check_project(self, project) -> Iterator[Violation]:
        """Walk the call closure of every ``async def``."""
        roots = [
            project.node_key(summary, fn.qualname)
            for summary, fn in project.functions()
            if fn.is_async
        ]
        if not roots:
            return
        reachable = project.reachable_from(roots)
        for summary, fn, edge in project.external_calls(reachable):
            blocked = _is_blocking(edge)
            if blocked is None:
                continue
            chain = _fmt_chain(project, reachable, edge.caller)
            yield self.project_violation(
                summary.path,
                edge.line,
                f"blocking call {blocked}() reachable from async "
                f"context via {chain}",
            )


# ----------------------------------------------------------------------
# LOCK002
# ----------------------------------------------------------------------
@register
class SyncLockAcrossAwait(ProjectRule):
    """LOCK002: synchronous ``with <lock>:`` body contains ``await``."""

    rule_id = "LOCK002"
    severity = Severity.ERROR
    summary = (
        "Synchronous lock held across an await; the coroutine suspends "
        "with the lock taken - use asyncio.Lock with 'async with', or "
        "release before awaiting"
    )

    def check_project(self, project) -> Iterator[Violation]:
        """Report every recorded lock-across-await triple."""
        for summary, fn in project.functions():
            for with_line, lock_name, await_line in fn.lock_awaits:
                yield self.project_violation(
                    summary.path,
                    with_line,
                    f"sync lock {lock_name!r} held across await on "
                    f"line {await_line} (in {fn.qualname})",
                )


# ----------------------------------------------------------------------
# THRD001
# ----------------------------------------------------------------------
@register
class UnlockedCrossContextMutation(ProjectRule):
    """THRD001: state written from thread and event-loop, no lock."""

    rule_id = "THRD001"
    severity = Severity.WARNING
    summary = (
        "State mutated from both a thread target and an async context "
        "with no lock held at one of the writes - guard both sides "
        "with the same lock or confine the state to one context"
    )

    def _thread_roots(self, project) -> list[str]:
        from repro.lint.project.summary import MODULE_BODY, CallSite

        roots = []
        for summary in project.summaries.values():
            module_fn = summary.functions[MODULE_BODY]
            for dotted, line in summary.thread_targets:
                edge = project.resolve_call(
                    summary, module_fn, CallSite(callee=dotted, line=line)
                )
                if edge.target is not None:
                    roots.append(edge.target)
        return roots

    def check_project(self, project) -> Iterator[Violation]:
        """Intersect thread-reachable and async-reachable writes."""
        thread_roots = self._thread_roots(project)
        async_roots = [
            project.node_key(summary, fn.qualname)
            for summary, fn in project.functions()
            if fn.is_async
        ]
        if not thread_roots or not async_roots:
            return
        in_thread = project.reachable_from(thread_roots)
        in_async = project.reachable_from(async_roots)

        def writes(reachable) -> dict[str, list]:
            sites: dict[str, list] = {}
            for key in reachable:
                try:
                    summary, fn = project.function_of(key)
                except KeyError:
                    continue
                for mut in fn.mutations:
                    sites.setdefault(mut.target, []).append(
                        (summary, fn, mut)
                    )
            return sites

        thread_writes = writes(in_thread)
        async_writes = writes(in_async)
        reported = set()
        for target in sorted(set(thread_writes) & set(async_writes)):
            both = thread_writes[target] + async_writes[target]
            if all(mut.locked for _, _, mut in both):
                continue
            for summary, fn, mut in both:
                if mut.locked:
                    continue
                site = (summary.path, mut.line, target)
                if site in reported:
                    continue
                reported.add(site)
                yield self.project_violation(
                    summary.path,
                    mut.line,
                    f"{target} is written from both thread and async "
                    f"contexts; this write (in {fn.qualname}) holds "
                    f"no lock",
                )


# ----------------------------------------------------------------------
# DET001
# ----------------------------------------------------------------------
#: Entry-point module prefixes whose call closure must be deterministic.
_REPLAY_MODULES = ("repro.sim", "repro.serve.scenarios", "repro.core.delta")

#: Process-global nondeterminism: wall clocks and unseeded randomness.
_NONDET_EXACT = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "uuid.uuid4",
    "uuid.uuid1",
    "os.urandom",
}
_NONDET_PREFIXES = ("secrets.",)
#: Module-level ``random.*`` / ``numpy.random.*`` drive the process-wide
#: RNG; seeded instances (``random.Random(seed)``, ``default_rng(seed)``)
#: are the deterministic idiom and stay allowed.
_NONDET_RANDOM_MODULES = ("random.", "numpy.random.")
_NONDET_RANDOM_ALLOWED = {"Random", "default_rng", "Generator", "SeedSequence"}


def _is_nondeterministic(edge) -> str | None:
    name = edge.external or edge.raw
    if name in _NONDET_EXACT:
        return name
    if any(name.startswith(p) for p in _NONDET_PREFIXES):
        return name
    for module in _NONDET_RANDOM_MODULES:
        if name.startswith(module):
            rest = name[len(module):]
            if "." not in rest and rest not in _NONDET_RANDOM_ALLOWED:
                return name
    return None


def _in_replay_module(module: str | None) -> bool:
    if module is None:
        return False
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _REPLAY_MODULES
    )


@register
class NondeterminismInReplayPath(ProjectRule):
    """DET001: wall clock / global RNG reachable from replay code."""

    rule_id = "DET001"
    severity = Severity.ERROR
    summary = (
        "Wall clock or process-global randomness reachable from a DES "
        "replay entry point; replays stop being byte-identical - use "
        "the simulation clock and seeded RNG instances"
    )

    def check_project(self, project) -> Iterator[Violation]:
        """Walk the call closure of the replay modules."""
        roots = [
            project.node_key(summary, fn.qualname)
            for summary, fn in project.functions()
            if _in_replay_module(summary.module)
        ]
        if not roots:
            return
        reachable = project.reachable_from(roots)
        seen = set()
        for summary, fn, edge in project.external_calls(reachable):
            name = _is_nondeterministic(edge)
            if name is None:
                continue
            site = (summary.path, edge.line, name)
            if site in seen:
                continue
            seen.add(site)
            chain = _fmt_chain(project, reachable, edge.caller)
            yield self.project_violation(
                summary.path,
                edge.line,
                f"nondeterministic call {name}() reachable from replay "
                f"entry point via {chain}",
            )


# ----------------------------------------------------------------------
# OBS003
# ----------------------------------------------------------------------
#: A documented name cell: every backticked token in the first column.
_DOC_ROW_RE = re.compile(r"^\s*\|(.+?)\|(.+?)\|")
_BACKTICK_RE = re.compile(r"`([^`]+)`")
_DOC_KINDS = {
    "counter": "counter",
    "counters": "counter",
    "gauge": "gauge",
    "gauges": "gauge",
    "histogram": "histogram",
    "histograms": "histogram",
    "span": "span",
    "spans": "span",
}
#: Static metric names: lowercase slash-separated, >= 2 segments; the
#: ``<?>`` placeholder stands for a collapsed f-string field.
_SEGMENT_RE = re.compile(r"^(?:<\?>|[a-z0-9_.<>?-]+)$")

_OBS_DOC = "docs/OBSERVABILITY.md"


def _parse_doc_table(text: str) -> list[tuple[str, str, int]]:
    """``(name, kind, line)`` for every documented metric name."""
    out = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        row = _DOC_ROW_RE.match(line)
        if row is None:
            continue
        kind_cell = row.group(2).strip().lower()
        kind = _DOC_KINDS.get(kind_cell)
        if kind is None:
            continue
        for name in _BACKTICK_RE.findall(row.group(1)):
            out.append((name, kind, lineno))
    return out


def _segments_match(doc_seg: str, code_seg: str) -> bool:
    if doc_seg == "*" or (doc_seg.startswith("<") and doc_seg.endswith(">")):
        return True
    if code_seg == "<?>" or "<?>" in code_seg:
        return True
    return doc_seg == code_seg


def _name_matches(doc_name: str, code_name: str) -> bool:
    doc_parts = doc_name.split("/")
    code_parts = code_name.split("/")
    if doc_parts and doc_parts[-1] == "*":
        if len(code_parts) < len(doc_parts):
            return False
        doc_parts = doc_parts[:-1] + ["*"] * (
            len(code_parts) - len(doc_parts) + 1
        )
    if len(doc_parts) != len(code_parts):
        return False
    return all(
        _segments_match(d, c) for d, c in zip(doc_parts, code_parts)
    )


@register
class MetricNamespaceDrift(ProjectRule):
    """OBS003: metric registry consistency + OBSERVABILITY.md drift."""

    rule_id = "OBS003"
    severity = Severity.WARNING
    summary = (
        "Project-wide metric namespace check: one kind per name, "
        "lowercase area/name convention, and no drift in either "
        "direction against the docs/OBSERVABILITY.md table"
    )

    def check_project(self, project) -> Iterator[Violation]:
        """Check the merged metric registry, then diff the docs."""
        uses = [
            (summary, use)
            for summary in project.summaries.values()
            for use in summary.metrics
        ]
        # -- kind consistency ------------------------------------------
        first_kind: dict[str, tuple[str, str, int]] = {}
        for summary, use in uses:
            prior = first_kind.setdefault(
                use.name, (use.kind, summary.path, use.line)
            )
            if prior[0] != use.kind:
                yield self.project_violation(
                    summary.path,
                    use.line,
                    f"metric {use.name!r} used as {use.kind} here but "
                    f"as {prior[0]} at {prior[1]}:{prior[2]}",
                )
        # -- naming convention -----------------------------------------
        for summary, use in uses:
            parts = use.name.split("/")
            if len(parts) < 2 or not all(
                p and _SEGMENT_RE.match(p) for p in parts
            ):
                yield self.project_violation(
                    summary.path,
                    use.line,
                    f"metric name {use.name!r} violates the lowercase "
                    f"<area>/<name> convention",
                )
        # -- drift against the documentation ---------------------------
        if project.project_root is None:
            return
        doc_path = project.project_root / _OBS_DOC
        if not doc_path.is_file():
            return
        documented = _parse_doc_table(
            doc_path.read_text(encoding="utf-8")
        )
        doc_names = [(name, line) for name, _, line in documented]
        for summary, use in uses:
            if not any(
                _name_matches(doc, use.name) for doc, _ in doc_names
            ):
                yield self.project_violation(
                    summary.path,
                    use.line,
                    f"metric {use.name!r} is not documented in "
                    f"{_OBS_DOC}",
                )
        # The documented-but-unused direction is only meaningful when
        # the whole source tree was checked; a narrow path selection
        # (one file, one subpackage) trivially "misses" most metrics.
        # A top-level package among the summaries is the tell.
        if not any("." not in mod for mod in project.modules):
            return
        code_names = [use.name for _, use in uses]
        for doc_name, _, line in documented:
            if not any(
                _name_matches(doc_name, code) for code in code_names
            ):
                yield self.project_violation(
                    _OBS_DOC,
                    line,
                    f"metric {doc_name!r} is documented but never "
                    f"recorded by the code",
                )
