"""The tight-integration scenario: a main application delegating to a
"library" application.

Section II: "one application might use the other application like a
library, delegating a specific job to it whenever needed.  In this case,
quickly shifting resources to the 'library' application when it is called
could improve efficiency.  Similarly, when the 'library' finishes, we can
quickly free up the CPU cores."

The scenario alternates *main phases* (a fan of tasks in the main runtime)
with *library calls* (a fan in the library runtime); each phase depends on
the previous call's completion and vice versa.  Between calls the library
is idle — exactly when its cores are wasted unless an agent reclaims them.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.runtime.events import LatchEvent
from repro.runtime.runtime import OCRVxRuntime
from repro.runtime.task import Task
from repro.sim.executor import ExecutionSimulator

__all__ = ["ComposedAppScenario"]


class ComposedAppScenario:
    """Main + library composed application.

    Parameters
    ----------
    executor:
        Shared execution simulator.
    main / library:
        The two runtimes.
    phases:
        Number of main-phase / library-call rounds.
    main_tasks, library_tasks:
        Fan width of each side's round.
    main_flops, library_flops:
        Work per task.
    arithmetic_intensity:
        Kernel intensity (same both sides by default).
    """

    def __init__(
        self,
        executor: ExecutionSimulator,
        main: OCRVxRuntime,
        library: OCRVxRuntime,
        *,
        phases: int,
        main_tasks: int = 16,
        library_tasks: int = 32,
        main_flops: float = 0.01,
        library_flops: float = 0.01,
        arithmetic_intensity: float = 8.0,
    ) -> None:
        if phases <= 0:
            raise ConfigurationError("phases must be positive")
        self.executor = executor
        self.main = main
        self.library = library
        self.phases = phases
        self.main_tasks = main_tasks
        self.library_tasks = library_tasks
        self.main_flops = main_flops
        self.library_flops = library_flops
        self.ai = arithmetic_intensity
        self.calls_completed = 0
        self.phases_completed = 0
        self._built = False

    def build(self) -> None:
        """Create the alternating phase/call dependence chain."""
        if self._built:
            raise ConfigurationError("scenario already built")
        self._built = True
        prev: Task | None = None
        for p in range(self.phases):
            prev = self._main_phase(p, prev)
            prev = self._library_call(p, prev)

    def _main_phase(self, p: int, prev: Task | None) -> Task:
        deps = [prev] if prev is not None else []
        fan = [
            self.main.create_task(
                f"phase{p}.{j}",
                flops=self.main_flops,
                arithmetic_intensity=self.ai,
                depends_on=deps,
            )
            for j in range(self.main_tasks)
        ]

        def done(_t: Task) -> None:
            self.phases_completed += 1
            self.main.stats.report_progress("phases")

        return self.main.create_task(
            f"phase{p}.join",
            flops=self.main_flops * 0.1,
            arithmetic_intensity=self.ai,
            depends_on=fan,
            on_finish=done,
        )

    def _library_call(self, p: int, prev: Task | None) -> Task:
        deps = [prev] if prev is not None else []
        fan = [
            self.library.create_task(
                f"call{p}.{j}",
                flops=self.library_flops,
                arithmetic_intensity=self.ai,
                depends_on=deps,
            )
            for j in range(self.library_tasks)
        ]

        def done(_t: Task) -> None:
            self.calls_completed += 1
            self.library.stats.report_progress("calls")

        return self.library.create_task(
            f"call{p}.join",
            flops=self.library_flops * 0.1,
            arithmetic_intensity=self.ai,
            depends_on=fan,
            on_finish=done,
        )

    @property
    def finished(self) -> bool:
        """True when all phases and calls have completed."""
        return (
            self.phases_completed == self.phases
            and self.calls_completed == self.phases
        )
