"""The candidate-space layer shared by every allocation search.

Each search in :mod:`repro.core.optimizer` used to hand-roll its own
candidate enumeration: exhaustive search walked the node-symmetric
subspace, greedy built single-thread *additions*, hill climbing built
single-thread *transfers*, and annealing drew random transfer
proposals.  :class:`CandidateSpace` centralises all four enumerations —
plus the per-node *composition* neighbourhood the incremental searcher
in :mod:`repro.core.delta` climbs — so every consumer sees the same
move sets in the same order.

Enumeration order is a public contract, not an implementation detail:
the batched search paths pick winners with ``argmax`` (first maximum)
over a score vector and rely on that being the same candidate the
scalar paths keep with a strict ``>`` comparison, which is only true
because both paths enumerate identically.  The orders pinned here are
the ones ``tests/test_core_fasteval.py`` locked in when the fast paths
landed, and ``tests/test_core_candidates.py`` pins them against this
module directly:

* symmetric allocations follow
  :func:`~repro.core.policies.enumerate_node_compositions` (stars and
  bars);
* addition moves iterate ``(app, node)`` with apps outermost;
* transfer moves iterate ``(src, dst, node)`` with sources outermost;
* random proposals draw ``rng.integers(len(donors))`` over
  ``np.argwhere(counts > 0)`` and then ``rng.integers(len(choices))``
  over the non-donor apps — the exact draw sequence the annealing
  search has always used, so seeded runs replay bit-identically.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.policies import (
    enumerate_symmetric_allocations,
    symmetric_counts_tensor,
)
from repro.errors import AllocationError
from repro.machine.topology import MachineTopology

__all__ = ["CandidateSpace"]


class CandidateSpace:
    """Move and candidate enumerations for one ``(machine, apps)`` size.

    The space depends only on the machine topology and the *number* of
    applications; app identities stay with the caller.  All batch
    builders return fresh ``(B, apps, nodes)`` int64 tensors suitable
    for :meth:`~repro.core.model.NumaPerformanceModel.predict_scores`.
    """

    def __init__(self, machine: MachineTopology, num_apps: int) -> None:
        if num_apps <= 0:
            raise AllocationError(
                f"candidate space needs at least one app, got {num_apps}"
            )
        self.machine = machine
        self.num_apps = num_apps
        self.num_nodes = machine.num_nodes

    # -- the node-symmetric subspace ------------------------------------

    @property
    def symmetric(self) -> bool:
        """Whether the symmetric subspace exists (equal cores per node)."""
        return len(set(self.machine.cores_per_node)) == 1

    @property
    def cores_per_node(self) -> int:
        """The common per-node core count of a symmetric machine."""
        counts = set(self.machine.cores_per_node)
        if len(counts) != 1:
            raise AllocationError(
                "symmetric enumeration requires equal cores per node"
            )
        return counts.pop()

    def symmetric_size(self, *, require_full: bool = True) -> int:
        """Number of node-symmetric candidates, without enumerating them.

        Stars and bars: :math:`\\binom{C+A-1}{A-1}` full compositions of
        ``C`` cores over ``A`` apps, or :math:`\\binom{C+A}{A}` when
        partial occupations are allowed.
        """
        cores, apps = self.cores_per_node, self.num_apps
        if require_full:
            return math.comb(cores + apps - 1, apps - 1)
        return math.comb(cores + apps, apps)

    def symmetric_allocations(self, apps, *, require_full: bool = True):
        """Iterate the symmetric subspace as ``ThreadAllocation`` objects."""
        return enumerate_symmetric_allocations(
            self.machine, apps, require_full=require_full
        )

    def symmetric_tensor(self, *, require_full: bool = True) -> np.ndarray:
        """The symmetric subspace as one ``(B, apps, nodes)`` tensor.

        Row order matches :meth:`symmetric_allocations` exactly.
        """
        return symmetric_counts_tensor(
            self.machine, self.num_apps, require_full=require_full
        )

    # -- single-thread moves (asymmetric space) -------------------------

    def addition_moves(self, free: np.ndarray) -> list[tuple[int, int]]:
        """Every legal single-thread addition as ``(app, node)`` pairs.

        ``free`` is the per-node free-core vector; order is the greedy
        search's pinned ``(app, node)`` nesting, apps outermost.
        """
        return [
            (a, n)
            for a in range(self.num_apps)
            for n in range(self.num_nodes)
            if free[n] > 0
        ]

    def addition_batch(
        self, counts: np.ndarray, moves: list[tuple[int, int]]
    ) -> np.ndarray:
        """``counts`` after each addition move, stacked ``(B, A, N)``."""
        batch = np.repeat(counts[None], len(moves), axis=0)
        for k, (a, n) in enumerate(moves):
            batch[k, a, n] += 1
        return batch

    def thread_moves(self, counts: np.ndarray) -> list[tuple[int, int, int]]:
        """Every legal single-thread transfer as ``(src, dst, node)``.

        A transfer hands one thread of ``src`` on ``node`` to ``dst`` on
        the same node; order is the hill climb's pinned
        ``(src, dst, node)`` nesting.
        """
        return [
            (si, di, n)
            for si in range(self.num_apps)
            for di in range(self.num_apps)
            if si != di
            for n in range(self.num_nodes)
            if counts[si, n] > 0
        ]

    def move_batch(
        self, counts: np.ndarray, moves: list[tuple[int, int, int]]
    ) -> np.ndarray:
        """``counts`` after each transfer move, stacked ``(B, A, N)``."""
        batch = np.repeat(counts[None], len(moves), axis=0)
        for k, (si, di, n) in enumerate(moves):
            batch[k, si, n] -= 1
            batch[k, di, n] += 1
        return batch

    def random_move(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, int, int] | None:
        """One uniform random legal transfer, or ``None`` if none exists.

        Consumes exactly two ``rng.integers`` draws in the annealing
        search's pinned sequence (donor ``(app, node)`` first, then the
        destination app), so seeded annealing runs stay bit-identical
        across refactors.
        """
        donors = np.argwhere(counts > 0)
        if donors.size == 0:
            return None
        ai, n = donors[rng.integers(len(donors))]
        choices = [j for j in range(self.num_apps) if j != ai]
        if not choices:
            return None
        dj = choices[rng.integers(len(choices))]
        return int(ai), int(dj), int(n)

    # -- per-node compositions (the delta searcher's neighbourhood) -----

    def composition_of(self, counts: np.ndarray) -> np.ndarray | None:
        """The per-node composition ``counts`` replicates, or ``None``.

        Returns the length-``A`` vector ``c`` with ``counts[a, n] ==
        c[a]`` for every node when the allocation is node-symmetric;
        asymmetric allocations (different compositions on different
        nodes) return ``None``.
        """
        counts = np.asarray(counts)
        if counts.ndim != 2 or counts.shape != (
            self.num_apps,
            self.num_nodes,
        ):
            return None
        first = counts[:, 0]
        if np.all(counts == first[:, None]):
            return first.copy()
        return None

    def expand(self, comp: np.ndarray) -> np.ndarray:
        """Replicate a per-node composition on every node → ``(A, N)``."""
        comp = np.asarray(comp, dtype=np.int64)
        return np.repeat(comp[:, None], self.num_nodes, axis=1)

    def composition_moves(
        self, comp: np.ndarray, movable=None
    ) -> list[tuple[int, int]]:
        """Transfers of one per-node thread between apps, ``(src, dst)``.

        Each move shifts one thread per node from ``src`` to ``dst``
        (the allocation stays symmetric).  ``movable`` restricts the
        neighbourhood to moves *touching* the given app indices — the
        O(delta) restriction the incremental searcher climbs with.
        """
        apps = range(self.num_apps)
        allowed = None if movable is None else set(movable)
        return [
            (i, j)
            for i in apps
            for j in apps
            if i != j
            and comp[i] > 0
            and (allowed is None or i in allowed or j in allowed)
        ]

    def composition_batch(
        self, comp: np.ndarray, moves: list[tuple[int, int]]
    ) -> np.ndarray:
        """Expanded ``(B, A, N)`` candidates after each composition move."""
        comps = np.repeat(
            np.asarray(comp, dtype=np.int64)[None], len(moves), axis=0
        )
        for k, (i, j) in enumerate(moves):
            comps[k, i] -= 1
            comps[k, j] += 1
        return np.repeat(comps[:, :, None], self.num_nodes, axis=2)

    def composition_additions(self, comp: np.ndarray) -> list[int]:
        """Apps that can take one more per-node thread (free cores left)."""
        if int(np.sum(comp)) >= self.cores_per_node:
            return []
        return list(range(self.num_apps))

    def addition_composition_batch(
        self, comp: np.ndarray, apps_idx: list[int]
    ) -> np.ndarray:
        """Expanded ``(B, A, N)`` candidates after each ``+1`` addition."""
        comps = np.repeat(
            np.asarray(comp, dtype=np.int64)[None], len(apps_idx), axis=0
        )
        for k, i in enumerate(apps_idx):
            comps[k, i] += 1
        return np.repeat(comps[:, :, None], self.num_nodes, axis=2)
