"""End-to-end chaos scenarios behind ``python -m repro chaos``.

Each preset builds a full Figure 1 deployment — runtimes on the
simulated machine, the hardened agent, injection proxies on the wire —
runs it with faults enabled, and condenses the outcome into a
:class:`RecoveryReport` whose ``passed`` flag encodes the scenario's
recovery criteria:

* ``crash-one`` — one of two runtimes crashes mid-run.  Pass: the agent
  quarantines the dead runtime within 3 rounds of the first missed
  report, redistributes its cores, and machine utilisation recovers to
  >= 90% of the no-fault steady state.
* ``flaky-reports`` — both runtimes drop, replay, and delay reports
  probabilistically.  Pass: the paper's producer-consumer pipeline still
  completes, the agent visibly retried, and no healthy runtime was
  quarantined.
* ``lossy-links`` — the network loses and duplicates messages.  Pass:
  every message gets through a :class:`ReliableChannel` within its
  retransmit budget, and the pipeline completes although commands are
  being dropped and delayed on the wire.

Everything is seeded; the same ``(scenario, seed)`` pair replays the
same faults, retries, and recovery, which is what makes the CI smoke job
(``python -m repro chaos crash-one --seed 0``) meaningful.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.errors import FaultError, SimulationError
from repro.faults.chaos import ChaosConfig
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.proxy import InjectionProxy

__all__ = ["RecoveryReport", "SCENARIOS", "run_scenario"]


@dataclass(frozen=True)
class RecoveryReport:
    """Condensed outcome of one chaos scenario run."""

    scenario: str
    seed: int
    passed: bool
    rounds: int
    faults_injected: int
    retries: int
    quarantined: tuple[str, ...]
    quarantine_rounds: int | None
    baseline_utilization: float
    final_utilization: float
    recovery_ratio: float
    degraded_rounds: int
    notes: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """Plain-dict form (the ``--json`` record)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "passed": self.passed,
            "rounds": self.rounds,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "quarantined": list(self.quarantined),
            "quarantine_rounds": self.quarantine_rounds,
            "baseline_utilization": self.baseline_utilization,
            "final_utilization": self.final_utilization,
            "recovery_ratio": self.recovery_ratio,
            "degraded_rounds": self.degraded_rounds,
            "notes": list(self.notes),
        }

    def to_json(self) -> str:
        """The report as a JSON object."""
        return json.dumps(self.to_dict(), indent=2)

    def format(self) -> str:
        """Human-readable recovery report."""
        lines = [
            f"chaos scenario: {self.scenario} (seed {self.seed})",
            f"  agent rounds:        {self.rounds}",
            f"  faults injected:     {self.faults_injected}",
            f"  report retries:      {self.retries}",
            f"  degraded rounds:     {self.degraded_rounds}",
        ]
        if self.quarantined:
            rounds = (
                f" after {self.quarantine_rounds} round(s)"
                if self.quarantine_rounds is not None
                else ""
            )
            lines.append(
                f"  quarantined:         "
                f"{', '.join(self.quarantined)}{rounds}"
            )
        else:
            lines.append("  quarantined:         none")
        lines.append(
            f"  utilisation:         baseline "
            f"{self.baseline_utilization:.3f} -> final "
            f"{self.final_utilization:.3f} "
            f"(recovery {self.recovery_ratio:.1%})"
        )
        lines.extend(f"  {note}" for note in self.notes)
        lines.append(f"  result:              {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shared scaffolding
# ----------------------------------------------------------------------
def _mean(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def _utilization_stats(agent) -> tuple[float, float, float]:
    """(baseline, final, ratio) machine utilisation from agent samples.

    Baseline is the pre-fault steady state (rounds 3..6, skipping the
    start-up transient); final is the mean of the last five rounds.
    """
    utils = [d.load.machine_utilization for d in agent.decisions]
    if len(utils) < 8:
        return 0.0, 0.0, 0.0
    baseline = _mean(utils[2:6])
    final = _mean(utils[-5:])
    ratio = final / baseline if baseline > 0 else 0.0
    return baseline, final, ratio


def _retries(agent) -> int:
    return sum(h.retries for h in agent.health.values())


def _quarantine_latency(agent, name: str) -> int | None:
    """Rounds from the first missed report of ``name`` to quarantine."""
    first_failure = None
    for i, d in enumerate(agent.decisions):
        if first_failure is None and name in d.failures:
            first_failure = i
        if name in d.quarantined:
            return i - (first_failure if first_failure is not None else i) + 1
    return None


def _compute_runtimes(executor, names, tasks, flops=0.05, ai=50.0):
    """Start one compute-bound OCR-Vx runtime per name, pre-filled with
    enough uniform tasks to keep the machine busy for the whole run."""
    from repro.runtime import OCRVxRuntime

    runtimes = []
    for name in names:
        rt = OCRVxRuntime(name, executor)
        rt.start()
        for i in range(tasks):
            rt.create_task(f"{name}{i}", flops, ai)
        runtimes.append(rt)
    return runtimes


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
def _crash_one(seed: int) -> RecoveryReport:
    """Two cooperating runtimes; one crashes and halts mid-run."""
    from repro.agent import Agent, FairShareStrategy, OcrVxEndpoint
    from repro.machine import model_machine
    from repro.sim import ExecutionSimulator

    ex = ExecutionSimulator(model_machine())
    alive, victim = _compute_runtimes(ex, ["alive", "victim"], tasks=3000)
    agent = Agent(ex, FairShareStrategy(), period=0.01)
    plan = FaultPlan(
        [FaultSpec(FaultKind.CRASH, target="victim", at=0.065)]
    )
    agent.register(InjectionProxy(OcrVxEndpoint(alive), ex.sim))
    agent.register(
        InjectionProxy(
            OcrVxEndpoint(victim), ex.sim, plan=plan, on_crash=victim.stop
        )
    )
    agent.start()
    ex.run(0.25)

    baseline, final, ratio = _utilization_stats(agent)
    latency = _quarantine_latency(agent, "victim")
    injected = sum(
        len(ep.injected)
        for ep in agent.endpoints.values()
        if isinstance(ep, InjectionProxy)
    )
    quarantined = tuple(agent.quarantined_endpoints)
    passed = (
        quarantined == ("victim",)
        and latency is not None
        and latency <= 3
        and ratio >= 0.9
    )
    return RecoveryReport(
        scenario="crash-one",
        seed=seed,
        passed=passed,
        rounds=agent.rounds,
        faults_injected=injected,
        retries=_retries(agent),
        quarantined=quarantined,
        quarantine_rounds=latency,
        baseline_utilization=baseline,
        final_utilization=final,
        recovery_ratio=ratio,
        degraded_rounds=sum(1 for d in agent.decisions if d.degraded),
        notes=(
            "criteria: quarantine within 3 rounds, utilisation "
            "recovers to >= 90% of the pre-crash steady state",
        ),
    )


def _pipeline_run(seed: int, chaos: ChaosConfig, *, quarantine_after: int):
    """Producer-consumer pipeline with chaos on both endpoints.

    Returns ``(agent, scenario, proxies, finish_time)`` for the caller
    to assess.
    """
    from repro.agent import Agent, OcrVxEndpoint, ProducerConsumerAlignment
    from repro.agent.resilience import ResiliencePolicy
    from repro.apps import ProducerConsumerScenario
    from repro.machine import model_machine
    from repro.runtime import OCRVxRuntime
    from repro.sim import ExecutionSimulator

    ex = ExecutionSimulator(model_machine())
    producer = OCRVxRuntime("producer", ex)
    consumer = OCRVxRuntime("consumer", ex)
    producer.start()
    consumer.start()
    scenario = ProducerConsumerScenario(
        ex,
        producer,
        consumer,
        iterations=40,
        tasks_per_iteration=8,
        producer_flops=0.004,
        consumer_flops=0.012,
    )
    scenario.build()
    agent = Agent(
        ex,
        ProducerConsumerAlignment(
            "producer", "consumer", max_lead=3.0, min_lead=1.0
        ),
        period=0.005,
        resilience=ResiliencePolicy(quarantine_after=quarantine_after),
    )
    proxies = [
        InjectionProxy(OcrVxEndpoint(producer), ex.sim, chaos=chaos),
        InjectionProxy(OcrVxEndpoint(consumer), ex.sim, chaos=chaos),
    ]
    for proxy in proxies:
        agent.register(proxy)
    agent.start()
    try:
        end = ex.run_until_condition(lambda: scenario.finished, max_time=60.0)
    except SimulationError:
        end = ex.sim.now  # pipeline stalled; the report will say FAIL
    return agent, scenario, proxies, end


def _flaky_reports(seed: int) -> RecoveryReport:
    """Reports drop, replay stale, and commands go missing — ambient noise."""
    chaos = ChaosConfig(
        report_failure=0.15,
        report_stale=0.15,
        command_drop=0.10,
        command_delay=0.05,
        delay=0.002,
        seed=seed,
    )
    agent, scenario, proxies, end = _pipeline_run(
        seed, chaos, quarantine_after=5
    )
    baseline, final, ratio = _utilization_stats(agent)
    injected = sum(len(p.injected) for p in proxies)
    retries = _retries(agent)
    quarantined = tuple(agent.quarantined_endpoints)
    passed = (
        scenario.finished
        and retries > 0
        and injected > 0
        and not quarantined
    )
    return RecoveryReport(
        scenario="flaky-reports",
        seed=seed,
        passed=passed,
        rounds=agent.rounds,
        faults_injected=injected,
        retries=retries,
        quarantined=quarantined,
        quarantine_rounds=None,
        baseline_utilization=baseline,
        final_utilization=final,
        recovery_ratio=ratio,
        degraded_rounds=sum(1 for d in agent.decisions if d.degraded),
        notes=(
            f"pipeline finished at t={end:.3f}s despite flaky reporting",
            "criteria: pipeline completes, agent retried, no healthy "
            "runtime quarantined",
        ),
    )


def _lossy_links(seed: int) -> RecoveryReport:
    """Message loss on the wire: retransmit budgets plus dropped commands."""
    from repro.distributed.messaging import LossyNetworkModel, ReliableChannel

    network = LossyNetworkModel(
        loss_rate=0.2, duplication_rate=0.05
    )
    channel = ReliableChannel(network, max_retransmits=6, seed=seed)
    results = [channel.send(1e6) for _ in range(300)]
    all_delivered = all(r.delivered for r in results)

    chaos = ChaosConfig(
        command_drop=0.25,
        command_delay=0.10,
        delay=0.002,
        seed=seed,
    )
    agent, scenario, proxies, end = _pipeline_run(
        seed, chaos, quarantine_after=5
    )
    baseline, final, ratio = _utilization_stats(agent)
    injected = sum(len(p.injected) for p in proxies)
    command_faults = sum(
        1
        for p in proxies
        for f in p.injected
        if f.kind in (FaultKind.DROP_COMMAND, FaultKind.DELAY_COMMAND)
    )
    passed = (
        all_delivered
        and channel.retransmits > 0
        and scenario.finished
        and command_faults > 0
    )
    return RecoveryReport(
        scenario="lossy-links",
        seed=seed,
        passed=passed,
        rounds=agent.rounds,
        faults_injected=injected,
        retries=_retries(agent),
        quarantined=tuple(agent.quarantined_endpoints),
        quarantine_rounds=None,
        baseline_utilization=baseline,
        final_utilization=final,
        recovery_ratio=ratio,
        degraded_rounds=sum(1 for d in agent.decisions if d.degraded),
        notes=(
            f"channel: {channel.delivered}/{channel.sent} delivered, "
            f"{channel.retransmits} retransmits, "
            f"{channel.duplicates} duplicates "
            f"(budget {channel.max_retransmits})",
            f"pipeline finished at t={end:.3f}s with "
            f"{command_faults} command(s) dropped or delayed",
            "criteria: every message within budget, pipeline completes "
            "under command loss",
        ),
    )


def _serve_crash(seed: int) -> RecoveryReport:
    """Chaos against the live allocation service (:mod:`repro.serve`).

    Three applications churn against a running service; one crashes
    mid-run (scripted CRASH fault) and another has half its allocation
    commands silently dropped on the wire (ambient chaos).  Pass: the
    service's watchdog quarantines the crashed session, the dropped
    commands are recovered by the at-least-once re-push loop (the
    flaky runtime's last *applied* allocation equals the service's
    current answer), and the final allocation for the surviving
    workload is byte-identical to the offline optimizer's.

    The utilisation columns of the report are repurposed: baseline is
    the offline optimizer's score, final is the live service's score,
    so ``recovery_ratio == 1.0`` means byte-identical recovery.
    """
    from repro.core.model import NumaPerformanceModel
    from repro.core.optimizer import ExhaustiveSearch
    from repro.core.spec import AppSpec
    from repro.machine import model_machine
    from repro.serve.scenarios import ChurnEvent, ReplayDriver
    from repro.serve.service import ServiceConfig

    driver = ReplayDriver(
        ServiceConfig(
            machine=model_machine(),
            debounce=0.01,
            report_interval=0.02,
        )
    )
    plan = FaultPlan(
        [FaultSpec(FaultKind.CRASH, target="victim", at=0.25)]
    )
    chaos = ChaosConfig(command_drop=0.5, seed=seed)
    proxies: dict[str, InjectionProxy] = {}

    def wrap(endpoint):
        if endpoint.name == "victim":
            proxy = InjectionProxy(endpoint, driver.sim, plan=plan)
        elif endpoint.name == "flaky":
            proxy = InjectionProxy(endpoint, driver.sim, chaos=chaos)
        else:
            return endpoint
        proxies[endpoint.name] = proxy
        return proxy

    driver.wrap = wrap
    events = [
        ChurnEvent(0.00, "join", "steady", AppSpec.memory_bound("steady")),
        ChurnEvent(0.05, "join", "flaky", AppSpec.compute_bound("flaky")),
        ChurnEvent(
            0.10,
            "join",
            "victim",
            AppSpec.memory_bound("victim", arithmetic_intensity=0.8),
        ),
    ]
    driver.run(events, duration=0.8)

    service = driver.service
    quarantined = tuple(
        s.name for s in service.registry.live_sessions() if not s.active
    )
    injected = sum(len(p.injected) for p in proxies.values())
    drops = sum(
        1
        for p in proxies.values()
        for f in p.injected
        if f.kind is FaultKind.DROP_COMMAND
    )
    survivors = service.registry.active_specs()
    offline = ExhaustiveSearch(NumaPerformanceModel()).search(
        model_machine(), survivors
    )
    final_score = service.current_score()
    flaky_applied = driver.sessions["flaky"].runtime.current_per_node
    converged = flaky_applied == service.current_allocation().get("flaky")
    matches = final_score == offline.score and all(
        tuple(int(x) for x in offline.allocation.threads_of(s.name))
        == service.current_allocation().get(s.name)
        for s in survivors
    )
    passed = (
        quarantined == ("victim",)
        and drops > 0
        and service.retransmits > 0
        and converged
        and matches
    )
    ratio = (
        final_score / offline.score
        if final_score is not None and offline.score
        else 0.0
    )
    return RecoveryReport(
        scenario="serve-crash",
        seed=seed,
        passed=passed,
        rounds=service.reoptimizations,
        faults_injected=injected,
        retries=service.retransmits,
        quarantined=quarantined,
        quarantine_rounds=None,
        baseline_utilization=offline.score,
        final_utilization=final_score or 0.0,
        recovery_ratio=ratio,
        degraded_rounds=service.degraded_reoptimizations,
        notes=(
            f"{drops} allocation command(s) dropped on the wire, "
            f"{service.retransmits} retransmit(s) by the re-push loop",
            "scores shown in the utilisation columns: offline optimizer "
            "(baseline) vs live service (final)",
            "criteria: crashed session quarantined, dropped commands "
            "recovered, final allocation byte-identical to offline",
        ),
    )


#: Scenario name -> builder; each returns a :class:`RecoveryReport`.
SCENARIOS: dict[str, Callable[[int], RecoveryReport]] = {
    "crash-one": _crash_one,
    "flaky-reports": _flaky_reports,
    "lossy-links": _lossy_links,
    "serve-crash": _serve_crash,
}


def run_scenario(name: str, seed: int = 0) -> RecoveryReport:
    """Run one chaos preset by name."""
    if name not in SCENARIOS:
        raise FaultError(
            f"unknown chaos scenario '{name}' "
            f"(choose from {sorted(SCENARIOS)})"
        )
    return SCENARIOS[name](seed)
