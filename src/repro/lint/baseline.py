"""The findings baseline: a committed ratchet over lint debt.

``lint-baseline.json`` records, per ``<file>::<rule_id>`` key, how many
findings existed when the baseline was last updated.  A check run
subtracts the baseline: within each key the first ``count`` findings
(by line) are suppressed as known debt, anything beyond is *new* and
fails the run.  Fixing findings makes keys shrink; ``--update-baseline``
re-writes the file so the lower count becomes the new ceiling — the
ratchet only ever tightens unless a human commits a bigger baseline.

Counts, not line numbers, keep the baseline stable under unrelated
edits: moving a function does not churn the file, adding a second
violation of the same rule to the same file does trip it.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

from repro.errors import LintError
from repro.lint.engine import Violation

__all__ = [
    "BASELINE_FILENAME",
    "baseline_key",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

#: Default baseline path, relative to the project root.
BASELINE_FILENAME = "lint-baseline.json"


def baseline_key(violation: Violation) -> str:
    """The ratchet key of one finding: ``<file>::<rule_id>``."""
    return f"{violation.file}::{violation.rule_id}"


def load_baseline(path: Path | str) -> dict[str, int]:
    """Read a baseline file into its key -> count map."""
    p = Path(path)
    try:
        raw = json.loads(p.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {p}: {exc}") from exc
    except ValueError as exc:
        raise LintError(f"baseline {p} is not valid JSON: {exc}") from exc
    counts = raw.get("counts") if isinstance(raw, dict) else None
    if not isinstance(counts, dict):
        raise LintError(f"baseline {p} has no 'counts' object")
    return {str(k): int(v) for k, v in counts.items()}


def write_baseline(
    violations: Sequence[Violation], path: Path | str
) -> dict[str, int]:
    """Write the baseline matching ``violations``; returns its counts."""
    counts: dict[str, int] = {}
    for v in violations:
        key = baseline_key(v)
        counts[key] = counts.get(key, 0) + 1
    document = {
        "comment": (
            "Known lint debt, counted per file::rule. Regenerate with "
            "'python -m repro check src/ --update-baseline'; CI fails "
            "when any count grows."
        ),
        "counts": dict(sorted(counts.items())),
    }
    target = Path(path)
    # Temp+rename (IO001): a crash mid-write must not leave a torn
    # baseline that poisons every later check run.
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=".repro-baseline."
    )
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    os.replace(tmp, target)
    return counts


def apply_baseline(
    violations: Sequence[Violation], baseline: dict[str, int]
) -> tuple[list[Violation], int, list[str]]:
    """Subtract the baseline from a findings list.

    Returns ``(new, suppressed_count, fixed_keys)``: findings beyond
    each key's baseline count (these fail the run), how many findings
    the baseline absorbed, and baseline keys whose debt has shrunk or
    vanished (candidates for ``--update-baseline``).
    """
    per_key: dict[str, list[Violation]] = {}
    for v in sorted(violations, key=lambda v: (v.file, v.line, v.rule_id)):
        per_key.setdefault(baseline_key(v), []).append(v)
    new: list[Violation] = []
    suppressed = 0
    for key, found in per_key.items():
        allowed = baseline.get(key, 0)
        suppressed += min(allowed, len(found))
        new.extend(found[allowed:])
    fixed = sorted(
        key
        for key, allowed in baseline.items()
        if len(per_key.get(key, ())) < allowed
    )
    new.sort(key=lambda v: (v.file, v.line, v.rule_id))
    return new, suppressed, fixed
