"""Section II claim: avoiding over-subscription helps only marginally.

Two applications each start one worker per core (2x over-subscription);
the fair-share configuration blocks half of each application's workers.
The paper reports "only marginal (a few percent) improvement in
performance" from avoiding over-subscription — the benchmark pins that
band.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_oversubscription, sweep


def test_bench_oversubscription(benchmark):
    res = benchmark.pedantic(
        run_oversubscription, kwargs={"duration": 0.25}, rounds=1,
        iterations=1,
    )
    emit(
        "Over-subscription vs fair share (Section II)",
        render_table(
            ["configuration", "GFLOPS"],
            [
                ["2x over-subscribed", res.oversubscribed_gflops],
                ["fair share (agent)", res.fair_share_gflops],
            ],
        )
        + f"\nimprovement: {res.improvement * 100:.1f}%",
    )
    assert res.fair_share_gflops > res.oversubscribed_gflops
    assert res.improvement < 0.10  # "a few percent", not a blowout


def test_bench_oversubscription_penalty_sweep(benchmark):
    """Ablation: how the result depends on the context-switch penalty."""

    def run():
        return sweep(
            lambda context_switch_penalty: run_oversubscription(
                context_switch_penalty=context_switch_penalty,
                duration=0.1,
            ).improvement,
            {"context_switch_penalty": [0.0, 0.03, 0.10]},
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Over-subscription improvement vs context-switch penalty",
        render_table(
            ["cs penalty", "fair-share improvement [%]"],
            [
                [r.params["context_switch_penalty"], r.result * 100]
                for r in records
            ],
        ),
    )
    gains = [r.result for r in records]
    # More switching cost -> larger benefit from avoiding it.
    assert gains == sorted(gains)
