"""Deterministic fault schedules: what breaks, where, and when.

A :class:`FaultPlan` is an immutable, time-ordered list of
:class:`FaultSpec` entries, each naming a *target* endpoint, a
:class:`FaultKind`, and an activation time on the shared discrete-event
clock.  Plans carry no mutable state — the
:class:`~repro.faults.proxy.InjectionProxy` that executes a plan tracks
which one-shot faults it has consumed — so one plan can drive any number
of identical runs, which is what makes chaos experiments reproducible.

The vocabulary covers the coordination failures the paper's Figure 1
architecture must survive:

========================  ====================================================
kind                      effect on the wrapped endpoint
========================  ====================================================
``CRASH``                 permanently unreachable from ``at`` on
``HANG``                  unreachable during ``[at, at + duration)``
``STALE_REPORT``          replays the last cached report during the window
``CORRUPT_REPORT``        the next ``count`` reports are garbage
``DROP_COMMAND``          the next ``count`` commands vanish silently
``DELAY_COMMAND``         commands in the window apply ``delay`` seconds late
``SLOWDOWN``              reported CPU load scaled by ``factor`` in the window
``TORN_TAIL``             a partial record is appended to the journal tail
``STALE_SNAPSHOT``        the newest journal snapshot is corrupted on disk
``DUPLICATE_SEGMENT``     the newest journal segment is duplicated on disk
========================  ====================================================

The last three are *journal-level* faults: their target is a
:mod:`repro.serve.persist` journal directory (not an endpoint), they
fire exactly once at ``at``, and they are applied to the on-disk files
by :func:`repro.faults.journal.apply_journal_fault` — modelling what a
mid-append power loss, silent snapshot corruption, or a
half-completed copy during operator intervention leave behind.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import FaultError

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(enum.Enum):
    """The failure vocabulary of the injection layer."""

    CRASH = "crash"
    HANG = "hang"
    STALE_REPORT = "stale-report"
    CORRUPT_REPORT = "corrupt-report"
    DROP_COMMAND = "drop-command"
    DELAY_COMMAND = "delay-command"
    SLOWDOWN = "slowdown"
    TORN_TAIL = "torn-tail"
    STALE_SNAPSHOT = "stale-snapshot"
    DUPLICATE_SEGMENT = "duplicate-segment"


#: Kinds whose effect lasts for ``duration`` seconds from ``at``.
_WINDOWED = frozenset(
    {
        FaultKind.HANG,
        FaultKind.STALE_REPORT,
        FaultKind.DELAY_COMMAND,
        FaultKind.SLOWDOWN,
    }
)

#: Kinds that consume ``count`` occurrences once active.
_COUNTED = frozenset({FaultKind.CORRUPT_REPORT, FaultKind.DROP_COMMAND})

#: One-shot journal-directory faults (``target`` is a directory path,
#: applied to disk by :func:`repro.faults.journal.apply_journal_fault`).
_JOURNAL = frozenset(
    {
        FaultKind.TORN_TAIL,
        FaultKind.STALE_SNAPSHOT,
        FaultKind.DUPLICATE_SEGMENT,
    }
)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        What breaks (:class:`FaultKind`).
    target:
        Name of the endpoint the fault applies to — or, for the
        journal kinds (``TORN_TAIL``, ``STALE_SNAPSHOT``,
        ``DUPLICATE_SEGMENT``), the journal directory path.
    at:
        Activation time (seconds, simulation clock).
    duration:
        Length of the effect window for windowed kinds (``HANG``,
        ``STALE_REPORT``, ``DELAY_COMMAND``, ``SLOWDOWN``).
    count:
        Occurrences consumed for counted kinds (``CORRUPT_REPORT``,
        ``DROP_COMMAND``).
    delay:
        Added latency for ``DELAY_COMMAND``.
    factor:
        Degradation factor for ``SLOWDOWN`` (reported load multiplier,
        in ``(0, 1]``).
    """

    kind: FaultKind
    target: str
    at: float
    duration: float = 0.0
    count: int = 1
    delay: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise FaultError(f"kind must be a FaultKind, got {self.kind!r}")
        if not self.target:
            raise FaultError("fault target must be a non-empty endpoint name")
        if not math.isfinite(self.at) or self.at < 0:
            raise FaultError(f"fault time must be finite and >= 0: {self.at}")
        if self.duration < 0:
            raise FaultError(f"duration must be >= 0, got {self.duration}")
        if self.kind in _WINDOWED and self.duration <= 0:
            raise FaultError(
                f"{self.kind.value} needs a positive 'duration'"
            )
        if self.count < 1:
            raise FaultError(f"count must be >= 1, got {self.count}")
        if self.kind is FaultKind.DELAY_COMMAND and self.delay <= 0:
            raise FaultError("DELAY_COMMAND needs a positive 'delay'")
        if self.delay < 0:
            raise FaultError(f"delay must be >= 0, got {self.delay}")
        if self.kind is FaultKind.SLOWDOWN and not 0 < self.factor <= 1:
            raise FaultError(
                f"SLOWDOWN factor must be in (0, 1], got {self.factor}"
            )
        if self.kind in _JOURNAL and self.duration > 0:
            raise FaultError(
                f"{self.kind.value} is a one-shot journal fault; "
                f"'duration' does not apply"
            )

    # ------------------------------------------------------------------
    def active(self, now: float) -> bool:
        """Whether the fault's effect covers simulation time ``now``.

        ``CRASH`` is permanent; windowed kinds cover ``[at, at +
        duration)``; counted kinds are "active" from ``at`` on — the
        proxy decides how many occurrences remain.  Journal kinds are
        one-shot: "active" from ``at`` on, consumed when
        :func:`~repro.faults.journal.apply_journal_fault` applies them.
        """
        if now < self.at:
            return False
        if (
            self.kind is FaultKind.CRASH
            or self.kind in _COUNTED
            or self.kind in _JOURNAL
        ):
            return True
        return now < self.at + self.duration


class FaultPlan:
    """An immutable, time-ordered fault schedule.

    Build one with the constructor or incrementally with :meth:`add`
    (which returns a *new* plan — plans are value objects)::

        plan = FaultPlan([
            FaultSpec(FaultKind.CRASH, target="b", at=0.055),
        ])
    """

    def __init__(self, faults: Iterable[FaultSpec] = ()) -> None:
        specs = list(faults)
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise FaultError(
                    f"FaultPlan entries must be FaultSpec, got {spec!r}"
                )
        # Stable sort keeps insertion order among simultaneous faults.
        self._specs: tuple[FaultSpec, ...] = tuple(
            sorted(specs, key=lambda s: s.at)
        )

    def add(self, spec: FaultSpec) -> "FaultPlan":
        """A new plan with ``spec`` included."""
        return FaultPlan(self._specs + (spec,))

    def for_target(self, name: str) -> tuple[FaultSpec, ...]:
        """The sub-schedule applying to endpoint ``name``."""
        return tuple(s for s in self._specs if s.target == name)

    @property
    def specs(self) -> tuple[FaultSpec, ...]:
        """All faults, time-ordered."""
        return self._specs

    def targets(self) -> tuple[str, ...]:
        """Distinct endpoint names the plan touches, sorted."""
        return tuple(sorted({s.target for s in self._specs}))

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self._specs)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self._specs)!r})"
