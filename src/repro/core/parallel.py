"""Process-parallel candidate scoring over shared-memory score tensors.

The batched fast path (:mod:`repro.core.fasteval`) made one model
evaluation cheap; the incremental searcher (:mod:`repro.core.delta`)
made steady-state churn O(delta).  What remains expensive are the
*full* searches — cold starts, asymmetric machines, and high-churn
fall-backs still score the whole candidate space (24,310 candidates
for ten apps on the model machine) on a single core.  This module is
that last raw-speed lever: a persistent pool of worker *processes*
that shards candidate scoring by range, so a full-space evaluation
drops by the core count.

Design
------
* **Shared-memory tensors, zero pickling.**  The ``(B, apps, nodes)``
  counts tensor, the per-workload :class:`~repro.core.fasteval.
  ModelTables` arrays, and the ``(B, apps)`` output GFLOPS matrix all
  live in :mod:`multiprocessing.shared_memory` blocks.  A task message
  is a tuple of block names and range bounds; workers score their
  slice in place and never send an ndarray through a queue.
* **Deterministic sharding.**  :func:`chunk_bounds` splits ``B``
  candidates into at most ``workers`` contiguous ranges whose sizes
  differ by at most one — a pure function of ``(B, workers)``.  Every
  model operation is row-independent, so ``batched_app_gflops`` over a
  slice is byte-identical to the same rows of a whole-batch call, and
  the parent's single ``argmax`` over the merged score vector resolves
  ties to the lowest enumeration index exactly like the serial path.
  Results are **byte-identical for any worker count** — pinned by
  ``tests/test_core_parallel.py`` for workers in {0, 1, 2, 4} under
  both ``fork`` and ``spawn`` start methods.
* **Persistent, lazily spawned pool.**  Spawning costs hundreds of
  milliseconds; a search round trip must not pay it.  Pools live in a
  process-wide registry (:func:`get_pool`), spawn on first use, and
  are reused across searches and services.  :func:`shutdown_pools`
  (also registered ``atexit``) tears them down; the allocation
  service's drain/crash paths release theirs, and a recovered service
  simply respawns on its next big batch.
* **Graceful degradation.**  No ``/dev/shm`` (some containers), a
  failed spawn, a crashed worker, or a timeout never raises into a
  search: :func:`parallel_app_gflops` returns ``None``, bumps the
  ``parallel/fallbacks`` counter, and the caller takes the serial
  fast path (:class:`~repro.errors.ParallelError` stays internal).

Observability: one ``parallel/search`` span per pooled scoring call
(attrs ``workers``, ``chunks``, ``evaluations``), the
``parallel/workers`` gauge, ``parallel/chunks`` + ``parallel/
fallbacks`` counters, and a ``parallel/chunk_ms`` histogram of
worker-side chunk wall times.  See ``docs/PERFORMANCE.md`` ("Process
parallelism") for when workers help and when they hurt.
"""

from __future__ import annotations

import atexit
import os
import queue as queue_mod
import time
import traceback
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.core.fasteval import (
    ModelTables,
    batched_app_gflops,
    check_oversubscription,
)
from repro.errors import ParallelError
from repro.obs import OBS, CounterHandle, GaugeHandle, HistogramHandle

__all__ = [
    "DEFAULT_MIN_BATCH",
    "WorkerPool",
    "chunk_bounds",
    "default_workers",
    "get_pool",
    "parallel_app_gflops",
    "pool_stats",
    "release_pool",
    "shared_memory_available",
    "shutdown_pools",
]

#: Batches smaller than this score serially by default: a pool round
#: trip costs on the order of a millisecond, which only amortises over
#: large candidate spaces (hill-climb neighbourhoods stay serial, the
#: 24k-candidate exhaustive tensor goes parallel).
DEFAULT_MIN_BATCH = 1024

#: Environment variable read by :func:`default_workers`.
WORKERS_ENV = "REPRO_WORKERS"

# Hot-path metric handles (PERF001: hoisted out of the scoring loop).
_WORKERS_GAUGE = GaugeHandle("parallel/workers")
_CHUNKS = CounterHandle("parallel/chunks")
_FALLBACKS = CounterHandle("parallel/fallbacks")
_CHUNK_MS = HistogramHandle("parallel/chunk_ms")

#: Fields of :class:`ModelTables` shipped to workers, in block order.
_TABLE_FIELDS = (
    "route_per_thread",
    "local_demand",
    "peak_per_thread",
    "intensity",
    "link",
    "node_capacity",
    "cores_per_node",
)


def default_workers() -> int:
    """Worker count from the ``REPRO_WORKERS`` environment variable.

    Unset, empty, non-numeric, or negative values mean ``0`` (serial).
    This is the default every :class:`~repro.core.model.
    NumaPerformanceModel` starts from, which is how one environment
    variable turns the whole test/serve stack process-parallel.
    """
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 0
    try:
        workers = int(raw)
    except ValueError:
        return 0
    return max(workers, 0)


def chunk_bounds(n: int, workers: int) -> list[tuple[int, int]]:
    """Deterministic ``[lo, hi)`` shards of ``n`` rows over ``workers``.

    A pure function of ``(n, workers)``: at most ``workers`` contiguous,
    non-empty ranges covering ``0..n`` in order, sizes differing by at
    most one (earlier chunks take the remainder).  ``n == 0`` returns no
    chunks; ``n < workers`` returns ``n`` single-row chunks.  The
    enumeration-order contract holds because chunks partition the batch
    *in order* — concatenating worker outputs reproduces the serial row
    order exactly.
    """
    if n < 0:
        raise ParallelError(f"cannot chunk a negative batch ({n})")
    if workers <= 0:
        raise ParallelError(f"chunking needs >= 1 worker, got {workers}")
    parts = min(n, workers)
    if parts == 0:
        return []
    base, extra = divmod(n, parts)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for k in range(parts):
        hi = lo + base + (1 if k < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


_SHM_PROBE: bool | None = None


def shared_memory_available() -> bool:
    """Whether POSIX shared memory works here (cached one-shot probe).

    ``/dev/shm``-less containers raise on the first ``SharedMemory``
    create; remembering the answer keeps the degraded path cheap (no
    per-batch retry storm).
    """
    global _SHM_PROBE
    if _SHM_PROBE is None:
        try:
            block = shared_memory.SharedMemory(create=True, size=8)
            block.close()
            block.unlink()
            _SHM_PROBE = True
        except (OSError, ValueError):
            _SHM_PROBE = False
    return _SHM_PROBE


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach a worker to one of the parent's existing blocks.

    On this Python version attaching re-registers the segment with the
    resource tracker; workers share the parent's tracker process, so
    the registration is an idempotent no-op and ownership stays where
    it belongs — the creating (parent) side unlinks exactly once.
    """
    return shared_memory.SharedMemory(name=name)


def _pack_tables(
    tables: ModelTables,
) -> tuple[bytes, list[tuple[str, str, tuple[int, ...], int, int]]]:
    """Serialise the tables arrays into (payload bytes, field metadata).

    Metadata rows are ``(field, dtype, shape, offset, nbytes)``; every
    array is stored C-contiguous so a worker can rebuild zero-copy
    views over one shared block.
    """
    payload = bytearray()
    meta: list[tuple[str, str, tuple[int, ...], int, int]] = []
    for field in _TABLE_FIELDS:
        arr = np.ascontiguousarray(getattr(tables, field))
        offset = len(payload)
        payload.extend(arr.tobytes())
        meta.append(
            (field, arr.dtype.str, tuple(arr.shape), offset, arr.nbytes)
        )
    return bytes(payload), meta


def _unpack_tables(buf, meta) -> ModelTables:
    """Rebuild a :class:`ModelTables` of views over a shared buffer."""
    fields = {}
    for field, dtype, shape, offset, nbytes in meta:
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        fields[field] = arr
    return ModelTables(key=(), **fields)


def _worker_main(tasks, results) -> None:
    """Worker-process loop: attach, score assigned ranges, acknowledge.

    Runs top-level (picklable) so the pool is safe under the ``spawn``
    start method.  Caches shared-memory attachments and rebuilt tables
    by block name; a changed name means the parent regrew or replaced a
    block, so stale attachments are dropped.
    """
    from repro.core.bwshare import RemainderRule

    blocks: dict[str, shared_memory.SharedMemory] = {}
    tables_cache: dict[str, ModelTables] = {}

    def attach(name: str) -> shared_memory.SharedMemory:
        block = blocks.get(name)
        if block is None:
            block = _attach(name)
            blocks[name] = block
        return block

    # Event loop, not a retry: every task is attempted exactly once and
    # failures ship to the parent as ("err", ...) acks.
    while True:  # repro: noqa[RETRY001]
        task = tasks.get()
        if task[0] == "stop":
            break
        if task[0] == "forget":
            # The parent unlinked a tables block; drop our attachment.
            _, name = task
            tables_cache.pop(name, None)
            block = blocks.pop(name, None)
            if block is not None:
                block.close()
            continue
        try:
            (
                _,
                call_id,
                tables_name,
                tables_meta,
                scratch_name,
                batch,
                n_apps,
                n_nodes,
                out_offset,
                lo,
                hi,
                rule_value,
            ) = task
            t0 = time.perf_counter()
            tables = tables_cache.get(tables_name)
            if tables is None:
                tables = _unpack_tables(attach(tables_name).buf, tables_meta)
                tables_cache[tables_name] = tables
            scratch = attach(scratch_name)
            counts = np.ndarray(
                (batch, n_apps, n_nodes),
                dtype=np.int64,
                buffer=scratch.buf,
            )
            out = np.ndarray(
                (batch, n_apps),
                dtype=np.float64,
                buffer=scratch.buf,
                offset=out_offset,
            )
            out[lo:hi] = batched_app_gflops(
                tables, counts[lo:hi], RemainderRule(rule_value)
            )
            results.put(
                ("ok", call_id, lo, hi, time.perf_counter() - t0)
            )
        except BaseException:  # repro: noqa[EXC001] — shipped to parent
            results.put(("err", call_id, traceback.format_exc()))
    for block in blocks.values():
        block.close()


class WorkerPool:
    """A persistent pool of scoring processes over shared memory.

    Parameters
    ----------
    workers:
        Process count.  Not capped at the host core count: determinism
        does not depend on it, and oversubscribed pools are how the
        single-core CI shard still exercises every code path.
    start_method:
        ``"fork"``, ``"spawn"``, ``"forkserver"`` or ``None`` for the
        platform default.  The worker entry point is a module-level
        function, so every method works.
    timeout:
        Seconds :meth:`score` waits for the slowest chunk before
        declaring the pool broken.

    The pool spawns lazily on the first :meth:`score` call and is
    designed to be *reused*: per-workload tables upload once (keyed by
    fingerprint), the counts/output scratch block grows geometrically
    and is recycled across calls, and the processes survive between
    searches.  Constructing a pool per search defeats all of that —
    the PERF003 lint rule flags exactly that mistake.
    """

    def __init__(
        self,
        workers: int,
        *,
        start_method: str | None = None,
        timeout: float = 120.0,
    ) -> None:
        if workers <= 0:
            raise ParallelError(
                f"a worker pool needs >= 1 process, got {workers}"
            )
        self.workers = workers
        self.start_method = start_method
        self.timeout = timeout
        self.closed = False
        #: completed :meth:`score` calls (diagnostics / tests).
        self.calls = 0
        #: spawn generation: 0 until first use, then 1 (a pool never
        #: respawns — a broken pool closes and the registry replaces it).
        self.generation = 0
        self._procs: list = []
        self._tasks = None
        self._results = None
        self._call_id = 0
        #: tables fingerprint -> (shared block, field metadata).
        self._tables: dict[tuple, tuple[shared_memory.SharedMemory, list]] = {}
        self._scratch: shared_memory.SharedMemory | None = None

    # -- lifecycle ------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether every worker process is currently running."""
        return (
            not self.closed
            and bool(self._procs)
            and all(p.is_alive() for p in self._procs)
        )

    def _ensure_spawned(self) -> None:
        if self.closed:
            raise ParallelError("pool is closed")
        if self._procs:
            return
        if not shared_memory_available():
            raise ParallelError("shared memory is unavailable on this host")
        try:
            ctx = get_context(self.start_method)
            self._tasks = ctx.Queue()
            self._results = ctx.Queue()
            procs = []
            for _ in range(self.workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(self._tasks, self._results),
                    daemon=True,
                )
                proc.start()
                procs.append(proc)
            self._procs = procs
        except (OSError, ValueError) as exc:
            self.close()
            raise ParallelError(f"pool spawn failed: {exc}") from exc
        self.generation += 1
        if OBS.enabled:
            _WORKERS_GAUGE.set(self.workers)

    def close(self) -> None:
        """Shut the pool down and release every shared block.  Idempotent.

        Live workers get a ``stop`` message and a short grace period;
        stragglers (or crashed workers' survivors) are terminated.  A
        closed pool never respawns — :func:`get_pool` hands out a fresh
        one instead, which is what makes "shut down on drain, restart
        after recovery" a registry-level no-op.
        """
        if self.closed:
            return
        self.closed = True
        if self._tasks is not None:
            for proc in self._procs:
                if proc.is_alive():
                    try:  # repro: noqa[EXC002] — teardown is best-effort
                        self._tasks.put(("stop",))
                    except (OSError, ValueError):
                        break
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._tasks, self._results):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._tasks = self._results = None
        self._procs = []
        for block, _meta in self._tables.values():
            self._release_block(block)
        self._tables.clear()
        if self._scratch is not None:
            self._release_block(self._scratch)
            self._scratch = None
        if OBS.enabled:
            _WORKERS_GAUGE.set(0)

    @staticmethod
    def _release_block(block: shared_memory.SharedMemory) -> None:
        try:
            block.close()
            block.unlink()
        except OSError:  # repro: noqa[EXC002] — double-unlink is harmless
            pass

    # -- shared-memory plumbing ----------------------------------------

    def _publish_tables(
        self, tables: ModelTables
    ) -> tuple[str, list]:
        """The (block name, metadata) of ``tables``, uploading once.

        Keyed by the workload fingerprint; a bounded cache mirrors the
        model's own kept-tables limit, telling workers to ``forget``
        evicted blocks before unlinking them.
        """
        entry = self._tables.get(tables.key)
        if entry is not None:
            return entry[0].name, entry[1]
        payload, meta = _pack_tables(tables)
        block = shared_memory.SharedMemory(
            create=True, size=max(len(payload), 1)
        )
        block.buf[: len(payload)] = payload
        while len(self._tables) >= 8:
            _key, (old, _m) = next(iter(self._tables.items()))
            self._tables.pop(_key)
            for _ in self._procs:
                self._tasks.put(("forget", old.name))
            self._release_block(old)
        self._tables[tables.key] = (block, meta)
        return block.name, meta

    def _ensure_scratch(self, nbytes: int) -> shared_memory.SharedMemory:
        """A scratch block of at least ``nbytes``, grown geometrically.

        Growing allocates a *new* (differently named) block, so workers
        naturally re-attach; the old block is unlinked immediately (the
        kernel keeps it alive for any worker mid-attachment).
        """
        if self._scratch is not None and self._scratch.size >= nbytes:
            return self._scratch
        size = 1 << max(nbytes - 1, 1).bit_length()
        if self._scratch is not None:
            self._release_block(self._scratch)
        self._scratch = shared_memory.SharedMemory(create=True, size=size)
        return self._scratch

    # -- scoring --------------------------------------------------------

    def score(
        self, tables: ModelTables, counts: np.ndarray, rule
    ) -> np.ndarray:
        """Per-app GFLOPS of a ``(B, A, N)`` batch, sharded by range.

        Byte-identical to ``batched_app_gflops(tables, counts, rule)``:
        workers score contiguous row ranges with the very same kernel
        and write into disjoint slices of one shared ``(B, A)`` output.
        Oversubscribed candidates raise the same
        :class:`~repro.errors.OversubscriptionError` as the serial path
        (validated parent-side, before sharding).

        Raises
        ------
        ParallelError
            Pool spawn failure, worker death, or timeout.  The pool is
            closed; callers fall back to the serial path.
        """
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        batch, n_apps, n_nodes = counts.shape
        check_oversubscription(tables, counts)
        out_shape = (batch, n_apps)
        if batch == 0:
            return np.empty(out_shape)
        self._ensure_spawned()
        with OBS.tracer.span(
            "parallel/search",
            workers=self.workers,
            evaluations=batch,
        ) as sp:
            try:
                result = self._score_locked(
                    tables, counts, rule, out_shape, sp
                )
            except ParallelError:
                self.close()
                raise
        self.calls += 1
        return result

    def _score_locked(self, tables, counts, rule, out_shape, span):
        batch, n_apps, n_nodes = counts.shape
        tables_name, meta = self._publish_tables(tables)
        counts_nbytes = counts.nbytes
        out_nbytes = batch * n_apps * 8
        scratch = self._ensure_scratch(counts_nbytes + out_nbytes)
        shared_counts = np.ndarray(
            counts.shape, dtype=np.int64, buffer=scratch.buf
        )
        shared_counts[:] = counts
        chunks = chunk_bounds(batch, self.workers)
        self._call_id += 1
        call_id = self._call_id
        for lo, hi in chunks:
            self._tasks.put(
                (
                    "score",
                    call_id,
                    tables_name,
                    meta,
                    scratch.name,
                    batch,
                    n_apps,
                    n_nodes,
                    counts_nbytes,
                    lo,
                    hi,
                    rule.value,
                )
            )
        self._await_chunks(call_id, len(chunks))
        if OBS.enabled:
            _CHUNKS.add(len(chunks))
            span.attrs["chunks"] = len(chunks)
        out = np.ndarray(
            out_shape,
            dtype=np.float64,
            buffer=scratch.buf,
            offset=counts_nbytes,
        )
        return out.copy()

    def _await_chunks(self, call_id: int, expected: int) -> None:
        """Collect ``expected`` chunk acknowledgements for ``call_id``.

        Polls with a short interval so a dead worker is noticed in
        ~100 ms rather than at the full timeout; acknowledgements from
        an earlier (failed) call are discarded by id.
        """
        deadline = time.monotonic() + self.timeout
        done = 0
        while done < expected:
            try:
                msg = self._results.get(timeout=0.1)
            except queue_mod.Empty:
                if not all(p.is_alive() for p in self._procs):
                    raise ParallelError(
                        "a scoring worker died mid-batch"
                    ) from None
                if time.monotonic() > deadline:
                    raise ParallelError(
                        f"pool timed out after {self.timeout}s"
                    ) from None
                continue
            if msg[1] != call_id:
                continue  # stale ack from an abandoned call
            if msg[0] == "err":
                raise ParallelError(f"worker failed:\n{msg[2]}")
            _, _, _lo, _hi, seconds = msg
            done += 1
            if OBS.enabled:
                _CHUNK_MS.record(seconds * 1e3)


# -- the process-wide pool registry ------------------------------------

_POOLS: dict[int, WorkerPool] = {}


def get_pool(
    workers: int, *, start_method: str | None = None
) -> WorkerPool | None:
    """The shared pool for ``workers`` processes, or ``None``.

    ``None`` means parallel scoring is not possible here (``workers <=
    0`` or no shared memory) — callers take the serial path.  A closed
    or crashed pool is transparently replaced by a fresh one, which is
    what "the pool restarts cleanly after recovery" means in practice:
    drain closes it, the next big batch respawns it.
    """
    if workers <= 0 or not shared_memory_available():
        return None
    pool = _POOLS.get(workers)
    if pool is None or pool.closed:
        pool = WorkerPool(workers, start_method=start_method)
        _POOLS[workers] = pool
    return pool


def release_pool(workers: int) -> None:
    """Close and drop the registry pool for ``workers``, if any."""
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.close()


def shutdown_pools() -> None:
    """Close every registry pool (service drain, interpreter exit)."""
    for workers in list(_POOLS):
        release_pool(workers)


def pool_stats() -> dict[int, dict]:
    """Live registry snapshot: worker count -> generation/calls/alive."""
    return {
        workers: {
            "generation": pool.generation,
            "calls": pool.calls,
            "alive": pool.alive,
        }
        for workers, pool in _POOLS.items()
    }


atexit.register(shutdown_pools)


def parallel_app_gflops(
    tables: ModelTables,
    counts: np.ndarray,
    rule,
    workers: int,
    *,
    start_method: str | None = None,
) -> np.ndarray | None:
    """Pooled :func:`~repro.core.fasteval.batched_app_gflops`, or ``None``.

    The model's entry point: score ``counts`` through the shared pool
    for ``workers``; any pool-level failure (no shared memory, spawn
    failure, worker crash, timeout) bumps ``parallel/fallbacks`` and
    returns ``None`` so the caller can run the serial kernel instead.
    Model-level errors (oversubscription) raise exactly as the serial
    path would.
    """
    pool = get_pool(workers, start_method=start_method)
    if pool is not None:
        try:
            return pool.score(tables, counts, rule)
        except ParallelError:  # repro: noqa[EXC002] — fallback counted below
            pass
    if OBS.enabled:
        _FALLBACKS.add()
    return None
