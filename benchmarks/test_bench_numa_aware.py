"""Section III's motivating claim (from the authors' KNL work [11]):

"with OCR-Vx, it is possible to get very significant speed improvement
with NUMA-aware codes over NUMA-oblivious alternatives ... It was
possible to get good performance from the NUMA-oblivious codes by
switching the process to non-NUMA mode [on KNL].  But on most
multi-socket servers, the NUMA is inherent ... and it is impossible to
opt out."

The stencil application runs NUMA-aware and NUMA-oblivious on three
machines: the SNC-4 KNL, the flat KNL, and the 4-socket Skylake.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.apps import StencilApp
from repro.machine import knl_flat, knl_snc4, skylake_4s
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


def _run(machine, numa_aware):
    ex = ExecutionSimulator(machine)
    rt = OCRVxRuntime("stencil", ex)
    rt.start()
    app = StencilApp(
        rt,
        blocks=32,
        iterations=16,
        numa_aware=numa_aware,
        flops_per_block=0.02,
        arithmetic_intensity=0.25,
    )
    app.build()
    return ex.run_until_condition(lambda: app.finished, max_time=600)


def _sweep():
    out = []
    for name, machine in [
        ("knl-snc4", knl_snc4()),
        ("knl-flat", knl_flat()),
        ("skylake-4s", skylake_4s()),
    ]:
        aware = _run(machine, True)
        oblivious = _run(machine, False)
        out.append((name, aware, oblivious, oblivious / aware))
    return out


def test_bench_numa_aware_vs_oblivious(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "NUMA-aware vs NUMA-oblivious stencil (Section III / [11])",
        render_table(
            ["machine", "aware [s]", "oblivious [s]", "speedup"],
            [list(r) for r in rows],
        ),
    )
    by_name = {r[0]: r[3] for r in rows}
    # Big win where NUMA is real...
    assert by_name["knl-snc4"] > 1.5
    assert by_name["skylake-4s"] > 1.2
    # ...and no gap on the flat (non-NUMA) configuration.
    assert by_name["knl-flat"] == pytest.approx(1.0, abs=0.03)
