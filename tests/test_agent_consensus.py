"""Tests for the decentralized (agentless) coordinator."""

import pytest

from repro.agent import DecentralizedCoordinator, OcrVxEndpoint
from repro.apps import SyntheticApp
from repro.core import AppSpec
from repro.errors import AgentError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator


def setup(num_apps=2):
    ex = ExecutionSimulator(model_machine())
    runtimes = []
    specs = []
    for i in range(num_apps):
        spec = AppSpec(f"app{i}", 4.0)
        rt = OCRVxRuntime(spec.name, ex)
        rt.start()
        runtimes.append(rt)
        specs.append(spec)
    return ex, runtimes, specs


class TestLifecycle:
    def test_requires_participants(self):
        ex, _, _ = setup()
        coord = DecentralizedCoordinator(ex)
        with pytest.raises(AgentError):
            coord.start()

    def test_duplicate_join_rejected(self):
        ex, (a, _), (sa, _) = setup()
        coord = DecentralizedCoordinator(ex)
        coord.join(OcrVxEndpoint(a), sa)
        with pytest.raises(AgentError):
            coord.join(OcrVxEndpoint(a), sa)

    def test_name_mismatch_rejected(self):
        ex, (a, _), _ = setup()
        coord = DecentralizedCoordinator(ex)
        with pytest.raises(AgentError):
            coord.join(OcrVxEndpoint(a), AppSpec("other", 1.0))

    def test_invalid_period(self):
        ex, _, _ = setup()
        with pytest.raises(AgentError):
            DecentralizedCoordinator(ex, period=0.0)


class TestAgreement:
    def test_equal_demand_converges_to_fair_split(self):
        ex, runtimes, specs = setup(2)
        coord = DecentralizedCoordinator(ex, period=0.005)
        for rt, spec in zip(runtimes, specs):
            coord.join(OcrVxEndpoint(rt), spec)
        coord.start()
        ex.run(0.05)
        assert coord.rounds >= 5
        for rt in runtimes:
            assert rt.active_threads == 16  # half of 32 cores each

    def test_agreement_has_no_over_subscription(self):
        ex, runtimes, specs = setup(3)
        coord = DecentralizedCoordinator(ex, period=0.005)
        for rt, spec in zip(runtimes, specs):
            coord.join(OcrVxEndpoint(rt), spec)
        coord.start()
        ex.run(0.03)
        last = coord.agreements[-1]
        per_node = [0] * 4
        for alloc in last.values():
            for n, c in enumerate(alloc):
                per_node[n] += c
        assert all(c <= 8 for c in per_node)

    def test_queue_pressure_shifts_cores(self):
        ex, runtimes, specs = setup(2)
        # Load only app0 with work: its queue depth raises its priority.
        SyntheticApp(runtimes[0], specs[0]).submit_batch(500)
        coord = DecentralizedCoordinator(
            ex, period=0.005, queue_pressure_weight=1.0
        )
        for rt, spec in zip(runtimes, specs):
            coord.join(OcrVxEndpoint(rt), spec)
        coord.start()
        ex.run(0.02)
        # The first agreement sees app0's deep queue and shifts cores;
        # later rounds may equalise again once the queue drains.
        busy = coord.agreements[0]["app0"]
        idle = coord.agreements[0]["app1"]
        assert sum(busy) > sum(idle)
