"""Agentless coordination: runtimes cooperatively agree on cores.

Section II offers an alternative to the dedicated agent: "it would also
be possible to have the different runtime systems cooperatively come to
an agreement."  :class:`DecentralizedCoordinator` realises it on the
simulator: each participating runtime periodically *publishes* a demand
record to a shared bulletin board, every participant then runs the same
deterministic :class:`~repro.core.arbitration.CooperativeConsensus`
protocol over the published records, and applies *its own* row of the
agreed allocation.  There is no privileged process — the coordinator
object here only models the shared board and the common clock tick.

Demand priorities are derived from observable pressure: a runtime with a
deep ready queue publishes a higher priority, so cores drift toward the
application that can use them, with the deterministic tie-breaking that
keeps all participants' computations identical (the paper's "we would
not want all runtime systems to decide ... they will all use node 0").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.agent.protocol import CommandKind, RuntimeEndpoint, ThreadCommand
from repro.core.arbitration import CooperativeConsensus, ResourceRequest
from repro.core.spec import AppSpec
from repro.errors import AgentError
from repro.sim.executor import ExecutionSimulator

__all__ = ["DecentralizedCoordinator"]


@dataclass
class _Participant:
    endpoint: RuntimeEndpoint
    spec: AppSpec
    min_threads: int


class DecentralizedCoordinator:
    """Periodic cooperative core agreement without a central agent.

    Parameters
    ----------
    executor:
        Shared execution simulator (provides the clock).
    period:
        Seconds between agreement rounds.
    queue_pressure_weight:
        How strongly a runtime's ready-queue depth raises its priority:
        ``priority = 1 + weight * queue_length / active_threads``.
    """

    def __init__(
        self,
        executor: ExecutionSimulator,
        *,
        period: float = 0.01,
        queue_pressure_weight: float = 0.1,
    ) -> None:
        if period <= 0:
            raise AgentError(f"period must be positive, got {period}")
        if queue_pressure_weight < 0:
            raise AgentError("queue_pressure_weight must be >= 0")
        self.executor = executor
        self.period = period
        self.queue_pressure_weight = queue_pressure_weight
        self.participants: dict[str, _Participant] = {}
        self.rounds = 0
        self.agreements: list[dict[str, list[int]]] = []
        self._started = False

    def join(
        self,
        endpoint: RuntimeEndpoint,
        spec: AppSpec,
        *,
        min_threads: int = 1,
    ) -> None:
        """Register a runtime as a protocol participant."""
        if endpoint.name in self.participants:
            raise AgentError(f"'{endpoint.name}' already joined")
        if endpoint.name != spec.name:
            raise AgentError(
                f"endpoint '{endpoint.name}' and spec '{spec.name}' "
                f"must share a name"
            )
        self.participants[endpoint.name] = _Participant(
            endpoint=endpoint, spec=spec, min_threads=min_threads
        )

    def start(self) -> None:
        """Begin the periodic agreement rounds."""
        if self._started:
            raise AgentError("coordinator already started")
        if not self.participants:
            raise AgentError("no participants joined")
        self._started = True
        self.executor.sim.schedule(self.period, self._round, priority=6)

    # ------------------------------------------------------------------
    def _round(self) -> None:
        now = self.executor.sim.now
        # 1. Every runtime publishes its record to the board.
        board = {
            name: p.endpoint.report(now)
            for name, p in self.participants.items()
        }
        # 2. Every participant runs the same deterministic protocol over
        #    the same board (computed once here, since the outcome is
        #    identical by construction).
        requests = []
        for name in sorted(self.participants):
            p = self.participants[name]
            report = board[name]
            pressure = 0.0
            if report.active_threads > 0:
                pressure = report.queue_length / report.active_threads
            requests.append(
                ResourceRequest(
                    spec=p.spec,
                    min_threads=p.min_threads,
                    max_threads=sum(report.workers_per_node),
                    priority=1.0
                    + self.queue_pressure_weight * pressure,
                )
            )
        outcome = CooperativeConsensus().decide(
            self.executor.machine, requests
        )
        # 3. Each runtime applies its own row.
        agreement: dict[str, list[int]] = {}
        for name, p in self.participants.items():
            per_node = [
                min(int(x), w)
                for x, w in zip(
                    outcome.allocation.threads_of(name),
                    board[name].workers_per_node,
                )
            ]
            agreement[name] = per_node
            p.endpoint.apply(
                ThreadCommand(
                    kind=CommandKind.SET_ALLOCATION,
                    per_node=tuple(per_node),
                )
            )
        self.rounds += 1
        self.agreements.append(agreement)
        self.executor.sim.schedule(self.period, self._round, priority=6)
