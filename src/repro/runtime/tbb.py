"""A TBB-like runtime: arenas fed by a Resource Management Layer (RML).

The paper observes that although the TBB API fixes the worker count at
scheduler initialisation, TBB's RML "can dynamically allocate threads to
arenas", and that binding an arena's threads to a NUMA node while
adjusting arena concurrency through RML "should ... get something very
similar to option 3 of OCR-Vx".  This module implements that composition:

* :class:`TbbArena` — a task queue with a ``max_concurrency`` limit and an
  optional NUMA-node binding;
* :class:`TbbRuntime` — the market/RML: a fixed pool of worker threads
  that migrate between arenas on demand, re-binding to the arena's node
  when they join (as TBB's NUMA support does via
  ``task_arena::constraints``).

Unlike :class:`~repro.runtime.runtime.OCRVxRuntime`, the market never
blocks threads outright — an idle TBB worker just has no arena — but
setting every arena's concurrency low leaves workers parked, which is the
"automatically stopping unneeded threads" behaviour the paper credits TBB
with.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.errors import RuntimeSystemError
from repro.runtime.task import Task, TaskState
from repro.sim.cpu import Binding, SimThread
from repro.sim.executor import ExecutionSimulator, WorkSegment

__all__ = ["TbbArena", "TbbRuntime"]


class TbbArena:
    """A TBB task arena: a queue plus a concurrency limit.

    Parameters
    ----------
    name:
        Arena name.
    max_concurrency:
        Maximum worker threads simultaneously executing in this arena.
    node:
        Optional NUMA node constraint; joining workers re-bind to it.
    """

    def __init__(
        self, name: str, max_concurrency: int, *, node: int | None = None
    ) -> None:
        if max_concurrency < 0:
            raise RuntimeSystemError(
                f"arena '{name}': max_concurrency must be >= 0"
            )
        self.name = name
        self.max_concurrency = max_concurrency
        self.node = node
        self._queue: deque[Task] = deque()
        self.active = 0  # workers currently inside
        self.tasks_executed = 0

    def enqueue(self, task: Task) -> None:
        """Submit a ready task to this arena."""
        if task.state is not TaskState.READY:
            raise RuntimeSystemError(
                f"arena '{self.name}': task '{task.name}' not ready"
            )
        self._queue.append(task)

    @property
    def pending(self) -> int:
        """Queued tasks not yet started."""
        return len(self._queue)

    @property
    def wants_workers(self) -> bool:
        """True when the arena could use another worker."""
        return self.pending > 0 and self.active < self.max_concurrency

    def _pop(self) -> Task | None:
        if self._queue:
            return self._queue.popleft()
        return None


class TbbRuntime:
    """The market/RML: a pool of threads serving multiple arenas.

    Workers are created unbound; when one joins an arena with a node
    constraint it re-binds to that node (and back to unbound on leave).
    Arena selection is demand-driven and deterministic: the arena with the
    largest backlog-per-active-worker wins, ties broken by name.
    """

    def __init__(
        self,
        name: str,
        executor: ExecutionSimulator,
        num_threads: int,
    ) -> None:
        if num_threads <= 0:
            raise RuntimeSystemError(
                f"TBB runtime '{name}' needs at least one thread"
            )
        self.name = name
        self.executor = executor
        self.machine = executor.machine
        self.arenas: dict[str, TbbArena] = {}
        self._threads: list[SimThread] = []
        self._membership: dict[int, TbbArena | None] = {}
        self._current_task: dict[int, Task] = {}
        for i in range(num_threads):
            t = executor.add_thread(
                f"{name}/t{i}", Binding.unbound(), self, app_name=name
            )
            self._threads.append(t)
            self._membership[t.tid] = None
        self.stats_tasks_executed = 0

    # ------------------------------------------------------------------
    def create_arena(
        self, name: str, max_concurrency: int, *, node: int | None = None
    ) -> TbbArena:
        """Create (and register) an arena."""
        if name in self.arenas:
            raise RuntimeSystemError(f"duplicate arena '{name}'")
        if node is not None:
            self.machine.node(node)  # validate
        arena = TbbArena(name, max_concurrency, node=node)
        self.arenas[name] = arena
        return arena

    def set_arena_concurrency(self, name: str, max_concurrency: int) -> None:
        """RML command: change an arena's thread allowance at runtime.

        Excess workers leave at their next task boundary.
        """
        if name not in self.arenas:
            raise RuntimeSystemError(f"unknown arena '{name}'")
        if max_concurrency < 0:
            raise RuntimeSystemError("max_concurrency must be >= 0")
        self.arenas[name].max_concurrency = max_concurrency

    # ------------------------------------------------------------------
    # WorkProvider protocol
    # ------------------------------------------------------------------
    def next_segment(self, thread: SimThread) -> WorkSegment | None:
        """Pick an arena for the thread and pop its next task."""
        arena = self._membership[thread.tid]
        # Leave an arena that is over its limit or out of work.
        if arena is not None and (
            arena.active > arena.max_concurrency or arena.pending == 0
        ):
            self._leave(thread, arena)
            arena = None
        if arena is None:
            arena = self._pick_arena()
            if arena is None:
                return None
            self._join(thread, arena)
        task = arena._pop()
        if task is None:
            return None
        task.start(f"{self.name}/t{thread.tid}")
        self._current_task[thread.tid] = task
        return WorkSegment(
            flops=task.flops,
            arithmetic_intensity=task.arithmetic_intensity,
            data_fractions=task.traffic(),
            cache_keys=tuple(db.db_id for db in task.datablocks),
            label=task.name,
        )

    def segment_finished(self, thread: SimThread, segment: WorkSegment) -> None:
        """Complete the thread's task and credit its arena."""
        task = self._current_task.pop(thread.tid, None)
        if task is None:
            raise RuntimeSystemError(
                f"TBB thread {thread.name} finished unknown segment"
            )
        arena = self._membership[thread.tid]
        if arena is not None:
            arena.tasks_executed += 1
        self.stats_tasks_executed += 1
        task.finish()

    # ------------------------------------------------------------------
    def _pick_arena(self) -> TbbArena | None:
        candidates = [a for a in self.arenas.values() if a.wants_workers]
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda a: (
                a.pending / max(a.active, 1),
                a.name,
            ),
        )

    def _join(self, thread: SimThread, arena: TbbArena) -> None:
        arena.active += 1
        self._membership[thread.tid] = arena
        if arena.node is not None:
            self.executor.rebind(thread, Binding.to_node(arena.node))

    def _leave(self, thread: SimThread, arena: TbbArena) -> None:
        arena.active -= 1
        self._membership[thread.tid] = None
        if arena.node is not None:
            self.executor.rebind(thread, Binding.unbound())

    # ------------------------------------------------------------------
    @property
    def idle_threads(self) -> int:
        """Threads not currently in any arena."""
        return sum(1 for a in self._membership.values() if a is None)

    def arena_occupancy(self) -> dict[str, int]:
        """Active worker count per arena."""
        return {name: a.active for name, a in self.arenas.items()}
