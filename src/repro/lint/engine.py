"""The AST lint engine: rule registry, dispatch, suppression, reporters.

The engine is deliberately small: a :class:`Rule` is a class with a
``rule_id``, a ``severity`` and a ``check(ctx)`` generator; the
:class:`LintEngine` parses each file once into a :class:`FileContext`
(source, AST with parent links, per-line ``noqa`` suppressions) and runs
every registered rule over it, collecting :class:`Violation` records.

Rules register themselves with the :func:`register` decorator at import
time (importing :mod:`repro.lint.rules` loads the whole pack), so adding
a rule is one new class in one file — see ``docs/STATIC_ANALYSIS.md``.

A second layer sits on top: :class:`ProjectRule` subclasses implement
``check_project(project)`` against the whole-program
:class:`~repro.lint.project.graph.ProjectContext` (symbol table, import
graph, call graph) that the engine builds once per run — incrementally,
through the content-hash cache of :mod:`repro.lint.project.cache`, so a
warm run re-parses only changed files.

Suppression uses a project-specific marker so it can never collide with
tooling the repo might adopt later::

    lock.acquire()  # repro: noqa[LOCK001]
    command.retry()  # repro: noqa[RETRY001,PERF002]
    anything_goes()  # repro: noqa

and a module-wide form for whole-file opt-outs (ids are mandatory —
silencing *every* rule for a file is never the right call)::

    # repro: noqa-module[DOC001,OBS003]

Reporters: :func:`format_text` for humans, :func:`violations_to_json` /
:func:`violations_from_json` for machines (round-trips exactly), and
:func:`repro.lint.sarif.violations_to_sarif` for code-scanning UIs.
"""

from __future__ import annotations

import ast
import enum
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.errors import LintError

__all__ = [
    "Severity",
    "Violation",
    "FileContext",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "LintEngine",
    "format_text",
    "violations_to_json",
    "violations_from_json",
]

#: ``# repro: noqa`` or ``# repro: noqa[RULE1,RULE2]`` anywhere in a line.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

#: ``# repro: noqa-module[RULE1,RULE2]`` — suppresses the ids file-wide.
_NOQA_MODULE_RE = re.compile(
    r"#\s*repro:\s*noqa-module\[([A-Za-z0-9_,\s]+)\]"
)

#: Rule ids look like ``LOCK001`` — a short upper-case tag plus digits.
_RULE_ID_RE = re.compile(r"^[A-Z]{2,8}[0-9]{3}$")


class Severity(enum.IntEnum):
    """How bad a violation is; ordering supports ``--fail-on`` gating."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True, slots=True)
class Violation:
    """One finding: a rule fired at a specific file and line."""

    file: str
    line: int
    rule_id: str
    message: str
    severity: Severity

    def to_dict(self) -> dict:
        """Plain-dict form (the JSON record)."""
        return {
            "file": self.file,
            "line": self.line,
            "rule_id": self.rule_id,
            "message": self.message,
            "severity": str(self.severity),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Violation":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        return cls(
            file=data["file"],
            line=int(data["line"]),
            rule_id=data["rule_id"],
            message=data["message"],
            severity=Severity[data["severity"].upper()],
        )

    def format(self) -> str:
        """The canonical one-line rendering."""
        return (
            f"{self.file}:{self.line}: {self.rule_id} "
            f"[{self.severity}] {self.message}"
        )


class FileContext:
    """Everything a rule may inspect about one parsed file.

    Attributes
    ----------
    path:
        The path the file was read from (as given to the engine).
    source / lines:
        Raw source text and its ``splitlines()``.
    tree:
        The parsed :mod:`ast` module.  Every node additionally carries a
        ``parent`` attribute (``None`` on the root) so rules can walk
        *up* — e.g. "is this call the context expression of a ``with``".
    project_root:
        Root used by repo-aware rules (``docs/API.md`` lookups); may be
        ``None`` for snippet checks.
    """

    def __init__(
        self,
        path: str,
        source: str,
        *,
        project_root: Path | None = None,
    ) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.project_root = project_root
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError(f"{path}: cannot parse: {exc}") from exc
        self.tree.parent = None  # type: ignore[attr-defined]
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]
        #: rule ids suppressed for the whole file via
        #: ``# repro: noqa-module[...]`` markers.
        self.module_suppressions: frozenset[str] = frozenset(
            part.strip()
            for line in self.lines
            for match in [_NOQA_MODULE_RE.search(line)]
            if match is not None
            for part in match.group(1).split(",")
            if part.strip()
        )

    # ------------------------------------------------------------------
    def walk(self) -> Iterator[ast.AST]:
        """All AST nodes, depth-first."""
        return ast.walk(self.tree)

    def parents(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ``node``'s ancestors, innermost first."""
        current = getattr(node, "parent", None)
        while current is not None:
            yield current
            current = getattr(current, "parent", None)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost function definition containing ``node``."""
        for anc in self.parents(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """The innermost class definition containing ``node``."""
        for anc in self.parents(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def suppressed(self, line: int, rule_id: str) -> bool:
        """True when a ``noqa`` (inline or module-wide) covers ``rule_id``."""
        if rule_id in self.module_suppressions:
            return True
        if not 1 <= line <= len(self.lines):
            return False
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return False
        ids = match.group(1)
        if ids is None:  # bare ``# repro: noqa`` silences everything
            return True
        return rule_id in {part.strip() for part in ids.split(",")}


class Rule:
    """Base class for lint rules.

    Subclasses set the three class attributes and implement
    :meth:`check`, yielding a :class:`Violation` per finding (use
    :meth:`violation` to fill in the boilerplate).  ``noqa`` filtering
    happens in the engine, not in rules.
    """

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield every violation of this rule in ``ctx``."""
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST | int, message: str
    ) -> Violation:
        """Build a :class:`Violation` at ``node`` (or a literal line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Violation(
            file=ctx.path,
            line=line,
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Subclasses implement :meth:`check_project` against the
    :class:`~repro.lint.project.graph.ProjectContext` the engine builds
    once per run; :meth:`check` never runs for project rules (the
    per-file pass only extracts summaries).  Suppression still works the
    same way — the engine consults the ``noqa`` maps captured in each
    file's summary.
    """

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Project rules have no per-file pass."""
        return iter(())

    def check_project(self, project) -> Iterator[Violation]:
        """Yield every violation found in the whole-program view."""
        raise NotImplementedError

    def project_violation(
        self, file: str, line: int, message: str
    ) -> Violation:
        """Build a :class:`Violation` at an explicit file and line."""
        return Violation(
            file=file,
            line=line,
            rule_id=self.rule_id,
            message=message,
            severity=self.severity,
        )


#: The process-wide registry: rule id -> rule class.
_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    rule_id = rule_cls.rule_id
    if not _RULE_ID_RE.match(rule_id):
        raise LintError(
            f"rule id {rule_id!r} does not match {_RULE_ID_RE.pattern}"
        )
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not rule_cls:
        raise LintError(f"duplicate rule id {rule_id!r}")
    if not rule_cls.summary:
        raise LintError(f"rule {rule_id} must define a summary")
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    """The full registry (id -> class), loading the standard pack."""
    import repro.lint.rules  # noqa: F401  (registers the pack on import)

    return dict(sorted(_REGISTRY.items()))


def get_rule(rule_id: str) -> type[Rule]:
    """Look up one rule class by id."""
    rules = all_rules()
    if rule_id not in rules:
        raise LintError(
            f"unknown rule id {rule_id!r}; known: {', '.join(rules)}"
        )
    return rules[rule_id]


class LintEngine:
    """Runs a set of rules over files, sources, and directory trees.

    Parameters
    ----------
    rules:
        Rule ids to run; ``None`` means every registered rule.
    project_root:
        Root directory for repo-aware rules; defaults to the current
        working directory when checking files, ``None`` for snippets.
    cache:
        A :class:`~repro.lint.project.cache.LintCache` (already
        ``load()``-ed) making :meth:`check_paths` incremental; ``None``
        re-parses everything.  ``check_paths`` fills :attr:`stats` with
        ``files`` / ``parsed`` / ``cache_hits`` counters either way.
    """

    def __init__(
        self,
        rules: Sequence[str] | None = None,
        project_root: Path | str | None = None,
        cache=None,
    ) -> None:
        registry = all_rules()
        if rules is None:
            selected = list(registry)
        else:
            selected = []
            for rule_id in rules:
                if rule_id not in registry:
                    raise LintError(
                        f"unknown rule id {rule_id!r}; "
                        f"known: {', '.join(registry)}"
                    )
                selected.append(rule_id)
        self.rules: list[Rule] = [registry[r]() for r in selected]
        self.file_rules: list[Rule] = [
            r for r in self.rules if not isinstance(r, ProjectRule)
        ]
        self.project_rules: list[ProjectRule] = [
            r for r in self.rules if isinstance(r, ProjectRule)
        ]
        self.project_root = (
            Path(project_root) if project_root is not None else None
        )
        self.cache = cache
        self.stats: dict[str, int] = {
            "files": 0, "parsed": 0, "cache_hits": 0
        }

    # ------------------------------------------------------------------
    def _module_name(self, path: Path) -> str | None:
        """Dotted module name under ``<project_root>/src``, else None."""
        if self.project_root is None:
            return None
        try:
            rel = path.resolve().relative_to(
                (self.project_root / "src").resolve()
            )
        except ValueError:
            return None
        parts = list(rel.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts.pop()
        return ".".join(parts) if parts else None

    def _check_context(self, ctx: FileContext) -> list[Violation]:
        """Run the per-file rules over one parsed context."""
        out: list[Violation] = []
        for rule in self.file_rules:
            for violation in rule.check(ctx):
                if ctx.suppressed(violation.line, violation.rule_id):
                    continue
                out.append(violation)
        return out

    def _run_project_rules(self, summaries: list) -> list[Violation]:
        """Build the :class:`ProjectContext` and run the second layer."""
        if not self.project_rules or not summaries:
            return []
        from repro.lint.project.graph import ProjectContext

        project = ProjectContext(summaries, project_root=self.project_root)
        by_path = {s.path: s for s in summaries}
        out: list[Violation] = []
        for rule in self.project_rules:
            for violation in rule.check_project(project):
                summary = by_path.get(violation.file)
                if summary is not None and summary.suppressed(
                    violation.line, violation.rule_id
                ):
                    continue
                out.append(violation)
        return out

    def check_source(
        self, source: str, filename: str = "<string>"
    ) -> list[Violation]:
        """Check one source string; ``noqa``-suppressed findings drop.

        Project rules run too, over a single-file project view — useful
        for fixtures and snippets, though cross-file findings obviously
        need :meth:`check_paths`.
        """
        ctx = FileContext(
            filename, source, project_root=self.project_root
        )
        out = self._check_context(ctx)
        if self.project_rules:
            from repro.lint.project.summary import summarize_module

            summary = summarize_module(filename, None, ctx.tree, source)
            out.extend(self._run_project_rules([summary]))
        out.sort(key=lambda v: (v.file, v.line, v.rule_id))
        return out

    def check_file(self, path: Path | str) -> list[Violation]:
        """Check one ``.py`` file on disk."""
        p = Path(path)
        return self.check_source(
            p.read_text(encoding="utf-8"), filename=str(p)
        )

    def _collect(self, paths: Iterable[Path | str]) -> list[Path]:
        files: list[Path] = []
        for path in paths:
            p = Path(path)
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.is_file():
                files.append(p)
            else:
                raise LintError(f"no such file or directory: {p}")
        return files

    def check_paths(self, paths: Iterable[Path | str]) -> list[Violation]:
        """Check files and (recursively) directories of ``.py`` files.

        With a cache attached, unchanged files are neither re-parsed
        nor re-checked: their summaries and findings come back from the
        content-hash lookup.  Project rules then run once over the
        combined summaries.
        """
        from repro.lint.project.summary import summarize_module

        file_rule_ids = [r.rule_id for r in self.file_rules]
        self.stats = {"files": 0, "parsed": 0, "cache_hits": 0}
        out: list[Violation] = []
        summaries = []
        for p in self._collect(paths):
            self.stats["files"] += 1
            raw = p.read_bytes()
            cached = None
            content_hash = None
            if self.cache is not None:
                content_hash = self.cache.content_hash(raw)
                cached = self.cache.lookup(
                    str(p), content_hash, file_rule_ids
                )
            if cached is not None:
                summary, violations = cached
                self.stats["cache_hits"] += 1
            else:
                source = raw.decode("utf-8")
                ctx = FileContext(
                    str(p), source, project_root=self.project_root
                )
                self.stats["parsed"] += 1
                violations = self._check_context(ctx)
                summary = summarize_module(
                    str(p), self._module_name(p), ctx.tree, source
                )
                if self.cache is not None and content_hash is not None:
                    self.cache.store(
                        str(p), content_hash, file_rule_ids,
                        summary, violations,
                    )
            out.extend(violations)
            summaries.append(summary)
        out.extend(self._run_project_rules(summaries))
        if self.cache is not None:
            self.cache.save()
        out.sort(key=lambda v: (v.file, v.line, v.rule_id))
        return out


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def format_text(violations: Sequence[Violation]) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [v.format() for v in violations]
    errors = sum(1 for v in violations if v.severity is Severity.ERROR)
    warnings = len(violations) - errors
    if violations:
        lines.append(f"{errors} error(s), {warnings} warning(s)")
    else:
        lines.append("ok: no violations")
    return "\n".join(lines)


def violations_to_json(violations: Sequence[Violation]) -> str:
    """Serialise violations as a JSON array (stable field order)."""
    return json.dumps(
        [v.to_dict() for v in violations], indent=2, sort_keys=False
    )


def violations_from_json(text: str) -> list[Violation]:
    """Inverse of :func:`violations_to_json` (round-trips exactly)."""
    return [Violation.from_dict(d) for d in json.loads(text)]
