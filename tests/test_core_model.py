"""Unit tests for the full NUMA performance model."""

import numpy as np
import pytest

from repro.core.allocation import ThreadAllocation
from repro.core.model import NumaPerformanceModel
from repro.core.spec import AppSpec, Placement
from repro.errors import ModelError
from repro.machine import MachineTopology, uma_machine


@pytest.fixture
def model():
    return NumaPerformanceModel()


class TestSingleNodeBasics:
    def test_single_compute_thread_runs_at_peak(self, model, uma):
        apps = [AppSpec.compute_bound("c", 10.0)]
        alloc = ThreadAllocation.uniform(["c"], 1, 1)
        p = model.predict(uma, apps, alloc)
        assert p.total_gflops == pytest.approx(10.0)

    def test_memory_bound_limited_by_bandwidth(self, model, uma):
        # 8 threads x 20 GB/s demand, 32 GB/s node -> 32 * 0.5 = 16 GFLOPS.
        apps = [AppSpec.memory_bound("m", 0.5)]
        alloc = ThreadAllocation.uniform(["m"], 1, 8)
        p = model.predict(uma, apps, alloc)
        assert p.total_gflops == pytest.approx(16.0)
        assert p.nodes[0].utilization == pytest.approx(1.0)

    def test_zero_thread_app_gets_nothing(self, model, uma):
        apps = [AppSpec.memory_bound("m"), AppSpec.compute_bound("c")]
        alloc = ThreadAllocation.from_mapping({"m": [0], "c": [4]})
        p = model.predict(uma, apps, alloc)
        assert p.app("m").gflops == 0.0
        assert p.app("m").threads == 0

    def test_bandwidth_conservation(self, model, uma):
        apps = [AppSpec.memory_bound("m", 0.25)]
        alloc = ThreadAllocation.uniform(["m"], 1, 8)
        p = model.predict(uma, apps, alloc)
        assert p.total_bandwidth <= uma.nodes[0].local_bandwidth + 1e-9


class TestMultiNode:
    def test_numa_perfect_scales_with_nodes(self, model, paper_machine):
        apps = [AppSpec.memory_bound("m", 0.5)]
        alloc = ThreadAllocation.uniform(["m"], 4, 8)
        p = model.predict(paper_machine, apps, alloc)
        # Each node saturates at 32 GB/s -> 16 GFLOPS -> 64 total.
        assert p.total_gflops == pytest.approx(64.0)

    def test_group_results_per_node(self, model, paper_machine):
        apps = [AppSpec.memory_bound("m", 0.5)]
        alloc = ThreadAllocation.uniform(["m"], 4, 2)
        p = model.predict(paper_machine, apps, alloc)
        groups = p.app("m").groups
        assert len(groups) == 4
        assert {g.source_node for g in groups} == {0, 1, 2, 3}
        by_node = p.gflops_by_source_node()
        assert np.allclose(by_node, by_node[0])


class TestRemoteAccess:
    def test_numa_bad_capped_by_link(self, model):
        machine = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=4,
            peak_gflops_per_core=10.0,
            local_bandwidth=100.0,
            remote_bandwidth=5.0,
        )
        # All data on node 0; threads only on node 1 -> at most 5 GB/s.
        apps = [AppSpec.numa_bad("b", 1.0, home_node=0)]
        alloc = ThreadAllocation.from_mapping({"b": [0, 4]})
        p = model.predict(machine, apps, alloc)
        assert p.app("b").gflops == pytest.approx(5.0)
        assert p.nodes[0].remote_served == pytest.approx(5.0)

    def test_remote_served_before_local(self, model):
        machine = MachineTopology.homogeneous(
            num_nodes=2,
            cores_per_node=2,
            peak_gflops_per_core=10.0,
            local_bandwidth=10.0,
            remote_bandwidth=6.0,
        )
        apps = [
            AppSpec.memory_bound("local", 0.5),  # demands 20/thread
            AppSpec.numa_bad("remote", 1.0, home_node=0),
        ]
        # local app: 2 threads on node 0; remote app: 2 threads on node 1.
        alloc = ThreadAllocation.from_mapping(
            {"local": [2, 0], "remote": [0, 2]}
        )
        p = model.predict(machine, apps, alloc)
        # remote demand 20 capped by link 6 -> priority service of 6.
        assert p.app("remote").bandwidth == pytest.approx(6.0)
        # node 0 leaves 4 GB/s for the two local threads.
        assert p.app("local").bandwidth == pytest.approx(4.0)

    def test_remote_scaling_when_links_exceed_capacity(self, model):
        # 3 source nodes, each with a 10 GB/s link into node 0, but node 0
        # only has 15 GB/s of memory bandwidth: flows scale by 1/2.
        machine = MachineTopology.homogeneous(
            num_nodes=4,
            cores_per_node=2,
            peak_gflops_per_core=20.0,
            local_bandwidth=15.0,
            remote_bandwidth=10.0,
        )
        apps = [AppSpec.numa_bad("b", 1.0, home_node=0)]
        alloc = ThreadAllocation.from_mapping({"b": [0, 2, 2, 2]})
        p = model.predict(machine, apps, alloc)
        # demand per source node = 2 threads * 20 GB/s = 40, capped by
        # link at 10 each = 30 total, scaled to 15.
        assert p.nodes[0].remote_served == pytest.approx(15.0)
        assert p.app("b").gflops == pytest.approx(15.0)

    def test_interleaved_traffic_spreads(self, model, paper_machine):
        apps = [
            AppSpec(
                "i", 0.5, placement=Placement.INTERLEAVED
            )
        ]
        alloc = ThreadAllocation.uniform(["i"], 4, 2)
        p = model.predict(paper_machine, apps, alloc)
        # every node serves some remote traffic
        assert all(n.remote_served > 0 for n in p.nodes)


class TestValidation:
    def test_apps_allocation_mismatch(self, model, uma):
        apps = [AppSpec.memory_bound("m")]
        alloc = ThreadAllocation.uniform(["other"], 1, 1)
        with pytest.raises(ModelError):
            model.predict(uma, apps, alloc)

    def test_order_matters(self, model, uma):
        apps = [AppSpec.memory_bound("a"), AppSpec.memory_bound("b")]
        alloc = ThreadAllocation.uniform(["b", "a"], 1, 1)
        with pytest.raises(ModelError):
            model.predict(uma, apps, alloc)

    def test_duplicate_apps_rejected(self, model, uma):
        apps = [AppSpec.memory_bound("a"), AppSpec.memory_bound("a")]
        alloc = ThreadAllocation.uniform(["a", "b"], 1, 1)
        with pytest.raises(ModelError):
            model.predict(uma, apps, alloc)

    def test_home_node_out_of_range(self, model, uma):
        apps = [AppSpec.numa_bad("b", home_node=5)]
        alloc = ThreadAllocation.uniform(["b"], 1, 1)
        with pytest.raises(ModelError):
            model.predict(uma, apps, alloc)

    def test_empty_apps_rejected(self, model, uma):
        alloc = ThreadAllocation.uniform(["x"], 1, 1)
        with pytest.raises(ModelError):
            model.predict(uma, [], alloc)

    def test_unknown_app_lookup_raises(self, model, uma):
        apps = [AppSpec.memory_bound("m")]
        alloc = ThreadAllocation.uniform(["m"], 1, 1)
        p = model.predict(uma, apps, alloc)
        with pytest.raises(ModelError):
            p.app("ghost")


class TestReporting:
    def test_summary_contains_apps(self, model, uma):
        apps = [AppSpec.memory_bound("m"), AppSpec.compute_bound("c")]
        alloc = ThreadAllocation.uniform(["m", "c"], 1, [2, 2])
        text = model.predict(uma, apps, alloc).summary()
        assert "m:" in text and "c:" in text

    def test_group_properties(self, model, uma):
        apps = [AppSpec.compute_bound("c", 10.0)]
        alloc = ThreadAllocation.uniform(["c"], 1, 2)
        p = model.predict(uma, apps, alloc)
        g = p.app("c").groups[0]
        assert g.satisfied
        assert g.bw_per_thread == pytest.approx(1.0)
        assert g.gflops_per_thread == pytest.approx(10.0)
