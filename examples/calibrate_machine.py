#!/usr/bin/env python3
"""Section III-B workflow: estimate machine parameters from measurements.

1. STREAM-style sweeps recover the local/remote bandwidth matrix.
2. The paper's closed-form procedure estimates per-thread peak and node
   bandwidth from one even-allocation run of the synthetic benchmark.
3. A least-squares fit over all five Table III scenarios recovers all
   three parameters at once (peak, node bandwidth, link bandwidth).

Run:  python examples/calibrate_machine.py
"""

import numpy as np

from repro.analysis import render_table, run_calibration, table3_scenarios
from repro.core import NumaPerformanceModel
from repro.machine import (
    LeastSquaresCalibrator,
    Scenario,
    measure_pair_bandwidth,
    skylake_4s,
)


def main() -> None:
    machine = skylake_4s()

    # 1. STREAM: one local and one remote measurement.
    local = measure_pair_bandwidth(machine, 0, 0, duration=0.1)
    remote = measure_pair_bandwidth(machine, 1, 0, duration=0.1)
    print(
        render_table(
            ["pair", "measured GB/s", "true GB/s"],
            [
                ["node 0 -> node 0 (local)", local, 100.0],
                ["node 1 -> node 0 (remote)", remote, 10.0],
            ],
            title="STREAM-style bandwidth measurement:",
        )
    )
    print()

    # 2. The paper's closed-form calibration from the even run.
    res = run_calibration(duration=0.3)
    print(
        render_table(
            ["parameter", "true", "estimated"],
            [
                ["peak GFLOPS/thread", res.true_peak, res.est_peak],
                ["node bandwidth GB/s", res.true_bandwidth, res.est_bandwidth],
            ],
            title="Closed-form calibration (paper procedure):",
        )
    )
    print()

    # 3. Least-squares over all five Table III scenarios.
    model = NumaPerformanceModel()
    scenarios = [
        Scenario(
            apps=tuple(apps),
            allocation=alloc,
            measured_total_gflops=model.predict(
                machine, apps, alloc
            ).total_gflops,
        )
        for _, apps, alloc, _, _ in table3_scenarios()
    ]
    fit = LeastSquaresCalibrator(num_nodes=4, cores_per_node=20).fit(
        scenarios
    )
    print(
        render_table(
            ["parameter", "true", "fitted"],
            [
                ["peak GFLOPS/thread", 0.29, fit.peak_gflops_per_thread],
                ["node bandwidth GB/s", 100.0, fit.node_bandwidth],
                ["link bandwidth GB/s", 10.0, fit.link_bandwidth],
            ],
            title="Least-squares fit over the five Table III scenarios:",
        )
    )


if __name__ == "__main__":
    main()
