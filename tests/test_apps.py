"""Tests for the application layer: synthetic apps, scenarios, non-workers."""

import pytest

from repro.apps import (
    ComposedAppScenario,
    ComputeThread,
    IoThread,
    ProducerConsumerScenario,
    SyntheticApp,
)
from repro.core.spec import AppSpec, Placement
from repro.errors import ConfigurationError
from repro.machine import model_machine
from repro.runtime import OCRVxRuntime
from repro.sim import Binding, ExecutionSimulator


@pytest.fixture
def ex():
    return ExecutionSimulator(model_machine())


class TestSyntheticApp:
    def test_batch_runs(self, ex):
        rt = OCRVxRuntime("a", ex)
        rt.start([2, 2, 2, 2])
        app = SyntheticApp(rt, AppSpec.compute_bound("a"))
        app.submit_batch(40)
        ex.run_until_idle()
        assert rt.stats.tasks_executed == 40

    def test_stream_replenishes(self, ex):
        rt = OCRVxRuntime("a", ex)
        rt.start([2, 2, 2, 2])
        app = SyntheticApp(rt, AppSpec.compute_bound("a"))
        app.submit_stream(100)
        ex.run_until_idle()
        assert rt.stats.tasks_executed == 100
        assert app.tasks_created == 100

    def test_numa_perfect_round_robins_active_nodes(self, ex):
        rt = OCRVxRuntime("a", ex)
        rt.start([2, 0, 2, 0])
        app = SyntheticApp(rt, AppSpec.memory_bound("a"))
        tasks = app.submit_batch(8)
        affs = {t.affinity_node for t in tasks}
        assert affs == {0, 2}

    def test_numa_bad_creates_home_datablock(self, ex):
        rt = OCRVxRuntime("b", ex)
        rt.start([2, 2, 2, 2])
        app = SyntheticApp(rt, AppSpec.numa_bad("b", home_node=1))
        tasks = app.submit_batch(4)
        for t in tasks:
            assert t.traffic() == {1: pytest.approx(1.0)}

    def test_interleaved_spreads_datablocks(self, ex):
        spec = AppSpec("i", 1.0, placement=Placement.INTERLEAVED)
        rt = OCRVxRuntime("i", ex)
        rt.start([2, 2, 2, 2])
        app = SyntheticApp(rt, spec)
        t = app.submit_batch(1)[0]
        f = t.traffic()
        assert set(f) == {0, 1, 2, 3}
        assert f[0] == pytest.approx(0.25)

    def test_migrate_data(self, ex):
        rt = OCRVxRuntime("b", ex)
        rt.start([2, 2, 2, 2])
        app = SyntheticApp(rt, AppSpec.numa_bad("b", home_node=0))
        app.migrate_data(3)
        t = app.submit_batch(1)[0]
        assert t.traffic() == {3: pytest.approx(1.0)}

    def test_bad_home_node_rejected(self, ex):
        rt = OCRVxRuntime("b", ex)
        rt.start([1, 1, 1, 1])
        with pytest.raises(ConfigurationError):
            SyntheticApp(rt, AppSpec.numa_bad("b", home_node=9))

    def test_invalid_counts_rejected(self, ex):
        rt = OCRVxRuntime("a", ex)
        rt.start([1, 1, 1, 1])
        app = SyntheticApp(rt, AppSpec.compute_bound("a"))
        with pytest.raises(ConfigurationError):
            app.submit_batch(0)
        with pytest.raises(ConfigurationError):
            app.submit_stream(-5)


class TestProducerConsumer:
    def test_pipeline_completes(self, ex):
        p = OCRVxRuntime("p", ex)
        c = OCRVxRuntime("c", ex)
        p.start([2, 2, 2, 2])
        c.start([2, 2, 2, 2])
        sc = ProducerConsumerScenario(
            ex, p, c, iterations=10, tasks_per_iteration=4
        )
        sc.build()
        ex.run_until_idle()
        assert sc.finished
        assert sc.produced == 10
        assert sc.consumed == 10

    def test_consumer_never_ahead(self, ex):
        p = OCRVxRuntime("p", ex)
        c = OCRVxRuntime("c", ex)
        p.start([2, 2, 2, 2])
        c.start([2, 2, 2, 2])
        sc = ProducerConsumerScenario(
            ex, p, c, iterations=15, tasks_per_iteration=4
        )
        sc.build()
        ex.run_until_idle()
        assert all(v >= 0 for v in sc.intermediate_items.values)

    def test_slow_consumer_builds_backlog(self, ex):
        p = OCRVxRuntime("p", ex)
        c = OCRVxRuntime("c", ex)
        p.start([2, 2, 2, 2])
        c.start([2, 2, 2, 2])
        sc = ProducerConsumerScenario(
            ex,
            p,
            c,
            iterations=20,
            tasks_per_iteration=4,
            producer_flops=0.002,
            consumer_flops=0.02,
        )
        sc.build()
        ex.run_until_idle()
        assert sc.max_intermediate_items() > 3
        assert sc.max_intermediate_bytes() == (
            sc.max_intermediate_items() * sc.item_bytes
        )

    def test_double_build_rejected(self, ex):
        p = OCRVxRuntime("p", ex)
        c = OCRVxRuntime("c", ex)
        p.start([1, 1, 1, 1])
        c.start([1, 1, 1, 1])
        sc = ProducerConsumerScenario(ex, p, c, iterations=2)
        sc.build()
        with pytest.raises(ConfigurationError):
            sc.build()

    def test_invalid_parameters(self, ex):
        p = OCRVxRuntime("p", ex)
        c = OCRVxRuntime("c", ex)
        with pytest.raises(ConfigurationError):
            ProducerConsumerScenario(ex, p, c, iterations=0)


class TestComposedApp:
    def test_alternation_completes(self, ex):
        m = OCRVxRuntime("m", ex)
        l = OCRVxRuntime("l", ex)
        m.start([2, 2, 2, 2])
        l.start([2, 2, 2, 2])
        sc = ComposedAppScenario(
            ex, m, l, phases=5, main_tasks=8, library_tasks=8
        )
        sc.build()
        ex.run_until_idle()
        assert sc.finished
        assert sc.phases_completed == 5
        assert sc.calls_completed == 5

    def test_invalid_phases(self, ex):
        m = OCRVxRuntime("m", ex)
        l = OCRVxRuntime("l", ex)
        with pytest.raises(ConfigurationError):
            ComposedAppScenario(ex, m, l, phases=0)


class TestNonWorkers:
    def test_io_thread_duty_cycle(self, ex):
        io = IoThread(
            ex,
            burst_flops=0.001,
            wait_seconds=0.02,
            total_bursts=3,
        )
        ex.add_thread("io", Binding.to_node(0), io, app_name="io")
        ex.run_until_idle()
        assert io.bursts_done == 3
        # 3 bursts with two 20 ms waits between them: at least 40 ms.
        assert ex.sim.now >= 0.04

    def test_compute_thread_cannot_be_starved(self, ex):
        ct = ComputeThread(task_flops=0.01, total_tasks=5)
        ex.add_thread("ct", Binding.to_node(0), ct, app_name="ct")
        ex.run_until_idle()
        assert ct.tasks_done == 5

    def test_validation(self, ex):
        with pytest.raises(ConfigurationError):
            IoThread(ex, burst_flops=0.0)
        with pytest.raises(ConfigurationError):
            ComputeThread(task_flops=-1.0)
