"""An OpenMP-like runtime adapter: static loops and tied tasks.

Section IV of the paper uses OpenMP to illustrate two hazards for dynamic
core allocation:

* codes "written with the assumption that all their threads progress at a
  similar rate" — the canonical example being ``parallel for`` with
  *static* scheduling, where slowing one thread stalls the loop's implicit
  barrier;
* *tied* tasks, which "[are] guaranteed to eventually resume execution on
  the same thread", so "removing this thread from the worker pool would
  prevent the task from executing" — the paper's suggested fix is to
  simply not suspend threads that own tied work.

:class:`OpenMpRuntime` implements a fixed thread team, ``parallel_for``
with STATIC and DYNAMIC schedules, tied-task tracking, and a
:meth:`~OpenMpRuntime.set_total_threads` that refuses to block a thread
holding tied work (returning which threads it actually blocked).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Sequence

from repro.errors import RuntimeSystemError
from repro.runtime.events import LatchEvent
from repro.runtime.task import Task
from repro.sim.cpu import Binding, SimThread
from repro.sim.executor import ExecutionSimulator, WorkSegment

__all__ = ["OmpSchedule", "OpenMpRuntime"]


class OmpSchedule(enum.Enum):
    """Loop scheduling kinds (the two that matter for the paper's point)."""

    STATIC = "static"
    DYNAMIC = "dynamic"


class OpenMpRuntime:
    """A fixed team of OpenMP-like threads.

    Parameters
    ----------
    name:
        Runtime name.
    executor:
        Shared execution simulator.
    num_threads:
        Team size (``OMP_NUM_THREADS``).
    node:
        Optional NUMA node to bind the whole team to.
    """

    def __init__(
        self,
        name: str,
        executor: ExecutionSimulator,
        num_threads: int,
        *,
        node: int | None = None,
    ) -> None:
        if num_threads <= 0:
            raise RuntimeSystemError("OpenMP team needs at least one thread")
        self.name = name
        self.executor = executor
        binding = Binding.to_node(node) if node is not None else Binding.unbound()
        self._threads: list[SimThread] = []
        #: per-thread private queues (static chunks, tied tasks)
        self._private: dict[int, deque[Task]] = {}
        #: shared queue (dynamic chunks, untied tasks)
        self._shared: deque[Task] = deque()
        self._current: dict[int, Task] = {}
        self._blocked_target = 0
        for i in range(num_threads):
            t = executor.add_thread(
                f"{name}/omp{i}", binding, self, app_name=name
            )
            self._threads.append(t)
            self._private[t.tid] = deque()
        self.loops_completed = 0
        self.tasks_executed = 0

    @property
    def num_threads(self) -> int:
        """Team size."""
        return len(self._threads)

    # ------------------------------------------------------------------
    # Loop API
    # ------------------------------------------------------------------
    def parallel_for(
        self,
        name: str,
        iterations: int,
        flops_per_iteration: float,
        arithmetic_intensity: float,
        *,
        schedule: OmpSchedule = OmpSchedule.STATIC,
        chunk: int | None = None,
    ) -> LatchEvent:
        """Submit a parallel loop; returns its completion latch.

        STATIC pre-assigns contiguous chunks to threads (each thread's
        chunk goes to its private queue — nobody else may run it, exactly
        the rigidity Section IV warns about).  DYNAMIC splits the
        iteration space into ``chunk``-sized tasks on the shared queue.
        """
        if iterations <= 0:
            raise RuntimeSystemError(f"loop '{name}': iterations must be > 0")
        nt = len(self._threads)
        done = LatchEvent(1, name=f"{self.name}/{name}.done")

        def make_task(label: str, iters: int, owner: int | None) -> Task:
            done.count_up()
            task = Task(
                name=f"{self.name}/{name}/{label}",
                flops=iters * flops_per_iteration,
                arithmetic_intensity=arithmetic_intensity,
                on_finish=lambda _t: done.count_down(),
                tied_to=None,
            )
            return task

        if schedule is OmpSchedule.STATIC:
            base, extra = divmod(iterations, nt)
            for i, t in enumerate(self._threads):
                iters = base + (1 if i < extra else 0)
                if iters == 0:
                    continue
                task = make_task(f"chunk{i}", iters, t.tid)
                self._private[t.tid].append(task)
        else:
            step = chunk or max(1, iterations // (4 * nt))
            start = 0
            idx = 0
            while start < iterations:
                iters = min(step, iterations - start)
                task = make_task(f"dyn{idx}", iters, None)
                self._shared.append(task)
                start += iters
                idx += 1
        done.count_down()  # balance the initial 1; fires when tasks drain
        done.add_dependent(lambda _p: self._loop_done())
        return done

    def _loop_done(self) -> None:
        self.loops_completed += 1

    def submit_tied_task(
        self,
        name: str,
        flops: float,
        arithmetic_intensity: float,
        thread_index: int,
    ) -> Task:
        """Submit a task tied to a specific team thread."""
        if not 0 <= thread_index < len(self._threads):
            raise RuntimeSystemError(
                f"thread index {thread_index} out of range"
            )
        t = self._threads[thread_index]
        task = Task(
            name=f"{self.name}/{name}",
            flops=flops,
            arithmetic_intensity=arithmetic_intensity,
            tied_to=t.name,
        )
        self._private[t.tid].append(task)
        return task

    # ------------------------------------------------------------------
    # Thread control with the tied-task caveat
    # ------------------------------------------------------------------
    def set_total_threads(self, n: int) -> list[str]:
        """Try to reduce the active team to ``n`` threads.

        Threads holding tied work are never blocked (the paper's
        resolution of the tied-task problem).  Returns the names of the
        threads actually blocked; the caller (agent) can see the command
        was only partially honoured.
        """
        if n < 0 or n > len(self._threads):
            raise RuntimeSystemError(
                f"target {n} outside [0, {len(self._threads)}]"
            )
        from repro.sim.cpu import ThreadState

        active = [
            t for t in self._threads if t.state is ThreadState.RUNNABLE
        ]
        blocked_now: list[str] = []
        to_block = len(active) - n
        if to_block > 0:
            # Prefer blocking threads without tied/private work.
            candidates = sorted(
                active,
                key=lambda t: (len(self._private[t.tid]) > 0, t.tid),
            )
            for t in candidates:
                if to_block == 0:
                    break
                if self._private[t.tid]:
                    continue  # tied or static work pinned here
                self.executor.block(t)
                blocked_now.append(t.name)
                to_block -= 1
        elif to_block < 0:
            blocked = [
                t for t in self._threads if t.state is ThreadState.BLOCKED
            ]
            for t in blocked[: -to_block]:
                self.executor.unblock(t)
        return blocked_now

    # ------------------------------------------------------------------
    # WorkProvider protocol
    # ------------------------------------------------------------------
    def next_segment(self, thread: SimThread) -> WorkSegment | None:
        """Pop the thread's private queue first, then the shared one."""
        own = self._private[thread.tid]
        task: Task | None = None
        if own:
            task = own.popleft()
        elif self._shared:
            task = self._shared.popleft()
        if task is None:
            return None
        task.start(thread.name)
        self._current[thread.tid] = task
        return WorkSegment(
            flops=task.flops,
            arithmetic_intensity=task.arithmetic_intensity,
            data_fractions=task.traffic(),
            label=task.name,
        )

    def segment_finished(self, thread: SimThread, segment: WorkSegment) -> None:
        """Complete the thread's chunk/task (drives loop latches)."""
        task = self._current.pop(thread.tid, None)
        if task is None:
            raise RuntimeSystemError(
                f"OpenMP thread {thread.name} finished unknown segment"
            )
        self.tasks_executed += 1
        task.finish()
