"""Unit and integration tests for OCRVxRuntime and its thread control."""

import pytest

from repro.errors import RuntimeSystemError
from repro.machine import model_machine
from repro.runtime import (
    BindingMode,
    FifoScheduler,
    OCRVxRuntime,
    WorkStealingScheduler,
)
from repro.sim import ExecutionSimulator


@pytest.fixture
def ex():
    return ExecutionSimulator(model_machine())


@pytest.fixture
def rt(ex):
    runtime = OCRVxRuntime("app", ex)
    runtime.start([2, 2, 2, 2])
    return runtime


class TestStartup:
    def test_default_start_one_worker_per_core(self, ex):
        rt = OCRVxRuntime("app", ex)
        rt.start()
        assert len(rt.workers) == 32
        assert rt.active_threads == 32

    def test_explicit_allocation(self, rt):
        assert len(rt.workers) == 8
        assert rt.active_per_node() == [2, 2, 2, 2]

    def test_double_start_rejected(self, rt):
        with pytest.raises(RuntimeSystemError):
            rt.start()

    def test_too_many_workers_rejected(self, ex):
        rt = OCRVxRuntime("app", ex)
        with pytest.raises(RuntimeSystemError):
            rt.start([9, 0, 0, 0])

    def test_wrong_node_count_rejected(self, ex):
        rt = OCRVxRuntime("app", ex)
        with pytest.raises(RuntimeSystemError):
            rt.start([1, 1])

    def test_core_binding_mode(self, ex):
        rt = OCRVxRuntime("app", ex, binding_mode=BindingMode.CORE)
        rt.start([2, 0, 0, 0])
        from repro.sim.cpu import BindingKind

        assert all(
            w.binding.kind is BindingKind.CORE for w in rt.workers
        )


class TestExecution:
    def test_runs_all_tasks(self, ex, rt):
        for i in range(50):
            rt.create_task(f"t{i}", flops=0.01, arithmetic_intensity=10.0)
        ex.run_until_idle()
        assert rt.stats.tasks_executed == 50
        assert rt.queue_length == 0

    def test_dependencies_respected(self, ex, rt):
        order = []
        a = rt.create_task(
            "a", 0.01, 10.0, on_finish=lambda t: order.append("a")
        )
        b = rt.create_task(
            "b", 0.01, 10.0, depends_on=[a],
            on_finish=lambda t: order.append("b"),
        )
        rt.create_task(
            "c", 0.01, 10.0, depends_on=[b],
            on_finish=lambda t: order.append("c"),
        )
        ex.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_dynamic_task_creation(self, ex, rt):
        count = [0]

        def spawn(task):
            count[0] += 1
            if count[0] < 10:
                rt.create_task(
                    f"gen{count[0]}", 0.01, 10.0, on_finish=spawn
                )

        rt.create_task("gen0", 0.01, 10.0, on_finish=spawn)
        ex.run_until_idle()
        assert count[0] == 10

    def test_create_after_stop_rejected(self, ex, rt):
        rt.stop()
        with pytest.raises(RuntimeSystemError):
            rt.create_task("t", 1.0, 1.0)

    def test_work_stealing_scheduler_integration(self, ex):
        rt = OCRVxRuntime(
            "ws", ex, scheduler=WorkStealingScheduler(seed=3)
        )
        rt.start([2, 2, 2, 2])
        for i in range(40):
            rt.create_task(f"t{i}", 0.01, 10.0)
        ex.run_until_idle()
        assert rt.stats.tasks_executed == 40


class TestOption1TotalThreads:
    def test_reduce_blocks_idle_workers(self, ex, rt):
        rt.set_total_threads(4)
        ex.run(0.01)
        assert rt.active_threads == 4
        assert rt.blocked_threads == 4

    def test_raise_unblocks_randomly(self, ex, rt):
        rt.set_total_threads(2)
        ex.run(0.01)
        assert rt.active_threads == 2
        rt.set_total_threads(6)
        assert rt.active_threads == 6

    def test_worker_finishes_task_before_blocking(self, ex, rt):
        # A long task keeps its worker alive past the command.
        rt.create_task("long", flops=0.5, arithmetic_intensity=10.0)
        ex.run(0.005)
        busy = [w for w in rt.workers if w.busy]
        assert len(busy) == 1
        rt.set_total_threads(0)
        ex.run(0.01)
        # the busy worker is still running its task
        assert busy[0].busy
        ex.run(0.1)  # enough time for the 50 ms task to finish
        assert rt.stats.tasks_executed == 1
        assert rt.active_threads == 0  # ...and then it blocked too

    def test_out_of_range_rejected(self, rt):
        with pytest.raises(RuntimeSystemError):
            rt.set_total_threads(9)
        with pytest.raises(RuntimeSystemError):
            rt.set_total_threads(-1)


class TestOption2ExplicitWorkers:
    def test_block_specific_workers(self, ex, rt):
        names = [rt.workers[0].name, rt.workers[3].name]
        rt.block_workers(names)
        ex.run(0.01)
        assert rt.workers[0].blocked
        assert rt.workers[3].blocked
        assert rt.active_threads == 6
        rt.unblock_workers(names)
        assert rt.active_threads == 8

    def test_unknown_worker_rejected(self, rt):
        with pytest.raises(RuntimeSystemError):
            rt.block_workers(["ghost"])
        with pytest.raises(RuntimeSystemError):
            rt.unblock_workers(["ghost"])


class TestOption3PerNode:
    def test_per_node_targets(self, ex, rt):
        rt.set_node_threads(0, 1)
        rt.set_node_threads(2, 0)
        ex.run(0.01)
        assert rt.active_per_node() == [1, 2, 0, 2]

    def test_set_allocation(self, ex, rt):
        rt.set_allocation([1, 2, 1, 2])
        ex.run(0.01)
        assert rt.active_per_node() == [1, 2, 1, 2]
        rt.set_allocation([2, 2, 2, 2])
        assert rt.active_per_node() == [2, 2, 2, 2]

    def test_unbound_mode_rejects_option3(self, ex):
        rt = OCRVxRuntime("u", ex, binding_mode=BindingMode.UNBOUND)
        rt.start([2, 2, 2, 2])
        with pytest.raises(RuntimeSystemError):
            rt.set_node_threads(0, 1)

    def test_out_of_range_rejected(self, rt):
        with pytest.raises(RuntimeSystemError):
            rt.set_node_threads(0, 5)

    def test_work_continues_on_active_nodes(self, ex, rt):
        rt.set_allocation([2, 0, 0, 0])
        for i in range(20):
            rt.create_task(
                f"t{i}", 0.01, 10.0, affinity_node=0
            )
        ex.run_until_idle()
        assert rt.stats.tasks_executed == 20


class TestStats:
    def test_progress_counters(self, rt):
        rt.stats.report_progress("iterations")
        rt.stats.report_progress("iterations", 2.0)
        assert rt.stats.progress["iterations"] == 3.0


class TestWorkerMigration:
    def test_migrate_moves_execution_and_queue_affinity(self, ex, rt):
        w = rt.workers[0]
        assert w.node == 0
        rt.migrate_worker(w.name, 3)
        assert w.node == 3
        assert rt.active_per_node() == [1, 2, 2, 3]
        # the migrated worker executes node-3 tasks
        done = []
        for i in range(6):
            rt.create_task(
                f"m{i}", 0.01, 10.0, affinity_node=3,
                on_finish=lambda t: done.append(t.name),
            )
        ex.run_until_idle()
        assert len(done) == 6

    def test_migrate_same_node_noop(self, rt):
        w = rt.workers[0]
        rt.migrate_worker(w.name, 0)
        assert w.node == 0

    def test_migrate_validation(self, ex, rt):
        with pytest.raises(RuntimeSystemError):
            rt.migrate_worker("ghost", 1)
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            rt.migrate_worker(rt.workers[0].name, 9)

    def test_migrate_requires_node_binding(self, ex):
        rt = OCRVxRuntime("u", ex, binding_mode=BindingMode.UNBOUND)
        rt.start([1, 1, 1, 1])
        with pytest.raises(RuntimeSystemError):
            rt.migrate_worker(rt.workers[0].name, 1)

    def test_rebalance_via_migration(self, ex, rt):
        """Shift all node-0 workers to node 1: a core transfer without
        any blocking (thread counts stay constant)."""
        for w in list(rt.workers):
            if w.node == 0:
                rt.migrate_worker(w.name, 1)
        assert rt.active_per_node() == [0, 4, 2, 2]
        assert rt.blocked_threads == 0
