"""The network-facing gateway: admission control on real TCP sockets.

Covers the edge cases a trusting transport never sees: slow-loris
partial lines, oversized frames, connection-cap rejection, token-bucket
burst-then-sustain behaviour, drain with commands still queued, and
malformed HTTP requests against the adapter.
"""

import asyncio
import json

import pytest

from repro.core import AppSpec
from repro.errors import ServiceError
from repro.machine import model_machine
from repro.serve import (
    Ack,
    AllocationUpdate,
    ErrorReply,
    GatewayConfig,
    GatewayServer,
    ServiceConfig,
    ShutdownNotice,
    TokenBucket,
    decode_message,
    encode_message,
)
from repro.serve.protocol import (
    Deregister,
    ProgressReport,
    QueryAllocation,
    Register,
)

MEM = AppSpec.memory_bound("mem", 0.5)
CPU = AppSpec.compute_bound("cpu", 10.0)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=20.0))


def make_gateway(**gw_kwargs):
    gw_kwargs.setdefault("port", 0)
    config = ServiceConfig(machine=model_machine(), debounce=0.01)
    return GatewayServer(config, GatewayConfig(**gw_kwargs))


async def connect(gateway):
    host, port = gateway.tcp_address
    return await asyncio.open_connection(host, port)


async def request(reader, writer, message):
    """One round-trip, skipping pushed (untagged) stream lines."""
    writer.write((encode_message(message) + "\n").encode("utf-8"))
    await writer.drain()
    while True:
        line = await asyncio.wait_for(reader.readline(), timeout=10.0)
        assert line, "connection closed while awaiting a reply"
        reply = decode_message(line.decode("utf-8"))
        if getattr(reply, "in_reply_to", None) is not None:
            return reply


async def http_exchange(gateway, raw: bytes) -> tuple[int, dict]:
    """Send raw bytes to the HTTP listener; parse status + JSON body."""
    host, port = gateway.http_address
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(raw)
        await writer.drain()
        status_line = await asyncio.wait_for(
            reader.readline(), timeout=10.0
        )
        status = int(status_line.split()[1])
        length = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = json.loads((await reader.readexactly(length)).decode())
        return status, body
    finally:
        writer.close()


def http_post_command(message) -> bytes:
    body = encode_message(message).encode("utf-8")
    head = (
        f"POST /v1/command HTTP/1.1\r\n"
        f"content-length: {len(body)}\r\n"
        f"connection: close\r\n\r\n"
    ).encode("latin-1")
    return head + body


class TestTokenBucket:
    def test_burst_then_refill_on_injected_clock(self):
        t = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3, clock=lambda: t[0])
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        t[0] = 0.1  # one token refilled
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        t[0] = 10.0  # refill caps at burst
        assert bucket.available() == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ServiceError):
            TokenBucket(rate=0.0, burst=1, clock=lambda: 0.0)
        with pytest.raises(ServiceError):
            TokenBucket(rate=1.0, burst=0, clock=lambda: 0.0)


class TestGatewayConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_connections": 0},
            {"rate": 0.0},
            {"burst": 0},
            {"admission_limit": 0},
            {"idle_deadline": 0.0},
            {"max_line_bytes": 100},
            {"outbox_limit": 0},
        ],
    )
    def test_bad_knob_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            GatewayConfig(**kwargs)


class TestTcpRoundTrip:
    def test_register_query_deregister(self):
        gateway = make_gateway()

        async def scenario():
            await gateway.start()
            reader, writer = await connect(gateway)
            ack = await request(
                reader, writer, Register(name="mem", app=MEM)
            )
            assert isinstance(ack, Ack)
            await asyncio.sleep(0.05)  # debounce fires on loop time
            update = await request(
                reader, writer, QueryAllocation(name="mem")
            )
            assert isinstance(update, AllocationUpdate)
            assert update.per_node == (8, 8, 8, 8)
            bye = await request(reader, writer, Deregister(name="mem"))
            assert isinstance(bye, Ack)
            writer.close()
            await gateway.stop()
            assert gateway.commands == 3

        run(scenario())

    def test_pushed_update_arrives_on_the_stream(self):
        gateway = make_gateway()

        async def scenario():
            await gateway.start()
            reader, writer = await connect(gateway)
            await request(reader, writer, Register(name="mem", app=MEM))
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            pushed = decode_message(line.decode("utf-8"))
            assert isinstance(pushed, AllocationUpdate)
            assert pushed.in_reply_to is None
            writer.close()
            await gateway.stop()

        run(scenario())

    def test_malformed_line_gets_error_not_disconnect(self):
        gateway = make_gateway()

        async def scenario():
            await gateway.start()
            reader, writer = await connect(gateway)
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = decode_message(
                (await reader.readline()).decode("utf-8")
            )
            assert isinstance(reply, ErrorReply)
            assert reply.code == "malformed"
            # The connection survived: a real command still works.
            ack = await request(
                reader, writer, Register(name="mem", app=MEM)
            )
            assert isinstance(ack, Ack)
            writer.close()
            await gateway.stop()

        run(scenario())


class TestSlowLoris:
    def test_partial_line_is_disconnected_at_the_idle_deadline(self):
        gateway = make_gateway(idle_deadline=0.1)

        async def scenario():
            await gateway.start()
            reader, writer = await connect(gateway)
            # A partial frame, never completed with a newline.
            writer.write(b'{"type": "regis')
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            assert line == b""  # server closed the socket, no reply
            assert gateway.idle_timeouts == 1
            writer.close()
            await gateway.stop()

        run(scenario())

    def test_active_connection_is_not_disconnected(self):
        gateway = make_gateway(idle_deadline=0.2)

        async def scenario():
            await gateway.start()
            reader, writer = await connect(gateway)
            await request(reader, writer, Register(name="mem", app=MEM))
            for _ in range(4):
                await asyncio.sleep(0.1)  # stays under the deadline
                loop = asyncio.get_running_loop()
                reply = await request(
                    reader,
                    writer,
                    ProgressReport(name="mem", time=loop.time()),
                )
                assert isinstance(reply, Ack)
            assert gateway.idle_timeouts == 0
            writer.close()
            await gateway.stop()

        run(scenario())


class TestOversizedFrames:
    def test_frame_too_large_replies_then_disconnects(self):
        gateway = make_gateway(max_line_bytes=1024)

        async def scenario():
            await gateway.start()
            reader, writer = await connect(gateway)
            writer.write(b"x" * 4096 + b"\n")
            await writer.drain()
            reply = decode_message(
                (await reader.readline()).decode("utf-8")
            )
            assert isinstance(reply, ErrorReply)
            assert reply.code == "frame-too-large"
            assert await reader.readline() == b""  # disconnected
            writer.close()
            await gateway.stop()

        run(scenario())


class TestConnectionLimit:
    def test_over_cap_connect_is_rejected_overloaded(self):
        gateway = make_gateway(max_connections=1)

        async def scenario():
            await gateway.start()
            reader1, writer1 = await connect(gateway)
            ack = await request(
                reader1, writer1, Register(name="mem", app=MEM)
            )
            assert isinstance(ack, Ack)
            reader2, writer2 = await connect(gateway)
            line = await asyncio.wait_for(
                reader2.readline(), timeout=5.0
            )
            reply = decode_message(line.decode("utf-8"))
            assert isinstance(reply, ErrorReply)
            assert reply.code == "overloaded"
            assert await reader2.readline() == b""  # closed
            assert gateway.rejected_connections == 1
            # The first connection is unaffected.
            bye = await request(
                reader1, writer1, Deregister(name="mem")
            )
            assert isinstance(bye, Ack)
            writer1.close()
            writer2.close()
            await gateway.stop()

        run(scenario())

    def test_slot_frees_up_after_disconnect(self):
        gateway = make_gateway(max_connections=1)

        async def scenario():
            await gateway.start()
            reader1, writer1 = await connect(gateway)
            await request(reader1, writer1, Register(name="mem", app=MEM))
            writer1.close()
            await writer1.wait_closed()
            await asyncio.sleep(0.05)  # let the server reap the socket
            reader2, writer2 = await connect(gateway)
            ack = await request(
                reader2, writer2, Register(name="cpu", app=CPU)
            )
            assert isinstance(ack, Ack)
            writer2.close()
            await gateway.stop()

        run(scenario())


class TestRateLimit:
    def test_burst_then_sustain(self):
        gateway = make_gateway(rate=20.0, burst=5)

        async def scenario():
            await gateway.start()
            reader, writer = await connect(gateway)
            loop = asyncio.get_running_loop()
            await request(reader, writer, Register(name="mem", app=MEM))
            # Burst: 4 more instant commands fit the 5-token bucket.
            for _ in range(4):
                reply = await request(
                    reader,
                    writer,
                    ProgressReport(name="mem", time=loop.time()),
                )
                assert isinstance(reply, Ack)
            # The bucket is dry: the next instant command is shed.
            shed = await request(
                reader,
                writer,
                ProgressReport(name="mem", time=loop.time()),
            )
            assert isinstance(shed, ErrorReply)
            assert shed.code == "overloaded"
            assert gateway.rate_limited >= 1
            # Sustained pace under the refill rate is admitted again.
            accepted = 0
            for _ in range(3):
                await asyncio.sleep(0.06)  # > 1/rate seconds
                reply = await request(
                    reader,
                    writer,
                    ProgressReport(name="mem", time=loop.time()),
                )
                if isinstance(reply, Ack):
                    accepted += 1
            assert accepted == 3
            writer.close()
            await gateway.stop()

        run(scenario())


class TestAdmissionQueue:
    def test_queue_overflow_sheds_overloaded(self):
        gateway = make_gateway(admission_limit=1)

        async def scenario():
            await gateway.start()
            # Pause the dispatcher so the queue cannot drain while the
            # flood goes in.
            gateway._dispatcher.cancel()
            try:
                await gateway._dispatcher
            except asyncio.CancelledError:
                pass
            reader, writer = await connect(gateway)
            for _ in range(3):
                writer.write(
                    (
                        encode_message(Register(name="mem", app=MEM))
                        + "\n"
                    ).encode("utf-8")
                )
            await writer.drain()
            await asyncio.sleep(0.1)  # let the read loop admit/shed
            assert gateway.shed >= 2  # one queued, the rest shed
            # Restart the dispatcher so stop() can drain the queue.
            gateway._dispatcher = asyncio.ensure_future(
                gateway._dispatch()
            )
            writer.close()
            await gateway.stop()

        run(scenario())


class TestDrain:
    def test_inflight_commands_are_answered_before_shutdown(self):
        gateway = make_gateway()

        async def scenario():
            await gateway.start()
            reader, writer = await connect(gateway)
            await request(reader, writer, Register(name="mem", app=MEM))
            loop = asyncio.get_running_loop()
            # Burst of commands, then stop() immediately: every one
            # already read off the wire must still get a real reply.
            for _ in range(5):
                writer.write(
                    (
                        encode_message(
                            ProgressReport(name="mem", time=loop.time())
                        )
                        + "\n"
                    ).encode("utf-8")
                )
            await writer.drain()
            await asyncio.sleep(0.05)  # commands enter the queue
            await gateway.stop()
            replies = []
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=5.0
                )
                if not line:
                    break
                replies.append(decode_message(line.decode("utf-8")))
            acks = [
                r
                for r in replies
                if isinstance(r, Ack)
                and r.in_reply_to == "progress-report"
            ]
            assert len(acks) == 5
            assert any(
                isinstance(r, ShutdownNotice) for r in replies
            )
            writer.close()

        run(scenario())

    def test_new_connections_rejected_while_draining(self):
        gateway = make_gateway()

        async def scenario():
            await gateway.start()
            await gateway.stop()
            host, port = ("127.0.0.1", 0)
            with pytest.raises((ConnectionError, OSError, ServiceError)):
                # The listener is gone; tcp_address raises or the
                # connect fails.
                host, port = gateway.tcp_address
                await asyncio.open_connection(host, port)

        run(scenario())

    def test_commands_during_drain_window_are_shed_draining(self):
        gateway = make_gateway()

        async def scenario():
            await gateway.start()
            reader, writer = await connect(gateway)
            # Freeze the gateway inside its drain window (listeners
            # closing, queue settling) and send a command through the
            # still-open connection.
            gateway._draining = True
            writer.write(
                (
                    encode_message(Register(name="mem", app=MEM)) + "\n"
                ).encode("utf-8")
            )
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            reply = decode_message(line.decode("utf-8"))
            assert isinstance(reply, ErrorReply)
            assert reply.code == "draining"
            assert gateway.shed == 1
            writer.close()
            await gateway.stop()

        run(scenario())


class TestHttpAdapter:
    def make_http_gateway(self, **kwargs):
        kwargs.setdefault("http_port", 0)
        return make_gateway(**kwargs)

    def test_register_report_query_over_http(self):
        gateway = self.make_http_gateway()

        async def scenario():
            await gateway.start()
            status, body = await http_exchange(
                gateway, http_post_command(Register(name="mem", app=MEM))
            )
            assert status == 200
            assert body["type"] == "ack"
            await asyncio.sleep(0.05)  # debounce
            host, port = gateway.http_address
            reader, writer = await asyncio.open_connection(host, port)
            writer.close()
            status, body = await http_exchange(
                gateway,
                b"GET /v1/allocation/mem HTTP/1.1\r\n\r\n",
            )
            assert status == 200
            assert body["type"] == "allocation"
            assert body["per_node"] == [8, 8, 8, 8]
            status, body = await http_exchange(
                gateway, b"GET /healthz HTTP/1.1\r\n\r\n"
            )
            assert status == 200
            assert body["status"] == "ok"
            assert body["sessions"] == 1
            await gateway.stop()

        run(scenario())

    def test_malformed_request_line_is_400(self):
        gateway = self.make_http_gateway()

        async def scenario():
            await gateway.start()
            status, body = await http_exchange(gateway, b"NONSENSE\r\n\r\n")
            assert status == 400
            assert "malformed" in body["error"]
            await gateway.stop()

        run(scenario())

    def test_unknown_route_is_404_and_bad_method_is_405(self):
        gateway = self.make_http_gateway()

        async def scenario():
            await gateway.start()
            status, _ = await http_exchange(
                gateway, b"GET /nowhere HTTP/1.1\r\n\r\n"
            )
            assert status == 404
            status, _ = await http_exchange(
                gateway, b"GET /v1/command HTTP/1.1\r\n\r\n"
            )
            assert status == 405
            await gateway.stop()

        run(scenario())

    def test_bad_content_length_is_400(self):
        gateway = self.make_http_gateway()

        async def scenario():
            await gateway.start()
            status, body = await http_exchange(
                gateway,
                b"POST /v1/command HTTP/1.1\r\n"
                b"content-length: banana\r\n\r\n",
            )
            assert status == 400
            assert "content-length" in body["error"]
            await gateway.stop()

        run(scenario())

    def test_oversized_body_is_413(self):
        gateway = self.make_http_gateway(max_line_bytes=1024)

        async def scenario():
            await gateway.start()
            status, _ = await http_exchange(
                gateway,
                b"POST /v1/command HTTP/1.1\r\n"
                b"content-length: 99999\r\n\r\n",
            )
            assert status == 413
            await gateway.stop()

        run(scenario())

    def test_malformed_json_body_is_400_malformed(self):
        gateway = self.make_http_gateway()

        async def scenario():
            await gateway.start()
            body = b"not json"
            status, reply = await http_exchange(
                gateway,
                b"POST /v1/command HTTP/1.1\r\n"
                + f"content-length: {len(body)}\r\n\r\n".encode()
                + body,
            )
            assert status == 400
            assert reply["code"] == "malformed"
            await gateway.stop()

        run(scenario())

    def test_unknown_session_maps_to_404(self):
        gateway = self.make_http_gateway()

        async def scenario():
            await gateway.start()
            status, reply = await http_exchange(
                gateway,
                b"GET /v1/allocation/ghost HTTP/1.1\r\n\r\n",
            )
            assert status == 404
            assert reply["code"] == "unknown-session"
            await gateway.stop()

        run(scenario())


class TestJournalRecovery:
    def test_gateway_recovers_sessions_from_journal(self, tmp_path):
        journal = str(tmp_path / "journal")

        async def first_life():
            gateway = GatewayServer(
                ServiceConfig(machine=model_machine(), debounce=0.01),
                GatewayConfig(port=0),
                journal_path=journal,
            )
            service = await gateway.start()
            reader, writer = await connect(gateway)
            await request(reader, writer, Register(name="mem", app=MEM))
            await asyncio.sleep(0.05)
            # Crash, not drain: the journal keeps the session.
            service.crash()
            writer.close()
            gateway._tcp_server.close()
            await gateway._tcp_server.wait_closed()

        async def second_life():
            gateway = GatewayServer(
                ServiceConfig(machine=model_machine(), debounce=0.01),
                GatewayConfig(port=0),
                journal_path=journal,
            )
            service = await gateway.start()
            assert service.recoveries == 1
            assert "mem" in service.registry
            reader, writer = await connect(gateway)
            await asyncio.sleep(0.05)  # reconcile re-optimization
            update = await request(
                reader, writer, QueryAllocation(name="mem")
            )
            assert isinstance(update, AllocationUpdate)
            writer.close()
            await gateway.stop()

        run(first_life())
        run(second_life())
