"""Thread allocations: how many threads each application runs on each node.

This is the paper's thread-control **option 3** ("number of threads per
NUMA node") made concrete: an allocation is an ``apps x nodes`` integer
matrix.  Options 1 (total thread count) and 2 (explicit cores) are handled
by the runtime layer (:mod:`repro.runtime`); the analytic model always
reasons in option-3 terms because, under the paper's no-over-subscription
assumption, threads and cores are interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import AllocationError, OversubscriptionError
from repro.machine.topology import MachineTopology

__all__ = ["ThreadAllocation"]


@dataclass(frozen=True)
class ThreadAllocation:
    """Per-application, per-NUMA-node thread counts.

    Parameters
    ----------
    app_names:
        Application names, one per matrix row, unique.
    counts:
        Integer matrix of shape ``(len(app_names), num_nodes)``;
        ``counts[a, n]`` is the number of threads of application ``a``
        bound to NUMA node ``n``.
    """

    app_names: tuple[str, ...]
    counts: np.ndarray

    def __post_init__(self) -> None:
        if len(set(self.app_names)) != len(self.app_names):
            raise AllocationError(f"duplicate app names: {self.app_names}")
        counts = np.asarray(self.counts)
        if counts.ndim != 2:
            raise AllocationError(
                f"counts must be a 2-D matrix, got shape {counts.shape}"
            )
        if counts.shape[0] != len(self.app_names):
            raise AllocationError(
                f"counts has {counts.shape[0]} rows but there are "
                f"{len(self.app_names)} app names"
            )
        if not np.issubdtype(counts.dtype, np.integer):
            rounded = np.rint(counts)
            if not np.allclose(counts, rounded):
                raise AllocationError("thread counts must be integers")
            counts = rounded.astype(np.int64)
        else:
            counts = counts.astype(np.int64)
        if np.any(counts < 0):
            raise AllocationError("thread counts must be non-negative")
        counts.setflags(write=False)
        object.__setattr__(self, "counts", counts)
        object.__setattr__(self, "app_names", tuple(self.app_names))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(
        cls,
        per_app: Mapping[str, Sequence[int]],
    ) -> "ThreadAllocation":
        """Build from ``{app_name: [threads_on_node0, ...]}``."""
        if not per_app:
            raise AllocationError("allocation must contain at least one app")
        names = tuple(per_app)
        lengths = {len(v) for v in per_app.values()}
        if len(lengths) != 1:
            raise AllocationError(
                f"all apps must list the same number of nodes, got {lengths}"
            )
        counts = np.array([list(per_app[n]) for n in names], dtype=np.int64)
        return cls(app_names=names, counts=counts)

    @classmethod
    def uniform(
        cls,
        app_names: Sequence[str],
        num_nodes: int,
        threads_per_node: int | Sequence[int],
    ) -> "ThreadAllocation":
        """Give every app the same per-node thread count(s).

        ``threads_per_node`` is either one integer (same count on every
        node) or one integer per app (that app's count on every node).
        """
        names = tuple(app_names)
        if isinstance(threads_per_node, int):
            per_app = [threads_per_node] * len(names)
        else:
            per_app = list(threads_per_node)
            if len(per_app) != len(names):
                raise AllocationError(
                    f"{len(per_app)} thread counts for {len(names)} apps"
                )
        counts = np.array(
            [[t] * num_nodes for t in per_app], dtype=np.int64
        )
        return cls(app_names=names, counts=counts)

    @classmethod
    def node_exclusive(
        cls,
        app_names: Sequence[str],
        machine: MachineTopology,
        assignment: Mapping[str, int] | None = None,
    ) -> "ThreadAllocation":
        """Give each application all cores of one NUMA node.

        Requires exactly as many apps as nodes.  ``assignment`` maps app
        name to node id; by default apps take nodes in listing order.
        """
        names = tuple(app_names)
        if len(names) != machine.num_nodes:
            raise AllocationError(
                f"node-exclusive needs one app per node: {len(names)} apps, "
                f"{machine.num_nodes} nodes"
            )
        if assignment is None:
            assignment = {name: i for i, name in enumerate(names)}
        if sorted(assignment.values()) != list(range(machine.num_nodes)):
            raise AllocationError(
                f"assignment must be a bijection onto nodes "
                f"0..{machine.num_nodes - 1}: {assignment}"
            )
        counts = np.zeros((len(names), machine.num_nodes), dtype=np.int64)
        for a, name in enumerate(names):
            if name not in assignment:
                raise AllocationError(f"assignment missing app '{name}'")
            node = assignment[name]
            counts[a, node] = machine.node(node).num_cores
        return cls(app_names=names, counts=counts)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_apps(self) -> int:
        """Number of applications in the allocation."""
        return len(self.app_names)

    @property
    def num_nodes(self) -> int:
        """Number of NUMA nodes the allocation spans."""
        return int(self.counts.shape[1])

    @property
    def threads_per_node(self) -> np.ndarray:
        """Total threads on each node (all apps), shape ``(num_nodes,)``."""
        return self.counts.sum(axis=0)

    @property
    def threads_per_app(self) -> np.ndarray:
        """Total threads of each app (all nodes), shape ``(num_apps,)``."""
        return self.counts.sum(axis=1)

    @property
    def total_threads(self) -> int:
        """Total threads across all apps and nodes."""
        return int(self.counts.sum())

    def app_index(self, name: str) -> int:
        """Row index of application ``name``."""
        try:
            return self.app_names.index(name)
        except ValueError:
            raise AllocationError(
                f"unknown app '{name}'; allocation has {self.app_names}"
            ) from None

    def threads_of(self, name: str) -> np.ndarray:
        """Per-node thread counts of application ``name``."""
        return self.counts[self.app_index(name)]

    def as_mapping(self) -> dict[str, list[int]]:
        """Inverse of :meth:`from_mapping`."""
        return {
            name: self.counts[i].tolist()
            for i, name in enumerate(self.app_names)
        }

    # ------------------------------------------------------------------
    # Validation & algebra
    # ------------------------------------------------------------------
    def validate(self, machine: MachineTopology) -> None:
        """Check the allocation fits ``machine`` without over-subscription.

        Raises
        ------
        AllocationError
            If node counts disagree with the machine.
        OversubscriptionError
            If any node is assigned more threads than it has cores
            (forbidden by the paper's second modelling assumption).
        """
        if self.num_nodes != machine.num_nodes:
            raise AllocationError(
                f"allocation spans {self.num_nodes} nodes, machine "
                f"'{machine.name}' has {machine.num_nodes}"
            )
        per_node = self.threads_per_node
        for node in machine.nodes:
            if per_node[node.node_id] > node.num_cores:
                raise OversubscriptionError(
                    f"node {node.node_id}: {per_node[node.node_id]} threads "
                    f"allocated but only {node.num_cores} cores available"
                )

    def fits(self, machine: MachineTopology) -> bool:
        """True when :meth:`validate` would pass."""
        try:
            self.validate(machine)
        except AllocationError:
            return False
        return True

    def utilization(self, machine: MachineTopology) -> float:
        """Fraction of machine cores used by this allocation."""
        return self.total_threads / machine.total_cores

    def with_counts(
        self, name: str, per_node: Sequence[int]
    ) -> "ThreadAllocation":
        """Return a copy with app ``name``'s row replaced."""
        idx = self.app_index(name)
        counts = np.array(self.counts)
        if len(per_node) != self.num_nodes:
            raise AllocationError(
                f"{len(per_node)} node counts for {self.num_nodes} nodes"
            )
        counts[idx] = per_node
        return ThreadAllocation(app_names=self.app_names, counts=counts)

    def move_thread(
        self, src_app: str, dst_app: str, node: int
    ) -> "ThreadAllocation":
        """Move one thread on ``node`` from ``src_app`` to ``dst_app``.

        The elementary step used by local-search allocation optimizers.
        """
        si, di = self.app_index(src_app), self.app_index(dst_app)
        if not 0 <= node < self.num_nodes:
            raise AllocationError(f"node {node} out of range")
        if self.counts[si, node] == 0:
            raise AllocationError(
                f"app '{src_app}' has no thread on node {node} to move"
            )
        counts = np.array(self.counts)
        counts[si, node] -= 1
        counts[di, node] += 1
        return ThreadAllocation(app_names=self.app_names, counts=counts)

    def __str__(self) -> str:
        rows = ", ".join(
            f"{name}={self.counts[i].tolist()}"
            for i, name in enumerate(self.app_names)
        )
        return f"ThreadAllocation({rows})"
