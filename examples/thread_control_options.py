#!/usr/bin/env python3
"""The paper's Section III argument, visualised: how you take cores away
from a NUMA-aware application matters enormously.

A NUMA-aware stencil on the 4-socket Skylake is reduced from 80 to 40
worker threads using the three thread-control options, and a worker
timeline shows what option 1's node-agnostic blocking does to the nodes.

Run:  python examples/thread_control_options.py
"""

from repro.analysis import (
    render_roofline,
    render_table,
    render_timeline,
    run_thread_control_options,
)
from repro.apps import StencilApp
from repro.core import AppSpec
from repro.machine import skylake_4s
from repro.runtime import OCRVxRuntime
from repro.sim import ExecutionSimulator, Tracer


def main() -> None:
    machine = skylake_4s()
    print(
        render_roofline(
            machine,
            [AppSpec("stencil", 1 / 16)],
            width=56,
            height=10,
        )
    )
    print()

    res = run_thread_control_options()
    print(
        render_table(
            ["configuration", "completion time [s]"],
            [
                ["full machine (80 threads)", res.full_machine],
                ["option 1: total=40 (runtime picks)", res.option1_total],
                ["option 3: even (10,10,10,10)", res.option3_even],
                ["option 3: packed (20,20,0,0)", res.option3_packed],
                ["option 2: block nodes 2+3", res.option2_two_nodes],
            ],
            title="Reducing a NUMA-aware stencil from 80 to 40 threads:",
        )
    )
    print(
        f"\noption 1 costs {res.option1_penalty:.1f}x over option 3 — "
        f"the blocked workers happened\nto empty whole NUMA nodes, "
        f"stranding those nodes' data behind slow links\n(the paper's "
        f"warning about node-agnostic thread counts)."
    )
    print()

    # A small traced run to show blocking on the timeline.
    tracer = Tracer()
    ex = ExecutionSimulator(machine, tracer=tracer)
    rt = OCRVxRuntime("stencil", ex)
    rt.start([2, 2, 2, 2])
    app = StencilApp(
        rt,
        blocks=8,
        iterations=4,
        numa_aware=True,
        flops_per_block=0.02,
        arithmetic_intensity=1 / 16,
    )
    app.build()
    ex.run(0.1)
    rt.set_allocation([2, 2, 0, 0])  # take nodes 2+3 away mid-run
    ex.run_until_condition(lambda: app.finished, max_time=600)
    print("worker timeline ('#' running a task, 'x' blocked):")
    print(render_timeline(tracer, width=64))


if __name__ == "__main__":
    main()
